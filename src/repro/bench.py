"""Micro-benchmarks: featurization throughput, lint cache, obs overhead.

The batch refactor's contract is twofold — bitwise-identical feature
matrices and a real throughput win.  :func:`run_featurize_bench` checks
both: every case times the per-query scalar loop against the columnar
``featurize_batch`` pipeline on the same workload and verifies the two
matrices are identical before reporting a speedup.  Pass timings come
from ``bench.scalar_pass`` / ``bench.batch_pass`` spans (under
:func:`repro.obs.ensure_tracing`), so a traced benchmark run exports the
same numbers it reports.

:func:`run_lint_bench` measures the linter's incremental cache the same
way: a cold full-repo analysis against a warm re-run over an unchanged
tree, verifying the warm run re-analyses nothing and reporting the
speedup (committed as ``BENCH_lint.json``).

:func:`run_obs_bench` guards the observability layer itself: it times
the conjunctive batch-featurize path uninstrumented (compile + encode
called directly), with tracing disabled (the no-op span path), and with
tracing enabled, and reports the overhead percentages (committed as
``BENCH_obs.json``; the disabled-mode number is gated at < 3% in CI).

:func:`run_serve_bench` measures the serving stack end to end: an
in-process HTTP server (estimate cache off, shape-plan cache on) under
a closed-loop multi-threaded client fleet, reporting p50/p95 latency
and queries/sec at client batch sizes 1, 8, and 64, verifying the
fused compile→encode→predict path answers bitwise-identically to the
legacy per-query path, and embedding the forest-inference
microbenchmark plus plan-cache hit statistics (committed as
``BENCH_serve.json``).

:func:`run_predict_bench` isolates forest inference: the legacy
per-tree python predict loop against the packed
:class:`~repro.models.compiled_forest.CompiledForest` on identical
feature matrices, asserting bitwise-equal outputs (CI gates the
compiled path at ≥ 3× across all measured batch sizes).

This module computes and returns results only; printing and process exit
codes live in :mod:`repro.cli` (``repro bench featurize`` / ``repro
bench lint`` / ``repro bench obs`` / ``repro bench serve``), and the
pytest-driven benchmark lives in ``benchmarks/test_featurize_throughput.py``.

Raw ``time.perf_counter`` use is deliberate here (and exempt from lint
rule RPR108): interleaved best-of-N timing needs the clock directly,
and the obs benchmark must time the *uninstrumented* path without
touching the tracer it is measuring.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro import config, obs
from repro.data.forest import generate_forest
from repro.data.table import Table
from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    RangeEncoding,
    SingularEncoding,
)
from repro.sql.ast import And, BoolExpr, Or, Query, SimplePredicate
from repro.workloads import generate_conjunctive_queries, generate_mixed_queries

__all__ = ["BenchCase", "run_featurize_bench", "run_fleet_bench",
           "run_lint_bench", "run_obs_bench", "run_predict_bench",
           "run_serve_bench", "write_report"]

#: (featurizer label, workload label) cases the benchmark measures.
_CASES = (
    ("simple", "conjunctive"),
    ("range", "conjunctive"),
    ("conjunctive", "conjunctive"),
    ("complex", "conjunctive"),
    ("complex", "mixed"),
)


@dataclass(frozen=True)
class BenchCase:
    """One scalar-vs-batch measurement."""

    featurizer: str
    workload: str
    n_queries: int
    feature_length: int
    scalar_seconds: float
    batch_seconds: float
    identical: bool

    @property
    def speedup(self) -> float:
        """Scalar time over batch time (higher is better)."""
        if self.batch_seconds <= 0.0:
            return float("inf")
        return self.scalar_seconds / self.batch_seconds

    def row(self) -> dict:
        """JSON-serialisable summary of this case."""
        return {
            "featurizer": self.featurizer,
            "workload": self.workload,
            "n_queries": self.n_queries,
            "feature_length": self.feature_length,
            "scalar_seconds": self.scalar_seconds,
            "batch_seconds": self.batch_seconds,
            "speedup": self.speedup,
            "identical": self.identical,
        }


def _build_featurizer(label: str, table: Table, partitions: int):
    if label == "simple":
        return SingularEncoding(table)
    if label == "range":
        return RangeEncoding(table)
    if label == "conjunctive":
        return ConjunctiveEncoding(table, max_partitions=partitions)
    if label == "complex":
        return DisjunctionEncoding(table, max_partitions=partitions)
    raise ValueError(f"unknown featurizer label {label!r}")


def _time_case(featurizer, queries: Sequence[Query],
               featurizer_label: str, workload_label: str,
               repeats: int) -> BenchCase:
    # One untimed pass per path first: the process's first large
    # allocations page-fault fresh memory, which would otherwise charge
    # a one-time OS cost to whichever path happens to run first.
    scalar = np.stack([featurizer.featurize(q) for q in queries])
    batch = featurizer.featurize_batch(queries)
    identical = bool(np.array_equal(scalar, batch))

    scalar_seconds = float("inf")
    batch_seconds = float("inf")
    with obs.ensure_tracing():
        for _ in range(repeats):
            with obs.span("bench.scalar_pass", featurizer=featurizer_label,
                          workload=workload_label) as sp:
                np.stack([featurizer.featurize(q) for q in queries])
            scalar_seconds = min(scalar_seconds, sp.duration_seconds)

            with obs.span("bench.batch_pass", featurizer=featurizer_label,
                          workload=workload_label) as sp:
                featurizer.featurize_batch(queries)
            batch_seconds = min(batch_seconds, sp.duration_seconds)

    return BenchCase(
        featurizer=featurizer_label,
        workload=workload_label,
        n_queries=len(queries),
        feature_length=featurizer.feature_length,
        scalar_seconds=scalar_seconds,
        batch_seconds=batch_seconds,
        identical=identical,
    )


def run_featurize_bench(rows: int = 10_000, queries: int = 10_000,
                        partitions: int = config.DEFAULT_PARTITIONS,
                        seed: int = config.DEFAULT_SEED,
                        smoke: bool = False, repeats: int = 3) -> dict:
    """Benchmark scalar vs batch featurization; return the report dict.

    Each case runs one untimed warm-up pass per path (whose output also
    feeds the bitwise-equality check), then reports the best of
    ``repeats`` timed runs.  ``smoke`` shrinks the workload to a
    seconds-long configuration for CI: the equivalence checks still run
    on real queries, only the timing sample is small.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if smoke:
        rows = min(rows, 1_000)
        queries = min(queries, 300)
        repeats = 1
    table = generate_forest(rows=rows, seed=seed)
    workloads = {
        "conjunctive": generate_conjunctive_queries(
            table, queries, seed=seed),
        "mixed": generate_mixed_queries(table, queries, seed=seed + 1),
    }
    cases: list[BenchCase] = []
    for featurizer_label, workload_label in _CASES:
        featurizer = _build_featurizer(featurizer_label, table, partitions)
        cases.append(_time_case(featurizer, workloads[workload_label],
                                featurizer_label, workload_label, repeats))
    return {
        "benchmark": "featurize",
        "config": {
            "rows": rows,
            "queries": queries,
            "partitions": partitions,
            "seed": seed,
            "smoke": smoke,
            "repeats": repeats,
        },
        "cases": [case.row() for case in cases],
        "all_identical": all(case.identical for case in cases),
        "min_speedup": min(case.speedup for case in cases),
    }


def run_lint_bench(paths: Sequence[str] = ("src",), repeats: int = 3,
                   jobs: int = 1) -> dict:
    """Benchmark cold vs warm incremental lint runs; return the report.

    Uses a throwaway cache file: every cold run starts from a deleted
    cache, every warm run reuses the cache the preceding full analysis
    wrote over an unchanged tree.  The best of ``repeats`` runs is
    reported for each, along with how many files each re-analysed (warm
    must be zero — asserted here so a silently broken cache can never
    report a fake speedup).
    """
    from repro.lint import load_config
    from repro.lint.engine import run as lint_run

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    target_paths = [Path(p) for p in paths]
    lint_config = load_config(target_paths[0])
    with tempfile.TemporaryDirectory(prefix="repro-lint-bench-") as tmp:
        cache_path = Path(tmp) / "lint-cache.json"

        cold_seconds = float("inf")
        cold_passes: dict = {}
        for _ in range(repeats):
            cache_path.unlink(missing_ok=True)
            start = time.perf_counter()
            cold = lint_run(target_paths, lint_config, jobs=jobs,
                            cache_path=cache_path)
            elapsed = time.perf_counter() - start
            if elapsed < cold_seconds:
                cold_seconds = elapsed
                cold_passes = dict(cold.pass_seconds)

        warm_seconds = float("inf")
        warm_passes: dict = {}
        warm = cold
        for _ in range(repeats):
            start = time.perf_counter()
            warm = lint_run(target_paths, lint_config, jobs=jobs,
                            cache_path=cache_path)
            elapsed = time.perf_counter() - start
            if elapsed < warm_seconds:
                warm_seconds = elapsed
                warm_passes = dict(warm.pass_seconds)

    if warm.files_reanalyzed:
        raise RuntimeError(
            "warm lint run re-analysed "
            f"{len(warm.files_reanalyzed)} file(s) over an unchanged "
            "tree; the incremental cache is broken")
    if warm.findings != cold.findings:
        raise RuntimeError("warm lint findings diverge from cold run")
    speedup = (cold_seconds / warm_seconds if warm_seconds > 0.0
               else float("inf"))
    return {
        "benchmark": "lint",
        "config": {
            "paths": [str(p) for p in target_paths],
            "repeats": repeats,
            "jobs": jobs,
        },
        "files_scanned": cold.files_scanned,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        # Per-pass breakdown of the best run each way.  Only fresh work
        # is attributed, so the warm figures collapse towards zero —
        # the whole point of the incremental cache.
        "cold_pass_seconds": cold_passes,
        "warm_pass_seconds": warm_passes,
        "cold_files_reanalyzed": len(cold.files_reanalyzed),
        "warm_files_reanalyzed": len(warm.files_reanalyzed),
        "findings": len(cold.findings),
        "min_speedup": speedup,
    }


def run_obs_bench(rows: int = 10_000, queries: int = 10_000,
                  partitions: int = config.DEFAULT_PARTITIONS,
                  seed: int = config.DEFAULT_SEED,
                  smoke: bool = False, repeats: int = 7) -> dict:
    """Measure the observability layer's overhead on batch featurization.

    Times the conjunctive-QFT batch path over the conjunctive workload
    three ways, interleaved, best of ``repeats``:

    * **baseline** — compile + encode called directly, bypassing the
      instrumented ``featurize_batch`` wrapper entirely;
    * **disabled** — ``featurize_batch`` with tracing off (no-op spans
      plus the always-on counters), the production default;
    * **enabled** — ``featurize_batch`` with tracing on (live spans).

    The report's ``disabled_overhead_pct`` is the number the CI gate
    holds under 3%: instrumentation must cost nothing when nobody is
    looking.

    Two telemetry hot-path legs ride along (best of the same
    ``repeats``), since PR 9 put both on the serving request path:

    * **window** — per-``observe`` cost of a labelled
      :class:`~repro.obs.window.WindowedHistogram` and per-``advance``
      cost of rolling its tick ring;
    * **events** — per-``record`` cost of the wide-event log with
      ``sample_every=1`` (keep everything) vs ``sample_every=16``
      (head sampling active), showing what sampling saves.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if smoke:
        rows = min(rows, 2_000)
        queries = min(queries, 2_000)
        repeats = min(repeats, 5)
    table = generate_forest(rows=rows, seed=seed)
    workload = generate_conjunctive_queries(table, queries, seed=seed)
    featurizer = _build_featurizer("conjunctive", table, partitions)

    def uninstrumented():
        batch = featurizer.compile_batch(workload)
        return featurizer._featurize_compiled(batch)

    # Untimed warm-up of every path (page-faults, lazy allocations).
    reference = uninstrumented()
    with obs.use_tracer(obs.Tracer(enabled=False)):
        instrumented = featurizer.featurize_batch(workload)
    if not np.array_equal(reference, instrumented):
        raise RuntimeError(
            "instrumented featurize_batch diverged from the direct "
            "compile+encode path")

    baseline_seconds = float("inf")
    disabled_seconds = float("inf")
    enabled_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        uninstrumented()
        baseline_seconds = min(baseline_seconds,
                               time.perf_counter() - start)

        with obs.use_tracer(obs.Tracer(enabled=False)):
            start = time.perf_counter()
            featurizer.featurize_batch(workload)
            disabled_seconds = min(disabled_seconds,
                                   time.perf_counter() - start)

        with obs.use_tracer(obs.Tracer(enabled=True)):
            start = time.perf_counter()
            featurizer.featurize_batch(workload)
            enabled_seconds = min(enabled_seconds,
                                  time.perf_counter() - start)

    def overhead_pct(seconds: float) -> float:
        if baseline_seconds <= 0.0:
            return 0.0
        return (seconds - baseline_seconds) / baseline_seconds * 100.0

    from repro.obs.events import EventLog
    from repro.obs.window import WindowedHistogram

    telemetry_ops = min(4 * queries, 40_000)
    advance_ops = 1_024
    values = [(i % 97) / 7.0 for i in range(telemetry_ops)]
    observe_seconds = float("inf")
    advance_seconds = float("inf")
    keep_all_seconds = float("inf")
    sampled_seconds = float("inf")
    for _ in range(repeats):
        histogram = WindowedHistogram("bench.window",
                                      label_names=("model",),
                                      window_ticks=8)
        start = time.perf_counter()
        for value in values:
            histogram.observe(value, model="bench")
        observe_seconds = min(observe_seconds,
                              time.perf_counter() - start)

        start = time.perf_counter()
        for _ in range(advance_ops):
            histogram.advance()
        advance_seconds = min(advance_seconds,
                              time.perf_counter() - start)

        for sample_every in (1, 16):
            log = EventLog(capacity=1_024, sample_every=sample_every)
            start = time.perf_counter()
            for i in range(telemetry_ops):
                log.record(trace_id=i, fingerprint="bench",
                           model_version="bench", cache="hit",
                           latency_seconds=0.001, estimate=1.0)
            elapsed = time.perf_counter() - start
            if sample_every == 1:
                keep_all_seconds = min(keep_all_seconds, elapsed)
            else:
                sampled_seconds = min(sampled_seconds, elapsed)

    def ns_per_op(seconds: float, ops: int) -> float:
        return seconds / ops * 1e9 if ops else 0.0

    return {
        "benchmark": "obs",
        "config": {
            "rows": rows,
            "queries": queries,
            "partitions": partitions,
            "seed": seed,
            "smoke": smoke,
            "repeats": repeats,
        },
        "n_queries": len(workload),
        "feature_length": featurizer.feature_length,
        "baseline_seconds": baseline_seconds,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "disabled_overhead_pct": overhead_pct(disabled_seconds),
        "enabled_overhead_pct": overhead_pct(enabled_seconds),
        "window": {
            "observe_ops": telemetry_ops,
            "observe_seconds": observe_seconds,
            "observe_ns_per_op": ns_per_op(observe_seconds, telemetry_ops),
            "advance_ops": advance_ops,
            "advance_seconds": advance_seconds,
            "advance_ns_per_op": ns_per_op(advance_seconds, advance_ops),
        },
        "events": {
            "record_ops": telemetry_ops,
            "keep_all_seconds": keep_all_seconds,
            "keep_all_ns_per_op": ns_per_op(keep_all_seconds,
                                            telemetry_ops),
            "sample_16_seconds": sampled_seconds,
            "sample_16_ns_per_op": ns_per_op(sampled_seconds,
                                             telemetry_ops),
        },
    }


def _legacy_forest_predict(model, features: np.ndarray) -> np.ndarray:
    """The pre-compiled GB predict path: one python-level pass per tree.

    Reproduced here verbatim (same accumulation order) as the timing
    and bitwise reference for :func:`run_predict_bench`, independent of
    whether the model object itself has been compiled.
    """
    prediction = np.full(features.shape[0], model._base)
    for tree in model.trees:  # repro: ignore[RPR109] — this IS the legacy reference
        prediction += model.learning_rate * tree.predict(features)
    return prediction


def run_predict_bench(rows: int = 4_000, queries: int = 4_096,
                      trees: int = 120,
                      partitions: int = config.DEFAULT_PARTITIONS,
                      seed: int = config.DEFAULT_SEED, smoke: bool = False,
                      repeats: int = 5,
                      batch_sizes: Sequence[int] = (1, 8, 64)) -> dict:
    """Benchmark compiled vs legacy forest inference; return the report.

    Trains a gradient-boosting model on a real featurized workload
    (conjunctive QFT over the synthetic forest table), then times
    ``predict`` over identical feature matrices two ways: the legacy
    per-tree python loop and the packed
    :class:`~repro.models.compiled_forest.CompiledForest`
    level-synchronous traversal.  Each batch size reports the best of
    ``repeats`` per-call times and a bitwise-equality verdict;
    ``min_speedup`` (the smallest ratio across batch sizes) is what CI
    gates at ≥ 3×.

    The default batch sizes (1, 8, 64) cover the serving regime — the
    micro-batcher dispatches at most
    :class:`~repro.serve.batcher.MicroBatcher`'s ``max_batch_size`` (64)
    queries at once — which is where python dispatch dominates and the
    compiled path pays off.  For offline thousand-row scoring the
    legacy index-partitioning walk is already near memory bandwidth and
    the compiled gathers win little (pass ``--batch-sizes`` to measure);
    the report records this scope in ``batch_sizes_note``.
    """
    from repro.models import GradientBoostingRegressor
    from repro.workloads import generate_conjunctive_workload

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if smoke:
        rows = min(rows, 1_000)
        queries = min(queries, 512)
        trees = min(trees, 30)
        repeats = min(repeats, 3)
    table = generate_forest(rows=rows, seed=seed)
    # 400 training queries even in smoke mode: fewer leaves the default
    # min_samples_leaf no valid split and every tree degenerates to a
    # stump, which would benchmark an unrealistically shallow forest.
    train = generate_conjunctive_workload(table, 400, seed=seed + 1)
    featurizer = ConjunctiveEncoding(table, max_partitions=partitions)
    X_train = featurizer.featurize_batch(train.queries)
    y_train = np.log(np.maximum(train.cardinalities, 1.0))
    # No early stopping: the report's tree count must match the config.
    model = GradientBoostingRegressor(n_estimators=trees,
                                      early_stopping_rounds=None,
                                      random_state=seed).fit(X_train, y_train)
    X = featurizer.featurize_batch(
        generate_conjunctive_queries(table, queries, seed=seed))
    forest = model.compile()

    cases: list[dict] = []
    for batch_size in sorted(set(int(b) for b in batch_sizes)):
        batch_size = min(batch_size, X.shape[0])
        features = X[:batch_size]
        # Enough calls per sample that the fast path stays measurable.
        calls = max(1, min(64, X.shape[0] // batch_size))
        legacy_reference = _legacy_forest_predict(model, features)
        compiled_reference = forest.predict(features)
        identical = bool(np.array_equal(legacy_reference,
                                        compiled_reference))
        legacy_seconds = float("inf")
        compiled_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(calls):
                _legacy_forest_predict(model, features)
            legacy_seconds = min(legacy_seconds,
                                 (time.perf_counter() - start) / calls)
            start = time.perf_counter()
            for _ in range(calls):
                forest.predict(features)
            compiled_seconds = min(compiled_seconds,
                                   (time.perf_counter() - start) / calls)
        cases.append({
            "batch_size": batch_size,
            "calls_per_sample": calls,
            "legacy_seconds": legacy_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup": (legacy_seconds / compiled_seconds
                        if compiled_seconds > 0 else float("inf")),
            "identical": identical,
        })

    return {
        "benchmark": "predict",
        "config": {
            "rows": rows,
            "queries": queries,
            "trees": trees,
            "partitions": partitions,
            "seed": seed,
            "smoke": smoke,
            "repeats": repeats,
            "batch_sizes": [case["batch_size"] for case in cases],
        },
        "batch_sizes_note": (
            "defaults cover the serving regime (micro-batcher dispatches "
            "<= 64 queries); larger offline batches are not gated — "
            "measure them with --batch-sizes"),
        "n_trees": forest.n_trees,
        "max_nodes": forest.max_nodes,
        "max_depth": forest.max_depth,
        "feature_length": featurizer.feature_length,
        "cases": cases,
        "all_identical": all(case["identical"] for case in cases),
        "min_speedup": min(case["speedup"] for case in cases),
    }


def _drive_closed_loop(url: str, payloads: list, threads: int, call) -> dict:
    """Run a closed-loop client fleet over ``payloads``; return timings.

    ``threads`` workers each hold their own :class:`ServeClient`, pull
    the next payload from a shared queue, fire ``call(client, payload)``,
    and record the request's wall latency — the classic closed-loop
    (zero think time) load shape.  Returns per-request latencies plus
    the fleet's wall-clock span.
    """
    import queue as queue_mod

    from repro.serve import ServeClient

    work: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
    for payload in payloads:
        work.put(payload)
    latencies: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()

    def worker() -> None:
        client = ServeClient(url, timeout=60.0)
        local: list[float] = []
        try:
            while True:
                try:
                    payload = work.get_nowait()
                except queue_mod.Empty:
                    break
                start = time.perf_counter()
                try:
                    call(client, payload)
                except Exception as exc:  # repro: ignore[RPR103] — collected and re-raised below
                    with lock:
                        failures.append(str(exc))
                    break
                local.append(time.perf_counter() - start)
        finally:
            client.close()
        with lock:
            latencies.extend(local)

    fleet = [threading.Thread(target=worker, name=f"repro-bench-client-{i}")
             for i in range(threads)]
    start = time.perf_counter()
    for thread in fleet:
        thread.start()
    for thread in fleet:
        thread.join()
    wall_seconds = time.perf_counter() - start
    if failures:
        raise RuntimeError(
            f"{len(failures)} benchmark request(s) failed; first: "
            f"{failures[0]}")
    return {"latencies": latencies, "wall_seconds": wall_seconds}


def _parameterized_queries(table: Table, num_queries: int, templates: int,
                           seed: int) -> list[Query]:
    """A prepared-statement-style workload: few shapes, many literals.

    Draws ``templates`` base conjunctive queries, then emits
    ``num_queries`` instances round-robin over them, each with every
    numeric literal resampled from the predicate's own column domain.
    This is the traffic shape the serving caches target: a dashboard or
    ORM re-issues the same statement text with fresh parameters, so the
    fingerprint (parse cache) and shape (plan cache) repeat while the
    exact-match estimate cache stays cold.  Deterministic in ``seed``.
    """
    if not 1 <= templates <= num_queries:
        raise ValueError(
            f"templates must be in [1, {num_queries}], got {templates}")
    bases = generate_conjunctive_queries(table, templates, seed=seed)
    rng = np.random.default_rng(seed + 1)

    def rebind(expr: BoolExpr) -> BoolExpr:
        if isinstance(expr, SimplePredicate):
            values = table.column(expr.attribute).values
            fresh = float(values[int(rng.integers(values.shape[0]))])
            return SimplePredicate(expr.attribute, expr.op, fresh)
        if isinstance(expr, And):
            return And([rebind(child) for child in expr.children])
        if isinstance(expr, Or):
            return Or([rebind(child) for child in expr.children])
        return expr

    return [replace(bases[i % templates], where=rebind(bases[i % templates].where))
            for i in range(num_queries)]


def run_serve_bench(artifact: str | Path | None = None, rows: int = 4_000,
                    queries: int = 2_048, threads: int = 8,
                    partitions: int = config.DEFAULT_PARTITIONS,
                    seed: int = config.DEFAULT_SEED, smoke: bool = False,
                    batch_sizes: Sequence[int] = (1, 8, 64),
                    templates: int = 64) -> dict:
    """Benchmark the serving stack end to end; return the report dict.

    Boots an in-process :class:`~repro.serve.server.EstimationServer`
    on an ephemeral port (estimate cache *disabled*, so every request
    pays the real featurize → predict path), then drives it with a
    closed-loop fleet of ``threads`` HTTP clients at each client-side
    batch size: ``1`` hits ``POST /v1/estimate`` once per query, larger
    sizes pack that many queries into one ``POST /v1/estimate_batch``
    body.  Every case pushes the same workload, so the reported
    ``speedup`` — batched queries/sec over single-request queries/sec at
    the largest batch size — isolates what micro-batching amortises
    (HTTP round trips, request dispatch, per-call featurization
    overhead).

    The workload is *parameterized*: ``templates`` statement shapes,
    each instantiated with fresh literals per query
    (:func:`_parameterized_queries`).  That models prepared-statement /
    dashboard traffic — the regime the parse-template and shape-plan
    caches exist for — while keeping every query distinct so the
    disabled exact-match cache cannot short-circuit the work.

    With ``artifact`` the persisted estimator at that path answers the
    traffic; otherwise a small GB + conjunctive-QFT estimator is
    trained in-process on the synthetic forest table.

    The service runs its fused compile→encode→predict path (shape-plan
    cache on): before any traffic, the whole workload is estimated once
    through the legacy ``estimate_batch`` (pre-compile) and once
    through the service's fused path, and the report's
    ``fused_identical`` records their bitwise equality.  The plan
    cache's hit/miss statistics and the forest-inference
    microbenchmark (:func:`run_predict_bench`, matching tree count)
    are embedded under ``plan_cache`` and ``predict``.
    """
    from repro.estimators import LearnedEstimator
    from repro.models import GradientBoostingRegressor
    from repro.persistence import load_estimator
    from repro.serve import EstimationServer, EstimationService
    from repro.serve.client import ServeClient
    from repro.workloads import generate_conjunctive_workload

    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if smoke:
        rows = min(rows, 1_000)
        queries = min(queries, 256)
        threads = min(threads, 4)
        templates = min(templates, 16)
    templates = min(templates, queries)
    batch_sizes = tuple(sorted(set(int(b) for b in batch_sizes)))
    if batch_sizes[0] != 1:
        raise ValueError("batch_sizes must include 1 (the speedup baseline)")
    table = generate_forest(rows=rows, seed=seed)
    if artifact is not None:
        estimator = load_estimator(artifact)
    else:
        train = generate_conjunctive_workload(
            table, 120 if smoke else 400, seed=seed + 1)
        estimator = LearnedEstimator(
            ConjunctiveEncoding(table, max_partitions=partitions),
            GradientBoostingRegressor(n_estimators=10 if smoke else 30),
        ).fit(train.queries, train.cardinalities)
    workload = _parameterized_queries(table, queries, templates, seed=seed)
    sqls = [query.to_sql() for query in workload]

    # Legacy reference BEFORE the service compiles the model: this is
    # the per-query compile→encode plus per-tree-predict path the fused
    # pipeline must reproduce bit for bit.
    legacy_estimates = estimator.estimate_batch(workload)
    service = EstimationService(estimator, max_batch_size=64,
                                max_wait_ms=1.0, cache_size=0,
                                max_inflight=max(64, threads * 4),
                                plan_cache_size=256)
    if service.fused is not None:
        fused_estimates = service.fused.estimate_batch(workload)
        fused_identical = bool(np.array_equal(legacy_estimates,
                                              fused_estimates))
    else:
        fused_identical = None
    cases: list[dict] = []
    with EstimationServer(service) as server:
        # Untimed warm-up: first-request costs (lazy imports, allocator
        # warm-up) must not pollute the smallest case.
        with ServeClient(server.url, timeout=60.0) as warmup:
            warmup.estimate(sqls[0])
            warmup.estimate_batch(sqls[:8])
        for batch_size in batch_sizes:
            if batch_size == 1:
                payloads: list = list(sqls)
                call = (lambda client, sql: client.estimate(sql))
            else:
                payloads = [sqls[i:i + batch_size]
                            for i in range(0, len(sqls), batch_size)]
                call = (lambda client, batch: client.estimate_batch(batch))
            timing = _drive_closed_loop(server.url, payloads, threads, call)
            latencies_ms = np.asarray(timing["latencies"]) * 1000.0
            wall = timing["wall_seconds"]
            cases.append({
                "batch_size": batch_size,
                "requests": len(payloads),
                "queries": len(sqls),
                "wall_seconds": wall,
                "queries_per_second": (len(sqls) / wall if wall > 0
                                       else float("inf")),
                "p50_latency_ms": float(np.percentile(latencies_ms, 50)),
                "p95_latency_ms": float(np.percentile(latencies_ms, 95)),
            })

    by_size = {case["batch_size"]: case for case in cases}
    single_qps = by_size[1]["queries_per_second"]
    batched_qps = by_size[batch_sizes[-1]]["queries_per_second"]
    raw_model = getattr(getattr(estimator, "model", None), "model", None)
    served_trees = (len(raw_model.trees)
                    if raw_model is not None and hasattr(raw_model, "trees")
                    else 30)
    predict_report = run_predict_bench(
        rows=rows, queries=queries, trees=max(served_trees, 1),
        partitions=partitions, seed=seed, smoke=smoke)
    return {
        "benchmark": "serve",
        "config": {
            "rows": rows,
            "queries": queries,
            "threads": threads,
            "partitions": partitions,
            "seed": seed,
            "smoke": smoke,
            "artifact": str(artifact) if artifact is not None else None,
            "estimator": estimator.name,
            "batch_sizes": list(batch_sizes),
            "workload": "parameterized-conjunctive",
            "templates": templates,
            "max_batch_size": 64,
            "max_wait_ms": 1.0,
            "cache_size": 0,
            "plan_cache_size": 256,
            "parse_cache_size": 512,
        },
        "cases": cases,
        "single_qps": single_qps,
        "batched_qps": batched_qps,
        "speedup": (batched_qps / single_qps if single_qps > 0
                    else float("inf")),
        "fused_identical": fused_identical,
        "plan_cache": service.plan_cache.stats(),
        "parse_cache": service.parse_cache.stats(),
        "predict": predict_report,
    }


def run_fleet_bench(artifact: str | Path | None = None, rows: int = 4_000,
                    queries: int = 2_048, threads: int = 8,
                    partitions: int = config.DEFAULT_PARTITIONS,
                    seed: int = config.DEFAULT_SEED, smoke: bool = False,
                    worker_counts: Sequence[int] = (1, 2, 4),
                    templates: int = 64, batch_size: int = 64) -> dict:
    """Benchmark fleet scaling: the same workload at several worker counts.

    Publishes one estimator into a scratch
    :class:`~repro.serve.registry.ModelRegistry`, then for each count in
    ``worker_counts`` boots a real fleet — ``N`` worker *subprocesses*
    (estimate cache off, so every batch pays featurize → predict) behind
    a :class:`~repro.fleet.router.FleetRouter` — and drives it with the
    closed-loop client fleet from the serve benchmark, packing
    ``batch_size`` queries per ``POST /v1/estimate_batch``.  Workers are
    separate processes, so unlike a thread pool this scaling is not
    GIL-bound; the reported ``fleet_speedup`` is aggregate
    queries/second at the largest count over the single-worker rate.

    Worker subprocesses make this benchmark 10-100x heavier to boot
    than the in-process serve bench; the workload itself matches
    :func:`run_serve_bench`'s parameterized-statement shape, so the two
    reports compose (``repro bench serve --workers N`` embeds this one
    under the serve report's ``fleet`` key).
    """
    import shutil

    from repro.estimators import LearnedEstimator
    from repro.fleet import (
        FleetRouter,
        ProcessWorker,
        RouterServer,
        WorkerSupervisor,
    )
    from repro.models import GradientBoostingRegressor
    from repro.persistence import load_estimator
    from repro.serve import ModelRegistry
    from repro.serve.client import ServeClient
    from repro.workloads import generate_conjunctive_workload

    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if smoke:
        rows = min(rows, 1_000)
        queries = min(queries, 256)
        threads = min(threads, 4)
        templates = min(templates, 16)
        worker_counts = tuple(c for c in worker_counts if c <= 2) or (1, 2)
    worker_counts = tuple(sorted(set(int(c) for c in worker_counts)))
    if worker_counts[0] != 1:
        raise ValueError(
            "worker_counts must include 1 (the scaling baseline)")
    templates = min(templates, queries)
    table = generate_forest(rows=rows, seed=seed)
    if artifact is not None:
        estimator = load_estimator(artifact)
    else:
        train = generate_conjunctive_workload(
            table, 120 if smoke else 400, seed=seed + 1)
        # A heavier forest than the serve bench's: per-batch worker
        # compute must dominate the router's forwarding overhead for
        # the scaling measurement to mean anything.
        estimator = LearnedEstimator(
            ConjunctiveEncoding(table, max_partitions=partitions),
            GradientBoostingRegressor(n_estimators=10 if smoke else 60),
        ).fit(train.queries, train.cardinalities)
    workload = _parameterized_queries(table, queries, templates, seed=seed)
    sqls = [query.to_sql() for query in workload]
    payloads = [sqls[i:i + batch_size]
                for i in range(0, len(sqls), batch_size)]

    registry_root = Path(tempfile.mkdtemp(prefix="repro-fleet-bench-"))
    cases: list[dict] = []
    try:
        registry = ModelRegistry(registry_root)
        published = registry.publish(estimator, "bench")
        for count in worker_counts:
            def factory(worker_id: str) -> ProcessWorker:
                return ProcessWorker(
                    worker_id, registry_root, "bench",
                    cache_size=0, max_wait_ms=1.0,
                    max_inflight=max(64, threads * 4),
                    tick_every=0).start()

            supervisor = WorkerSupervisor(factory, poll_interval=0.5)
            supervisor.spawn(count)
            supervisor.start()
            router = FleetRouter(supervisor.pool, supervisor=supervisor)
            server = RouterServer(router)
            server.start()
            try:
                # Untimed warm-up: touch every worker's parse/plan
                # caches and the router's keep-alive sockets.
                with ServeClient(server.url, timeout=60.0) as warmup:
                    for start_at in range(0, min(len(sqls), 256),
                                          batch_size):
                        warmup.estimate_batch(
                            sqls[start_at:start_at + batch_size])
                timing = _drive_closed_loop(
                    server.url, list(payloads), threads,
                    lambda client, batch: client.estimate_batch(batch))
            finally:
                server.stop(drain=True)
                supervisor.stop(drain=True)
            latencies_ms = np.asarray(timing["latencies"]) * 1000.0
            wall = timing["wall_seconds"]
            cases.append({
                "workers": count,
                "requests": len(payloads),
                "queries": len(sqls),
                "wall_seconds": wall,
                "queries_per_second": (len(sqls) / wall if wall > 0
                                       else float("inf")),
                "p50_latency_ms": float(np.percentile(latencies_ms, 50)),
                "p95_latency_ms": float(np.percentile(latencies_ms, 95)),
            })
    finally:
        shutil.rmtree(registry_root, ignore_errors=True)

    by_count = {case["workers"]: case for case in cases}
    single_qps = by_count[1]["queries_per_second"]
    fleet_qps = by_count[worker_counts[-1]]["queries_per_second"]
    cpu_count = os.cpu_count() or 1
    return {
        "benchmark": "fleet",
        "config": {
            "rows": rows,
            "queries": queries,
            "threads": threads,
            "partitions": partitions,
            "seed": seed,
            "smoke": smoke,
            "artifact": str(artifact) if artifact is not None else None,
            "estimator": estimator.name,
            "model": published.label(),
            "worker_counts": list(worker_counts),
            "templates": templates,
            "batch_size": batch_size,
            "workload": "parameterized-conjunctive",
            "cache_size": 0,
            "cpu_count": cpu_count,
        },
        "cases": cases,
        "single_worker_qps": single_qps,
        "fleet_qps": fleet_qps,
        "fleet_speedup": (fleet_qps / single_qps if single_qps > 0
                          else float("inf")),
        # Separate worker processes only add throughput when the host
        # has cores for them; below this bound the measurement is the
        # scheduler's, not the fleet's.
        "cpu_limited": cpu_count < worker_counts[-1],
    }


def write_report(report: dict, path: Path) -> None:
    """Write a benchmark report as indented JSON."""
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
