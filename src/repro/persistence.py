"""Persistence for trained estimators.

Training is the expensive step (the paper reports days of query
generation and minutes of training, Section 5.5.2); a production
deployment trains once and serves many estimates.  This module saves a
fitted :class:`~repro.estimators.learned.LearnedEstimator` to a single
``.npz`` file and loads it back *without the original data* — the
featurizer is reconstructed from its statistics snapshot.

Supported featurizers: Singular/Range/Conjunctive/Disjunction encodings.
Supported models: gradient boosting and the feed-forward NN.  Loaded
models are predict-only (optimizer state and bin mappers are not kept).

Example::

    save_estimator(estimator, "forest_gb_conj.npz")
    estimator = load_estimator("forest_gb_conj.npz")
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.data.stats import ColumnStats, TableStats
from repro.estimators.learned import LearnedEstimator
from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    RangeEncoding,
    SingularEncoding,
)
from repro.models.gradient_boosting import GradientBoostingRegressor
from repro.models.neural_net import NeuralNetRegressor

__all__ = ["save_estimator", "load_estimator", "FORMAT_VERSION"]

FORMAT_VERSION = 1

_FEATURIZERS = {
    "SingularEncoding": SingularEncoding,
    "RangeEncoding": RangeEncoding,
    "ConjunctiveEncoding": ConjunctiveEncoding,
    "DisjunctionEncoding": DisjunctionEncoding,
}

_MODELS = {
    "gradient_boosting": GradientBoostingRegressor,
    "neural_net": NeuralNetRegressor,
}


def _snapshot_to_json(snapshot: TableStats) -> dict:
    return {
        "name": snapshot.name,
        "columns": {name: asdict(stats)
                    for name, stats in snapshot.columns.items()},
    }


def _snapshot_from_json(payload: dict) -> TableStats:
    columns = {}
    for name, fields in payload["columns"].items():
        fields = dict(fields)
        for key in ("histogram_bounds", "mcv_values", "mcv_fractions"):
            fields[key] = tuple(fields[key])
        columns[name] = ColumnStats(**fields)
    return TableStats(name=payload["name"], columns=columns)


def save_estimator(estimator: LearnedEstimator, path: str | Path) -> None:
    """Serialise a fitted learned estimator to one ``.npz`` file."""
    featurizer = estimator.featurizer
    class_name = type(featurizer).__name__
    if class_name not in _FEATURIZERS:
        raise TypeError(
            f"cannot persist featurizer of type {class_name}; supported: "
            f"{sorted(_FEATURIZERS)}"
        )
    model = estimator.model.model  # unwrap the log-space wrapper
    if not hasattr(model, "state_dict"):
        raise TypeError(
            f"cannot persist model of type {type(model).__name__}; it has "
            "no state_dict()"
        )
    state = model.state_dict()
    meta = {
        "format_version": FORMAT_VERSION,
        "estimator_name": estimator.name,
        "featurizer": {
            "class": class_name,
            "config": featurizer.get_config(),
            "attributes": list(featurizer.attributes),
            "snapshot": _snapshot_to_json(featurizer.snapshot()),
        },
        "model": state["config"],
    }
    arrays = {f"model/{key}": value for key, value in state["arrays"].items()}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, __meta__=np.asarray(json.dumps(meta)),
                            **arrays)


def load_estimator(path: str | Path) -> LearnedEstimator:
    """Load an estimator saved by :func:`save_estimator`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        if "__meta__" not in archive:
            raise ValueError(f"{path} is not a persisted estimator")
        meta = json.loads(str(archive["__meta__"]))
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported format version {meta.get('format_version')}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        arrays = {key[len("model/"):]: archive[key]
                  for key in archive.files if key.startswith("model/")}

    feat_meta = meta["featurizer"]
    featurizer_cls = _FEATURIZERS[feat_meta["class"]]
    snapshot = _snapshot_from_json(feat_meta["snapshot"])
    featurizer = featurizer_cls(snapshot, feat_meta["attributes"],
                                **feat_meta["config"])

    model_cls = _MODELS[meta["model"]["kind"]]
    model = model_cls.from_state({"config": meta["model"], "arrays": arrays})

    estimator = LearnedEstimator(featurizer, model,
                                 name=meta["estimator_name"])
    # The persisted model is fitted; mark the wrapper accordingly.
    estimator.model._fitted = True
    estimator._fitted = True
    return estimator
