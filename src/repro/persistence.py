"""Persistence for trained estimators.

Training is the expensive step (the paper reports days of query
generation and minutes of training, Section 5.5.2); a production
deployment trains once and serves many estimates.  This module saves a
fitted :class:`~repro.estimators.learned.LearnedEstimator` to a single
``.npz`` file and loads it back *without the original data* — the
featurizer is reconstructed from its statistics snapshot.

Supported featurizers: Singular/Range/Conjunctive/Disjunction encodings
plus the equi-depth conjunctive variant (whose quantile boundaries are
data-derived, so they are persisted as fitted-state arrays alongside the
model weights).  Supported models: gradient boosting and the
feed-forward NN.  Loaded models are predict-only (optimizer state and
bin mappers are not kept).

Artifact corruption (truncated downloads, partial writes, a zip member
gone missing) surfaces as :class:`PersistenceError` naming the offending
path — never as a raw ``zipfile.BadZipFile`` or ``KeyError`` from three
layers down.

Example::

    save_estimator(estimator, "forest_gb_conj.npz")
    estimator = load_estimator("forest_gb_conj.npz")
"""

from __future__ import annotations

import json
import zipfile
import zlib
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.data.stats import ColumnStats, TableStats
from repro.estimators.learned import LearnedEstimator
from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    EquiDepthConjunctiveEncoding,
    RangeEncoding,
    SingularEncoding,
)
from repro.models.gradient_boosting import GradientBoostingRegressor
from repro.models.neural_net import NeuralNetRegressor

__all__ = ["save_estimator", "load_estimator", "PersistenceError",
           "FORMAT_VERSION"]

FORMAT_VERSION = 1


class PersistenceError(ValueError):
    """A persisted-estimator artifact is unreadable, corrupt, or invalid.

    Subclasses :class:`ValueError` so callers that predate this class
    (and the historical ``load_estimator`` error contract) keep working.
    """


_FEATURIZERS = {
    "SingularEncoding": SingularEncoding,
    "RangeEncoding": RangeEncoding,
    "ConjunctiveEncoding": ConjunctiveEncoding,
    "DisjunctionEncoding": DisjunctionEncoding,
    "EquiDepthConjunctiveEncoding": EquiDepthConjunctiveEncoding,
}

_MODELS = {
    "gradient_boosting": GradientBoostingRegressor,
    "neural_net": NeuralNetRegressor,
}

#: Errors the zip/npz layer raises on damaged archives.
_CORRUPTION_ERRORS = (zipfile.BadZipFile, zlib.error, OSError, EOFError)


def _snapshot_to_json(snapshot: TableStats) -> dict:
    return {
        "name": snapshot.name,
        "columns": {name: asdict(stats)
                    for name, stats in snapshot.columns.items()},
    }


def _snapshot_from_json(payload: dict) -> TableStats:
    columns = {}
    for name, fields in payload["columns"].items():
        fields = dict(fields)
        for key in ("histogram_bounds", "mcv_values", "mcv_fractions"):
            fields[key] = tuple(fields[key])
        columns[name] = ColumnStats(**fields)
    return TableStats(name=payload["name"], columns=columns)


def save_estimator(estimator: LearnedEstimator, path: str | Path) -> None:
    """Serialise a fitted learned estimator to one ``.npz`` file."""
    featurizer = estimator.featurizer
    class_name = type(featurizer).__name__
    if class_name not in _FEATURIZERS:
        raise TypeError(
            f"cannot persist featurizer of type {class_name}; supported: "
            f"{sorted(_FEATURIZERS)}"
        )
    model = estimator.model.model  # unwrap the log-space wrapper
    if not hasattr(model, "state_dict"):
        raise TypeError(
            f"cannot persist model of type {type(model).__name__}; it has "
            "no state_dict()"
        )
    state = model.state_dict()
    meta = {
        "format_version": FORMAT_VERSION,
        "estimator_name": estimator.name,
        "featurizer": {
            "class": class_name,
            "config": featurizer.get_config(),
            "attributes": list(featurizer.attributes),
            "snapshot": _snapshot_to_json(featurizer.snapshot()),
        },
        "model": state["config"],
    }
    arrays = {f"model/{key}": value for key, value in state["arrays"].items()}
    # Featurizers with data-derived geometry (equi-depth boundaries)
    # contribute fitted-state arrays so loading never needs the table.
    if hasattr(featurizer, "fitted_state_arrays"):
        for key, value in featurizer.fitted_state_arrays().items():
            arrays[f"featurizer/{key}"] = value
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, __meta__=np.asarray(json.dumps(meta)),
                            **arrays)


def _read_archive(path: Path) -> tuple[dict, dict, dict]:
    """Read ``(meta, model arrays, featurizer arrays)`` from ``path``.

    Every way the archive can be damaged — not a zip at all, a truncated
    central directory, a member whose compressed stream is cut short —
    is translated into :class:`PersistenceError` naming the path.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except (*_CORRUPTION_ERRORS, ValueError) as exc:
        raise PersistenceError(
            f"{path} is not a readable estimator artifact (truncated or "
            f"corrupt .npz): {exc}") from exc
    try:
        with archive:
            if "__meta__" not in archive:
                raise PersistenceError(
                    f"{path} is not a persisted estimator (missing the "
                    "__meta__ member)")
            try:
                meta = json.loads(str(archive["__meta__"]))
            except json.JSONDecodeError as exc:
                raise PersistenceError(
                    f"{path}: corrupt __meta__ member "
                    f"(invalid JSON: {exc})") from exc
            model_arrays = {}
            featurizer_arrays = {}
            for key in archive.files:
                if key.startswith("model/"):
                    model_arrays[key[len("model/"):]] = archive[key]
                elif key.startswith("featurizer/"):
                    featurizer_arrays[key[len("featurizer/"):]] = archive[key]
    except _CORRUPTION_ERRORS as exc:
        raise PersistenceError(
            f"{path} is not a readable estimator artifact (truncated or "
            f"corrupt .npz): {exc}") from exc
    return meta, model_arrays, featurizer_arrays


def load_estimator(path: str | Path) -> LearnedEstimator:
    """Load an estimator saved by :func:`save_estimator`.

    Raises :class:`PersistenceError` (a :class:`ValueError`) when the
    artifact is unreadable, truncated, or missing required members.
    """
    path = Path(path)
    meta, arrays, featurizer_arrays = _read_archive(path)
    if meta.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"{path}: unsupported format version "
            f"{meta.get('format_version')}; this build reads version "
            f"{FORMAT_VERSION}"
        )

    try:
        feat_meta = meta["featurizer"]
        featurizer_cls = _FEATURIZERS[feat_meta["class"]]
        snapshot = _snapshot_from_json(feat_meta["snapshot"])
        if hasattr(featurizer_cls, "from_fitted_state"):
            featurizer = featurizer_cls.from_fitted_state(
                snapshot, feat_meta["attributes"], feat_meta["config"],
                featurizer_arrays)
        else:
            featurizer = featurizer_cls(snapshot, feat_meta["attributes"],
                                        **feat_meta["config"])
        model_meta = meta["model"]
        model_cls = _MODELS[model_meta["kind"]]
    except KeyError as exc:
        raise PersistenceError(
            f"{path}: artifact metadata is missing required key "
            f"{exc.args[0]!r} (truncated or corrupt save?)") from exc
    try:
        model = model_cls.from_state({"config": model_meta,
                                      "arrays": arrays})
    except KeyError as exc:
        raise PersistenceError(
            f"{path}: artifact is missing persisted model array "
            f"{exc.args[0]!r} (truncated or corrupt save?)") from exc

    estimator = LearnedEstimator(featurizer, model,
                                 name=meta["estimator_name"])
    # The persisted model is fitted; mark the wrapper accordingly.
    estimator.model._fitted = True
    estimator._fitted = True
    return estimator
