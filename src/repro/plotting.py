"""Text-based box plots for q-error distributions.

The paper's figures are box plots (25/75 % boxes, 1/99 % whiskers,
median band).  Without a plotting stack available offline, this module
renders the same geometry as monospace text on a log-scaled axis, so
experiment results remain *visually* comparable in a terminal or a
markdown code block::

    GB+conj     |------[=====|========]----------------|        q99=38.1
    GB+simple   |---------[========|======]------------------|  q99=75.3

Used by the experiment runner for the figure experiments; also part of
the public API for ad-hoc comparisons.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.metrics import QErrorSummary

__all__ = ["ascii_boxplot", "boxplot_from_rows"]


def _position(value: float, lo: float, hi: float, width: int) -> int:
    """Map a value to a column on a log-scaled axis of ``width`` columns."""
    value = max(value, lo)
    if hi <= lo:
        return 0
    fraction = (math.log(value) - math.log(lo)) / (math.log(hi) - math.log(lo))
    return min(max(int(round(fraction * (width - 1))), 0), width - 1)


def ascii_boxplot(items: Sequence[tuple[str, QErrorSummary]],
                  width: int = 60) -> str:
    """Render labeled q-error summaries as aligned text box plots.

    Whiskers span the 1 %..99 % quantiles, the box spans 25 %..75 %, and
    ``|`` inside the box marks the median — the same convention as the
    paper's figures.  The axis is logarithmic and shared across rows.
    """
    if not items:
        return "(no data)"
    if width < 20:
        raise ValueError(f"width must be >= 20 columns, got {width}")
    lo = max(min(s.q01 for _, s in items), 1.0)
    hi = max(max(s.q99 for _, s in items), lo * 1.01)
    label_width = max(len(label) for label, _ in items)

    lines = []
    for label, summary in items:
        canvas = [" "] * width
        left = _position(max(summary.q01, lo), lo, hi, width)
        right = _position(summary.q99, lo, hi, width)
        box_left = _position(summary.q25, lo, hi, width)
        box_right = _position(summary.q75, lo, hi, width)
        median = _position(summary.median, lo, hi, width)
        for i in range(left, right + 1):
            canvas[i] = "-"
        for i in range(box_left, box_right + 1):
            canvas[i] = "="
        canvas[left] = "|"
        canvas[right] = "|"
        canvas[median] = "|" if canvas[median] != "=" else "+"
        lines.append(
            f"{label.ljust(label_width)}  {''.join(canvas)}  "
            f"median={summary.median:.2f} q99={summary.q99:.1f}"
        )
    axis = (f"{' ' * label_width}  [log axis: {lo:.2f} .. {hi:.1f}]")
    return "\n".join([*lines, axis])


def boxplot_from_rows(rows: Sequence[Mapping[str, object]],
                      label_keys: Sequence[str],
                      width: int = 60) -> str:
    """Render experiment-result rows (as produced by the experiment
    modules, with ``median``/``q25``/``q75``/``q01``/``q99`` columns) as
    a text box plot; ``label_keys`` name the columns forming the label.
    """
    items = []
    for row in rows:
        label = " ".join(str(row[k]) for k in label_keys)
        summary = QErrorSummary(
            count=int(row.get("queries", row.get("count", 0)) or 0),
            mean=float(row.get("mean", 1.0)),
            median=float(row["median"]),
            q25=float(row.get("q25", row["median"])),
            q75=float(row.get("q75", row["median"])),
            q01=float(row.get("q01", 1.0)),
            q99=float(row["q99"]),
            max=float(row.get("max", row["q99"])),
        )
        items.append((label, summary))
    return ascii_boxplot(items, width=width)
