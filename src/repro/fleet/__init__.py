"""Sharded multi-process serving: router, workers, and rollouts.

``repro.fleet`` scales :mod:`repro.serve` horizontally and gives it a
deployment story.  One front-end **router** consistent-hashes request
fingerprints across N worker processes — each worker a full
:class:`~repro.serve.server.EstimationService` with its own
micro-batcher, caches, and fused path — while a **supervisor** keeps
the worker pool alive (spawn, warm, drain, terminate over a JSON
control channel, crash restarts with backoff) and a **rollout state
machine** drives zero-downtime hot-swaps: publish a candidate to the
:class:`~repro.serve.registry.ModelRegistry`, warm it in fresh
workers, mirror a fraction of live traffic, compare windowed q-error
and latency SLO burn between baseline and candidate, then auto-promote
(flip ``latest``, drain the old pool) or auto-rollback on an explicit
gate.

Layering: ``repro.fleet`` sits *above* ``repro.serve`` — it imports
the serve layer freely, and the lint layering pins in ``pyproject``
keep the serve layer (and everything below it) from importing back up.
"""

from repro.fleet.hashring import HashRing
from repro.fleet.rollout import RolloutError, RolloutGate, RolloutManager
from repro.fleet.router import FleetRouter, RouterServer
from repro.fleet.workers import (
    LocalWorker,
    ProcessWorker,
    WorkerError,
    WorkerPool,
    WorkerSupervisor,
)

__all__ = [
    "HashRing",
    "FleetRouter",
    "RouterServer",
    "RolloutError",
    "RolloutGate",
    "RolloutManager",
    "LocalWorker",
    "ProcessWorker",
    "WorkerError",
    "WorkerPool",
    "WorkerSupervisor",
]
