"""Fleet worker process: one estimation service + a JSON control channel.

``python -m repro.fleet.worker --registry R --model M --worker-id w0``
loads the named model from the registry, boots a full
:class:`~repro.serve.server.EstimationServer` on an ephemeral port, and
then speaks a line-oriented JSON control protocol with its supervisor:

* stdout (worker → supervisor), one JSON object per line::

      {"event": "ready", "worker_id": ..., "port": ..., "url": ...,
       "model": ..., "version": ..., "model_version": ..., "pid": ...}
      {"event": "warmed", "count": N}
      {"event": "drained"} / {"event": "terminated"}
      {"event": "error", "detail": "..."}

* stdin (supervisor → worker), one JSON object per line::

      {"cmd": "warm", "sql": ["...", ...]}   pre-touch caches/fused path
      {"cmd": "ping"}                        liveness echo ({"event": "pong"})
      {"cmd": "drain"}                       graceful stop, then exit 0
      {"cmd": "terminate"}                   immediate stop, then exit 0

EOF on stdin means the supervisor is gone; the worker drains and exits
rather than lingering orphaned.  ``SIGTERM``/``SIGINT`` likewise
trigger the graceful drain, so a whole process group can be stopped
with one signal.  Estimate/feedback traffic never rides the control
channel — the router talks HTTP to the worker's port like any client.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

from repro.serve import EstimationServer, EstimationService, ModelRegistry

__all__ = ["build_parser", "main"]


class _SignalShutdown(Exception):
    """Raised out of the control loop by the SIGTERM/SIGINT handlers."""


def _emit(payload: dict) -> None:
    """Write one control event line; flush so the supervisor sees it now."""
    print(json.dumps(payload, sort_keys=True), flush=True)


def build_parser() -> argparse.ArgumentParser:
    """Build the worker's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.fleet.worker",
        description="One fleet worker: an estimation service under a "
                    "JSON control channel.")
    parser.add_argument("--registry", required=True,
                        help="model-registry root directory")
    parser.add_argument("--model", required=True,
                        help="published model name to serve")
    parser.add_argument("--version", default="latest",
                        help="registry version to serve (default: latest)")
    parser.add_argument("--worker-id", required=True,
                        help="stable worker id assigned by the supervisor")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--max-batch-size", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument("--max-inflight", type=int, default=256)
    parser.add_argument("--tick-every", type=int, default=64)
    return parser


def _control_loop(service: EstimationService, stdin) -> str:
    """Serve control commands until drain/terminate/EOF; returns how."""
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            command = json.loads(line)
        except json.JSONDecodeError as exc:
            _emit({"event": "error", "detail": f"bad control line: {exc}"})
            continue
        cmd = command.get("cmd") if isinstance(command, dict) else None
        if cmd == "ping":
            _emit({"event": "pong"})
        elif cmd == "warm":
            sqls = command.get("sql") or []
            try:
                if sqls:
                    service.estimate_many_sql([str(s) for s in sqls])
                _emit({"event": "warmed", "count": len(sqls)})
            except (ValueError, KeyError, RuntimeError) as exc:
                _emit({"event": "error", "detail": f"warm failed: {exc}"})
        elif cmd == "drain":
            return "drain"
        elif cmd == "terminate":
            return "terminate"
        else:
            _emit({"event": "error", "detail": f"unknown cmd {cmd!r}"})
    return "drain"  # EOF: supervisor vanished, drain and go


def main(argv: list[str] | None = None) -> int:
    """Worker entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    registry = ModelRegistry(args.registry)
    resolved = registry.resolve(args.model, args.version)
    estimator = registry.load(args.model, args.version)
    service = EstimationService(estimator,
                                max_batch_size=args.max_batch_size,
                                max_wait_ms=args.max_wait_ms,
                                cache_size=args.cache_size,
                                max_inflight=args.max_inflight,
                                model_version=resolved.label(),
                                tick_every=args.tick_every)
    server = EstimationServer(service, host=args.host, port=0)
    server.start()
    _emit({
        "event": "ready",
        "worker_id": args.worker_id,
        "port": server.port,
        "url": server.url,
        "model": resolved.name,
        "version": resolved.version,
        "model_version": resolved.label(),
        "pid": os.getpid(),
    })

    def _on_signal(signum, frame):
        raise _SignalShutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    outcome = "drain"
    try:
        outcome = _control_loop(service, sys.stdin)
    except _SignalShutdown:
        outcome = "drain"
    server.stop(drain=outcome == "drain")
    _emit({"event": "drained" if outcome == "drain" else "terminated"})
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
