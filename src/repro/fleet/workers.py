"""Worker handles, the live worker pool, and the crash-restart supervisor.

Three layers:

* **Handles** wrap one worker wherever it runs.
  :class:`ProcessWorker` spawns ``python -m repro.fleet.worker`` as a
  subprocess and speaks the JSON control channel over its
  stdin/stdout (spawn → ``ready``, then ``warm`` / ``drain`` /
  ``terminate``); :class:`LocalWorker` hosts the same
  :class:`~repro.serve.server.EstimationServer` on a thread in this
  process — byte-compatible HTTP surface, no process boundary — which
  is what the fleet tests and single-process deployments use.
* :class:`WorkerPool` is the routing view: the live ``worker_id →
  handle`` map plus the consistent-hash ring over the ids.  Replacing
  a crashed worker re-binds the *same* id to a fresh handle, so the
  ring (and therefore key placement) is untouched by restarts.
* :class:`WorkerSupervisor` keeps the pool populated: it spawns
  workers through a caller-provided factory, polls liveness, and
  restarts dead workers with exponential backoff, re-adding them under
  their old id.

Every handle exposes ``drain()`` (graceful: in-flight work completes)
and ``terminate()`` (hard stop); the supervisor's ``stop()`` walks the
pool so no spawned child outlives the fleet — the invariant lint rule
RPR111 (subprocess-without-drain) checks statically.
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import threading
from pathlib import Path
from typing import Callable

from repro import obs
from repro.fleet.hashring import DEFAULT_REPLICAS, HashRing
from repro.serve.client import ServeClient

__all__ = ["WorkerError", "WorkerHandle", "ProcessWorker", "LocalWorker",
           "WorkerPool", "WorkerSupervisor"]


class WorkerError(RuntimeError):
    """A worker failed to start, answer, or stop in time."""


class WorkerHandle:
    """Common surface of one running worker (process-backed or local)."""

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.url: str = ""
        self.model_version: str = ""
        self._client: ServeClient | None = None

    @property
    def client(self) -> ServeClient:
        """A (lazily created) keep-alive client for this worker's API."""
        if self._client is None:
            if not self.url:
                raise WorkerError(
                    f"worker {self.worker_id} has no URL yet (not started?)")
            self._client = ServeClient(self.url, timeout=30.0)
        return self._client

    def alive(self) -> bool:
        """Whether the worker is believed able to answer requests."""
        raise NotImplementedError

    def warm(self, sqls: list[str]) -> None:
        """Pre-touch the worker's caches with representative SQL."""
        raise NotImplementedError

    def drain(self) -> None:
        """Stop gracefully: in-flight/queued requests complete first."""
        raise NotImplementedError

    def terminate(self) -> None:
        """Stop immediately; queued work may be cancelled."""
        raise NotImplementedError

    def _close_client(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def describe(self) -> dict:
        """Status row for ``fleet status`` / the router's health view."""
        return {
            "worker_id": self.worker_id,
            "url": self.url,
            "model_version": self.model_version,
            "alive": self.alive(),
            "kind": type(self).__name__,
        }


def _repro_pythonpath() -> str:
    """PYTHONPATH entry that makes ``import repro`` work in a child."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


class ProcessWorker(WorkerHandle):
    """A worker subprocess driven over the JSON control channel.

    ``start()`` spawns ``python -m repro.fleet.worker``, waits for its
    ``ready`` line (which carries the ephemeral port), and wires a
    reader thread that turns every later stdout line into a queued
    control event.  ``drain``/``terminate`` send the matching command
    and fall back to ``SIGTERM``/``SIGKILL`` if the channel is dead.
    """

    def __init__(self, worker_id: str, registry_root: str | Path,
                 model: str, version: int | str = "latest",
                 host: str = "127.0.0.1", cache_size: int = 1024,
                 max_batch_size: int = 64, max_wait_ms: float = 2.0,
                 max_inflight: int = 256, tick_every: int = 64,
                 start_timeout: float = 60.0,
                 stop_timeout: float = 30.0) -> None:
        super().__init__(worker_id)
        self._argv = [
            sys.executable, "-m", "repro.fleet.worker",
            "--registry", str(registry_root),
            "--model", model,
            "--version", str(version),
            "--worker-id", worker_id,
            "--host", host,
            "--cache-size", str(cache_size),
            "--max-batch-size", str(max_batch_size),
            "--max-wait-ms", str(max_wait_ms),
            "--max-inflight", str(max_inflight),
            "--tick-every", str(tick_every),
        ]
        self._start_timeout = start_timeout
        self._stop_timeout = stop_timeout
        self._proc: subprocess.Popen | None = None
        self._events: queue.Queue[dict] = queue.Queue()
        self._reader: threading.Thread | None = None
        self.pid: int | None = None

    def start(self) -> "ProcessWorker":
        """Spawn the subprocess and wait for its ``ready`` event."""
        if self._proc is not None:
            raise WorkerError(f"worker {self.worker_id} already started")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [_repro_pythonpath()]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        self._proc = subprocess.Popen(
            self._argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=None, text=True, bufsize=1, env=env)
        # Daemon as a crash backstop only; joined on every stop path.
        self._reader = threading.Thread(
            target=self._read_events,
            name=f"repro-fleet-reader-{self.worker_id}", daemon=True)
        self._reader.start()
        ready = self._wait_event("ready", self._start_timeout)
        self.url = str(ready.get("url", ""))
        self.model_version = str(ready.get("model_version", ""))
        self.pid = ready.get("pid")
        if not self.url:
            raise WorkerError(
                f"worker {self.worker_id} ready event carried no url")
        return self

    def _read_events(self) -> None:
        proc = self._proc
        if proc is None or proc.stdout is None:
            return
        for line in proc.stdout:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # stray non-protocol output; ignore
            if isinstance(event, dict):
                self._events.put(event)

    def _wait_event(self, name: str, timeout: float) -> dict:
        """Next event named ``name`` (errors surface; others dropped)."""
        try:
            while True:
                event = self._events.get(timeout=timeout)
                kind = event.get("event")
                if kind == name:
                    return event
                if kind == "error":
                    raise WorkerError(
                        f"worker {self.worker_id} error: "
                        f"{event.get('detail')}")
        except queue.Empty:
            raise WorkerError(
                f"worker {self.worker_id} sent no {name!r} event within "
                f"{timeout}s (exit code "
                f"{self._proc.poll() if self._proc else None})") from None

    def _send(self, command: dict) -> None:
        proc = self._proc
        if proc is None or proc.stdin is None or proc.poll() is not None:
            raise WorkerError(
                f"worker {self.worker_id} control channel is closed")
        try:
            proc.stdin.write(json.dumps(command) + "\n")
            proc.stdin.flush()
        except (OSError, ValueError) as exc:
            raise WorkerError(
                f"worker {self.worker_id} control write failed: {exc}"
            ) from exc

    def alive(self) -> bool:
        """True while the subprocess is running."""
        return self._proc is not None and self._proc.poll() is None

    def warm(self, sqls: list[str]) -> None:
        """Ask the worker to pre-run ``sqls`` through its service."""
        self._send({"cmd": "warm", "sql": list(sqls)})
        self._wait_event("warmed", self._start_timeout)

    def drain(self) -> None:
        """Graceful stop: ``drain`` command, then wait for exit."""
        self._shutdown("drain")

    def terminate(self) -> None:
        """Hard stop: ``terminate`` command, escalate to signals."""
        self._shutdown("terminate")

    def _shutdown(self, mode: str) -> None:
        proc = self._proc
        if proc is None:
            return
        self._close_client()
        if proc.poll() is None:
            try:
                self._send({"cmd": mode})
            except WorkerError:
                proc.terminate()
            try:
                proc.wait(timeout=self._stop_timeout)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        if proc.stdin is not None:
            try:
                proc.stdin.close()
            except OSError:
                pass  # pipe already gone with the process
        if self._reader is not None:
            self._reader.join(timeout=5.0)
            self._reader = None


class LocalWorker(WorkerHandle):
    """An in-process worker: the same HTTP surface on a thread.

    Tests and single-process deployments use this — routing, draining,
    and rollout logic cannot tell it from a :class:`ProcessWorker`,
    but there is no interpreter boundary (and therefore no real CPU
    parallelism).  ``fail()`` simulates a crash: the port closes
    without draining, exactly what the router's sibling retry and the
    supervisor's restart path must absorb.
    """

    def __init__(self, worker_id: str, service, host: str = "127.0.0.1"
                 ) -> None:
        super().__init__(worker_id)
        from repro.serve.server import EstimationServer

        self._service = service
        self._server = EstimationServer(service, host=host, port=0)
        self._alive = False

    @property
    def service(self):
        """The wrapped in-process estimation service."""
        return self._service

    def start(self) -> "LocalWorker":
        """Start the embedded server; fills in ``url``."""
        self._server.start()
        self.url = self._server.url
        self.model_version = self._service.model_version
        self._alive = True
        return self

    def alive(self) -> bool:
        """True until drained, terminated, or failed."""
        return self._alive

    def warm(self, sqls: list[str]) -> None:
        """Run ``sqls`` through the service to heat its caches."""
        if sqls:
            self._service.estimate_many_sql(list(sqls))

    def drain(self) -> None:
        """Graceful stop of the embedded server."""
        if self._alive:
            self._alive = False
            self._close_client()
            self._server.stop(drain=True)

    def terminate(self) -> None:
        """Hard stop of the embedded server."""
        if self._alive:
            self._alive = False
            self._close_client()
            self._server.stop(drain=False)

    def fail(self) -> None:
        """Simulate a crash: close the port, mark the worker dead."""
        self.terminate()


class WorkerPool:
    """The live worker set and its consistent-hash routing ring.

    All mutation and lookup happens under one lock (membership changes
    are rare and lookups are a bisect — contention is negligible), so
    the router can read while the supervisor or a rollout rewires.
    """

    def __init__(self, replicas: int = DEFAULT_REPLICAS) -> None:
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerHandle] = {}
        self._ring = HashRing(replicas=replicas)

    def add(self, handle: WorkerHandle) -> None:
        """Add (or re-bind) ``handle`` under its worker id."""
        with self._lock:
            self._workers[handle.worker_id] = handle
            self._ring.add(handle.worker_id)

    def remove(self, worker_id: str) -> WorkerHandle | None:
        """Drop a worker from routing; returns its handle if present."""
        with self._lock:
            handle = self._workers.pop(worker_id, None)
            self._ring.remove(worker_id)
            return handle

    def get(self, worker_id: str) -> WorkerHandle | None:
        """The current handle bound to ``worker_id`` (None if gone)."""
        with self._lock:
            return self._workers.get(worker_id)

    def ids(self) -> tuple[str, ...]:
        """Member worker ids, sorted."""
        with self._lock:
            return tuple(sorted(self._workers))

    def handles(self) -> tuple[WorkerHandle, ...]:
        """Member handles, in sorted-id order."""
        with self._lock:
            return tuple(self._workers[worker_id]
                         for worker_id in sorted(self._workers))

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def preference(self, key: str, count: int) -> list[WorkerHandle]:
        """Up to ``count`` distinct handles in ring order from ``key``."""
        with self._lock:
            ids = self._ring.preference(key, count)
            return [self._workers[worker_id] for worker_id in ids
                    if worker_id in self._workers]

    def swap(self, handles: list[WorkerHandle]
             ) -> tuple[WorkerHandle, ...]:
        """Atomically replace the whole membership (rollout promote).

        Returns the displaced handles so the caller can drain them
        *after* routing has already moved — the zero-downtime order.
        """
        with self._lock:
            old = tuple(self._workers[worker_id]
                        for worker_id in sorted(self._workers))
            self._workers = {handle.worker_id: handle
                             for handle in handles}
            self._ring = HashRing(tuple(self._workers),
                                  replicas=self._ring.replicas)
            return old


class WorkerSupervisor:
    """Keeps a :class:`WorkerPool` populated, restarting crashed workers.

    ``factory(worker_id)`` must return a *started* handle.  The monitor
    thread polls liveness; a dead worker is removed from routing,
    waited out with exponential backoff (doubling per consecutive
    failure up to ``backoff_max``), and respawned under the same id —
    the ring never changes shape, so no keys move on a restart.
    """

    def __init__(self, factory: Callable[[str], WorkerHandle],
                 pool: WorkerPool | None = None,
                 poll_interval: float = 0.25,
                 backoff_base: float = 0.5,
                 backoff_max: float = 8.0) -> None:
        self.pool = pool if pool is not None else WorkerPool()
        self._factory = factory
        self._poll_interval = poll_interval
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._lock = threading.Lock()
        self._supervised: set[str] = set()
        self._failures: dict[str, int] = {}
        self._restarts: dict[str, int] = {}

    def spawn(self, count: int, prefix: str = "w") -> list[WorkerHandle]:
        """Start ``count`` workers (ids ``<prefix>0..``) into the pool."""
        handles = []
        for index in range(count):
            worker_id = f"{prefix}{index}"
            handle = self._factory(worker_id)
            self.pool.add(handle)
            with self._lock:
                self._supervised.add(worker_id)
            handles.append(handle)
        return handles

    def adopt(self, handle: WorkerHandle) -> None:
        """Take over supervision of an externally started handle."""
        self.pool.add(handle)
        with self._lock:
            self._supervised.add(handle.worker_id)

    def release(self, worker_id: str) -> WorkerHandle | None:
        """Stop supervising (and routing to) a worker; returns it."""
        with self._lock:
            self._supervised.discard(worker_id)
            self._failures.pop(worker_id, None)
        return self.pool.remove(worker_id)

    def watch(self, worker_id: str) -> None:
        """Begin supervising a worker already present in the pool.

        Supervision bookkeeping only — the rollout promote path flips
        the whole pool membership atomically with ``pool.swap`` and
        then reconciles supervision with ``watch``/``forget``.
        """
        with self._lock:
            self._supervised.add(worker_id)

    def forget(self, worker_id: str) -> None:
        """Stop supervising a worker without touching the pool."""
        with self._lock:
            self._supervised.discard(worker_id)
            self._failures.pop(worker_id, None)

    def restarts(self) -> dict[str, int]:
        """Per-worker restart counts (for status/metrics)."""
        with self._lock:
            return dict(self._restarts)

    def start(self) -> "WorkerSupervisor":
        """Start the liveness monitor thread."""
        if self._monitor is not None:
            raise WorkerError("supervisor already started")
        self._stop.clear()
        self._monitor = threading.Thread(target=self._watch,
                                         name="repro-fleet-supervisor",
                                         daemon=True)
        self._monitor.start()
        return self

    def _watch(self) -> None:
        while not self._stop.wait(self._poll_interval):
            with self._lock:
                supervised = sorted(self._supervised)
            for worker_id in supervised:
                if self._stop.is_set():
                    return
                handle = self.pool.get(worker_id)
                if handle is not None and handle.alive():
                    with self._lock:
                        self._failures.pop(worker_id, None)
                    continue
                self._restart(worker_id, handle)

    def _restart(self, worker_id: str, dead: WorkerHandle | None) -> None:
        """Replace a dead worker under its old id, with backoff."""
        with self._lock:
            if worker_id not in self._supervised:
                return
            failures = self._failures.get(worker_id, 0)
            self._failures[worker_id] = failures + 1
        self.pool.remove(worker_id)
        if dead is not None:
            try:
                dead.terminate()  # reap the corpse / close sockets
            except WorkerError:
                pass  # already gone
        backoff = min(self._backoff_base * (2.0 ** failures),
                      self._backoff_max)
        if self._stop.wait(backoff):
            return
        try:
            handle = self._factory(worker_id)
        except Exception:  # repro: ignore[RPR103] — supervisor must outlive a failed spawn; retried next sweep
            obs.get_registry().counter(
                "fleet.worker.respawn_failures_total").inc()
            return
        self.pool.add(handle)
        with self._lock:
            self._restarts[worker_id] = self._restarts.get(worker_id, 0) + 1
        obs.get_registry().counter("fleet.worker.restarts_total").inc()

    def stop(self, drain: bool = True) -> None:
        """Stop monitoring and shut every supervised worker down."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join()
            self._monitor = None
        for handle in self.pool.handles():
            self.pool.remove(handle.worker_id)
            try:
                if drain:
                    handle.drain()
                else:
                    handle.terminate()
            except WorkerError:
                pass  # already dead; nothing left to stop
        with self._lock:
            self._supervised.clear()

    def __enter__(self) -> "WorkerSupervisor":
        """Start monitoring on context entry."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Drain the fleet on context exit."""
        self.stop(drain=True)
        return False
