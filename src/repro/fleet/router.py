"""Fleet router: one HTTP front door sharding requests across workers.

The router owns no model.  It keys every request by its SQL
*fingerprint* (statement template, literals masked), maps the key onto
a worker through the pool's consistent-hash ring — so all instances of
one prepared statement hit the same worker and its parse/plan caches
stay hot — and forwards over the worker's ordinary HTTP API with the
caller's ``X-Repro-Trace`` id, so client → router → worker stitches
into one trace.

Failure handling is deliberately narrow: only *transport* errors (the
worker is unreachable — crashed, mid-restart) fail over to the next
distinct worker on the ring (``retries`` siblings, in ring order).  A
worker's ``503`` saturation answer propagates to the client together
with its ``Retry-After`` hint — retrying a saturated shard on a
sibling would melt the fleet one worker at a time — and 4xx responses
are the client's mistake wherever they are served.

Batches split by owner: positions are grouped per owning worker, the
sub-batches fan out concurrently, and the answers merge back into
request order.  The batch response additionally reports the distinct
``workers`` that served it.

Telemetry aggregates here too: ``GET /metrics`` answers a JSON
document with the router's own registry plus every worker's snapshot,
and ``GET /metrics.prom`` merges the workers' Prometheus pages into
one scrape, re-labeling every sample with ``worker="<id>"``
(``worker="router"`` for the router's own series).

A :class:`~repro.fleet.rollout.RolloutManager` may be attached; the
router then calls its ``on_estimate``/``on_feedback`` hooks after each
forwarded request, which is how canary traffic mirroring and the
promotion gate see live traffic without the router knowing rollout
rules.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping

from repro import obs
from repro.fleet.rollout import RolloutError
from repro.fleet.workers import WorkerHandle, WorkerPool, WorkerSupervisor
from repro.obs.prometheus import (
    CONTENT_TYPE,
    escape_label_value,
    parse_exposition,
    render_prometheus,
)
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import JsonRequestHandler, ThreadedJsonServer
from repro.sql.parser import fingerprint_sql

__all__ = ["FleetRouter", "RouterServer", "merge_prometheus_pages"]


def _format_value(value: float) -> str:
    """Format a re-emitted sample value exactly like the renderer."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _relabel(name: str, labels: Mapping[str, str], value: float,
             worker: str) -> str:
    """One sample line with ``worker="<id>"`` appended to its labels."""
    merged = {**labels, "worker": worker}
    inner = ",".join(f'{key}="{escape_label_value(val)}"'
                     for key, val in merged.items())
    return f"{name}{{{inner}}} {_format_value(value)}"


def merge_prometheus_pages(pages: Mapping[str, str]) -> str:
    """Merge per-source exposition pages into one labeled scrape.

    ``pages`` maps a source name (worker id, or ``router``) to its own
    exposition text.  Every sample gains a ``worker`` label; each
    family's ``# TYPE`` line is emitted once, with per-source sample
    order preserved (histogram bucket runs stay cumulative within one
    ``worker`` label set, which :func:`~repro.obs.prometheus.
    parse_exposition` validates group-wise).  Sources merge in sorted
    name order and families in sorted family order, so the page is a
    deterministic function of its inputs.
    """
    families: dict[str, dict] = {}
    for source in sorted(pages):
        parsed = parse_exposition(pages[source])
        for family in parsed:
            data = parsed[family]
            entry = families.setdefault(
                family, {"type": data["type"], "lines": []})
            if entry["type"] != data["type"]:
                raise ValueError(
                    f"family {family!r} is a {entry['type']} on one "
                    f"worker and a {data['type']} on {source!r}")
            for name, labels, value in data["samples"]:
                entry["lines"].append(_relabel(name, labels, value, source))
    lines: list[str] = []
    for family in sorted(families):
        entry = families[family]
        lines.append(f"# TYPE {family} {entry['type']}")
        lines.extend(entry["lines"])
    return "\n".join(lines) + "\n" if lines else ""


class FleetRouter:
    """Routes the serving API across a :class:`WorkerPool`.

    Parameters
    ----------
    pool:
        The live worker pool (usually a supervisor's).
    supervisor:
        Optional :class:`WorkerSupervisor` — only consulted for
        restart counts in :meth:`status`.
    retries:
        How many ring *siblings* to try after the owner fails with a
        transport error (crashed worker).  ``1`` means owner + one
        sibling.
    recent_sql_limit:
        How many recently routed statements to remember; the rollout
        manager replays them to warm candidate workers.
    """

    def __init__(self, pool: WorkerPool,
                 supervisor: WorkerSupervisor | None = None,
                 retries: int = 1, recent_sql_limit: int = 256) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._pool = pool
        self._supervisor = supervisor
        self._retries = retries
        self._recent: deque[str] = deque(maxlen=recent_sql_limit)
        self._recent_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="repro-fleet-router")
        self._rollout = None

    @property
    def pool(self) -> WorkerPool:
        """The worker pool this router reads placement from."""
        return self._pool

    @property
    def rollout(self):
        """The attached rollout manager, or ``None``."""
        return self._rollout

    def set_rollout(self, rollout) -> None:
        """Attach (or detach, with ``None``) a rollout manager."""
        self._rollout = rollout

    def recent_sql(self) -> list[str]:
        """Recently routed statements, oldest first (canary warm-up)."""
        with self._recent_lock:
            return list(self._recent)

    def close(self) -> None:
        """Shut the batch fan-out executor down (joins its threads)."""
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def _candidates(self, key: str) -> list[WorkerHandle]:
        try:
            handles = self._pool.preference(key, self._retries + 1)
        except KeyError:
            handles = []
        if not handles:
            raise ServeClientError("no live workers in the fleet",
                                   status=0)
        return handles

    def _forward(self, key: str,
                 call: Callable[[ServeClient], dict]
                 ) -> tuple[dict, WorkerHandle]:
        """Forward with sibling failover, surviving a mid-request swap.

        If *every* handle of the placement we read fails with a
        transport error, the pool membership may have flipped between
        our lookup and the call (a rollout hot-swap draining the old
        generation).  One fresh lookup retries against the new pool;
        with unchanged membership the retry hits the same dead workers
        and the original error propagates.
        """
        try:
            return self._forward_once(key, call)
        except ServeClientError as exc:
            if exc.status != 0:
                raise
            return self._forward_once(key, call)

    def _forward_once(self, key: str,
                      call: Callable[[ServeClient], dict]
                      ) -> tuple[dict, WorkerHandle]:
        """Try the owner, then ring siblings, on transport errors only."""
        registry = obs.get_registry()
        handles = self._candidates(key)
        failure: ServeClientError | None = None
        for index, handle in enumerate(handles):
            try:
                return call(handle.client), handle
            except ServeClientError as exc:
                if exc.status != 0:
                    raise  # an HTTP answer: the worker spoke; honour it
                failure = exc
                if index + 1 < len(handles):
                    registry.counter("fleet.failovers_total").inc()
        assert failure is not None
        raise failure

    def estimate(self, sql: str, trace_id: int | None = None) -> dict:
        """Route one estimate; response gains ``worker_id`` and
        ``model_version`` from the answering worker."""
        registry = obs.get_registry()
        registry.counter("fleet.requests_total").inc()
        registry.counter("fleet.queries_total").inc()
        fingerprint, _ = fingerprint_sql(sql)
        with self._recent_lock:
            self._recent.append(sql)
        watch = obs.get_event_log().stopwatch()
        with watch:
            response, handle = self._forward(
                fingerprint,
                lambda client: client.estimate(sql, trace_id=trace_id))
        response = dict(response)
        response.setdefault("worker_id", handle.worker_id)
        response.setdefault("model_version", handle.model_version)
        rollout = self._rollout
        if rollout is not None:
            rollout.on_estimate(sql, fingerprint, response, watch.seconds,
                                trace_id)
        return response

    def estimate_batch(self, sqls: list[str],
                       trace_id: int | None = None) -> dict:
        """Route a batch: split by owning worker, fan out, merge back.

        The merged response carries ``estimates`` in request order plus
        the sorted distinct ``workers`` that served the batch.
        """
        registry = obs.get_registry()
        registry.counter("fleet.requests_total").inc()
        registry.counter("fleet.queries_total").inc(len(sqls))
        if not sqls:
            return {"estimates": [], "workers": []}
        groups: dict[str, list[int]] = {}
        fingerprints: list[str] = []
        for position, sql in enumerate(sqls):
            fingerprint, _ = fingerprint_sql(sql)
            fingerprints.append(fingerprint)
            owner = self._candidates(fingerprint)[0].worker_id
            groups.setdefault(owner, []).append(position)
        with self._recent_lock:
            self._recent.extend(sqls)

        def forward_group(positions: list[int]) -> tuple[dict, WorkerHandle]:
            subset = [sqls[position] for position in positions]
            # The group's first fingerprint anchors the sibling walk;
            # every position in the group shares the same owner.
            return self._forward(
                fingerprints[positions[0]],
                lambda client: client.estimate_batch_detail(
                    subset, trace_id=trace_id))

        ordered = sorted(groups.values(), key=lambda g: g[0])
        if len(ordered) == 1:
            outcomes = [forward_group(ordered[0])]
        else:
            outcomes = list(self._executor.map(forward_group, ordered))
        estimates: list[float] = [0.0] * len(sqls)
        workers: set[str] = set()
        for positions, (response, handle) in zip(ordered, outcomes):
            values = response["estimates"]
            for position, value in zip(positions, values):
                estimates[position] = float(value)
            workers.add(handle.worker_id)
        return {"estimates": estimates, "workers": sorted(workers)}

    def feedback(self, sql: str, true_cardinality: float,
                 estimate: float | None = None,
                 trace_id: int | None = None) -> dict:
        """Route feedback to the statement's owning worker."""
        registry = obs.get_registry()
        registry.counter("fleet.requests_total").inc()
        registry.counter("fleet.feedback_total").inc()
        fingerprint, _ = fingerprint_sql(sql)
        response, handle = self._forward(
            fingerprint,
            lambda client: client.feedback(sql, true_cardinality,
                                           estimate=estimate,
                                           trace_id=trace_id))
        response = dict(response)
        response.setdefault("worker_id", handle.worker_id)
        rollout = self._rollout
        if rollout is not None:
            rollout.on_feedback(sql, true_cardinality, response, trace_id)
        return response

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def health(self) -> list[dict]:
        """One status row per pool worker, with a live HTTP probe."""
        rows = []
        for handle in self._pool.handles():
            row = handle.describe()
            if row["alive"]:
                try:
                    handle.client.healthz()
                    row["healthy"] = True
                except ServeClientError:
                    row["healthy"] = False
            else:
                row["healthy"] = False
            rows.append(row)
        return rows

    def status(self) -> dict:
        """The ``/fleet/status`` document: workers, rollout, restarts."""
        rollout = self._rollout
        status = {
            "workers": self.health(),
            "rollout": (rollout.status() if rollout is not None
                        else {"state": "idle"}),
        }
        if self._supervisor is not None:
            status["restarts"] = self._supervisor.restarts()
        return status

    def metrics(self) -> dict:
        """Merged JSON metrics: the router's registry + every worker's."""
        workers: dict[str, dict] = {}
        for handle in self._pool.handles():
            try:
                workers[handle.worker_id] = json.loads(
                    handle.client.metrics())
            except ServeClientError as exc:
                workers[handle.worker_id] = {"unreachable": str(exc)}
        return {"router": json.loads(obs.get_registry().to_json()),
                "workers": workers}

    def metrics_prometheus(self) -> str:
        """One exposition page over the whole fleet (see module docs).

        Unreachable workers are simply absent from the scrape — their
        series going stale *is* the signal a monitoring stack expects.
        """
        pages: dict[str, str] = {"router": render_prometheus()}
        for handle in self._pool.handles():
            try:
                pages[handle.worker_id] = handle.client.metrics_prometheus()
            except ServeClientError:
                continue
        return merge_prometheus_pages(pages)


class _RouterHandler(JsonRequestHandler):
    """Routes the fleet HTTP API onto a :class:`FleetRouter`.

    Subclassed per server with the ``router`` class attribute bound;
    never instantiated directly.
    """

    router: FleetRouter

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        """Serve ``/healthz``, merged metrics, and ``/fleet/status``."""
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok",
                                  "workers": len(self.router.pool)})
        elif self.path == "/metrics.prom":
            body = self.router.metrics_prometheus()
            self._send_bytes(200, body.encode("utf-8"),
                             content_type=CONTENT_TYPE)
        elif self.path == "/metrics":
            body = json.dumps(self.router.metrics(), sort_keys=True) + "\n"
            self._send_bytes(200, body.encode("utf-8"),
                             content_type="application/json")
        elif self.path == "/fleet/status":
            self._send_json(200, self.router.status())
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        """Serve the estimate/feedback API plus rollout control."""
        trace_id = obs.parse_trace_header(
            self.headers.get(obs.TRACE_HEADER))
        with obs.use_trace_context(trace_id):
            if self.path == "/v1/estimate":
                self._handle(lambda payload: self._estimate(payload,
                                                            trace_id))
            elif self.path == "/v1/estimate_batch":
                self._handle(lambda payload: self._estimate_batch(payload,
                                                                  trace_id))
            elif self.path == "/v1/feedback":
                self._handle(lambda payload: self._feedback(payload,
                                                            trace_id))
            elif self.path == "/fleet/rollout":
                self._handle(self._rollout_begin)
            elif self.path == "/fleet/promote":
                self._handle(lambda payload: self._rollout_decide(
                    "promote"))
            elif self.path == "/fleet/rollback":
                self._handle(lambda payload: self._rollout_decide(
                    "rollback"))
            else:
                self._send_json(404,
                                {"error": f"no such endpoint {self.path}"})

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _estimate(self, payload: dict, trace_id: int | None) -> dict:
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise ValueError('request body must carry {"sql": "<query>"}')
        return self.router.estimate(sql, trace_id=trace_id)

    def _estimate_batch(self, payload: dict,
                        trace_id: int | None) -> dict:
        sqls = payload.get("sql")
        if (not isinstance(sqls, list)
                or not all(isinstance(s, str) for s in sqls)):
            raise ValueError(
                'request body must carry {"sql": ["<query>", ...]}')
        return self.router.estimate_batch(sqls, trace_id=trace_id)

    def _feedback(self, payload: dict, trace_id: int | None) -> dict:
        sql = payload.get("sql")
        true_cardinality = payload.get("true_cardinality")
        if not isinstance(sql, str) \
                or not isinstance(true_cardinality, (int, float)):
            raise ValueError(
                'request body must carry {"sql": "<query>", '
                '"true_cardinality": <number>}')
        estimate = payload.get("estimate")
        if estimate is not None and not isinstance(estimate, (int, float)):
            raise ValueError('"estimate" must be a number when present')
        return self.router.feedback(
            sql, float(true_cardinality),
            estimate=None if estimate is None else float(estimate),
            trace_id=trace_id)

    def _require_rollout(self):
        rollout = self.router.rollout
        if rollout is None:
            raise ValueError(
                "no rollout manager is attached to this router")
        return rollout

    def _rollout_begin(self, payload: dict) -> dict:
        version = payload.get("version", "latest")
        return self._require_rollout().begin(version)

    def _rollout_decide(self, action: str) -> dict:
        rollout = self._require_rollout()
        if action == "promote":
            return rollout.promote(reason="operator request")
        return rollout.rollback(reason="operator request")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _handle(self, endpoint) -> None:
        try:
            payload = self._read_json()
            response = endpoint(payload)
        except ServeClientError as exc:
            obs.get_registry().counter("fleet.errors_total").inc()
            if exc.status in (0, 503):
                # Worker saturation (with its Retry-After hint) and
                # fleet-wide unreachability both mean "try again soon".
                retry_after = exc.retry_after if exc.retry_after else 1
                self._send_json(503, {"error": str(exc)},
                                extra_headers={
                                    "Retry-After": str(retry_after)})
            elif 400 <= exc.status < 600:
                self._send_json(exc.status, {"error": str(exc)})
            else:
                self._send_json(502, {"error": str(exc)})
        except RolloutError as exc:
            obs.get_registry().counter("fleet.errors_total").inc()
            self._send_json(409, {"error": str(exc)})
        except (ValueError, KeyError) as exc:
            obs.get_registry().counter("fleet.errors_total").inc()
            message = exc.args[0] if exc.args else str(exc)
            self._send_json(400, {"error": str(message)})
        except Exception as exc:  # repro: ignore[RPR103] — mapped to a 500 response
            obs.get_registry().counter("fleet.errors_total").inc()
            self._send_json(500, {"error": f"internal error: {exc}"})
        else:
            self._send_json(200, response)


class RouterServer(ThreadedJsonServer):
    """The fleet's HTTP front door around one :class:`FleetRouter`.

    Same transport behaviour as the single-process
    :class:`~repro.serve.server.EstimationServer` — keep-alive
    connections, graceful drain on ``stop()`` — so clients cannot tell
    a router from a worker except by the extra response fields and the
    ``/fleet/*`` endpoints.
    """

    def __init__(self, router: FleetRouter, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        super().__init__(_RouterHandler, host=host, port=port,
                         thread_name="repro-fleet-http", router=router)
        self._router = router

    @property
    def router(self) -> FleetRouter:
        """The wrapped router."""
        return self._router

    def _on_stop(self, drain: bool) -> None:
        """Close the router's fan-out executor after the listener stops."""
        self._router.close()
