"""Zero-downtime model rollout with a telemetry-gated canary.

State machine (all transitions recorded in ``history``)::

    idle ──begin()──▶ warming ──▶ canary ──promote()──▶ promoted
                         │           │
                         │           └──rollback()──▶ rolled_back
                         └──(spawn failure)─────────▶ rolled_back

``begin(version)`` resolves the candidate artifact from the
:class:`~repro.serve.registry.ModelRegistry`, spawns a *candidate*
worker pool next to the live one, and warms it with the router's
recently routed statements.  During **canary**, the router's hooks
feed this manager live traffic:

* ``on_estimate`` mirrors a deterministic fraction of single-estimate
  traffic to the candidate pool (keyed on the statement fingerprint,
  so the same statements are always mirrored — comparisons stay
  apples-to-apples) and records baseline vs. candidate latency into
  the ``fleet.canary.latency.window`` monitor and the two latency SLO
  trackers.
* ``on_feedback`` mirrors *every* feedback report: the baseline
  worker's observed q-error and the candidate's own re-estimated
  q-error land in ``fleet.canary.qerror.window`` under their
  ``deployment`` label — the windowed accuracy comparison the gate
  reads.

Once both deployments have at least ``gate.min_feedback`` q-error
observations in the window, the gate evaluates automatically: the
candidate **promotes** iff its windowed p95 q-error is within
``gate.max_qerror_ratio`` of the baseline's *and* its short-window
latency SLO burn rate is at most ``gate.max_latency_burn``; otherwise
it **rolls back**.  A candidate worker becoming unreachable during
canary also rolls back immediately.

Promotion is the zero-downtime hot-swap: point the registry's
``latest`` at the candidate (so restarts and new workers load it),
atomically swap the candidate handles into the routing pool (requests
flip worker sets between two consecutive lookups — none are dropped),
then gracefully drain the displaced baseline workers, whose in-flight
requests all complete.  Rollback pins ``latest`` back to the baseline
version — the bad candidate stays published but is never resolved —
and terminates the candidate pool.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.fleet.hashring import _hash64
from repro.fleet.workers import WorkerHandle, WorkerPool, WorkerSupervisor
from repro.serve.client import ServeClientError
from repro.serve.registry import ModelRegistry

__all__ = ["RolloutError", "RolloutGate", "RolloutManager"]

#: Ticks a canary histogram window spans (fixed so begin() can flush it).
_WINDOW_TICKS = 8
#: Ticks the SLO trackers' long burn window spans (same reason).
_SLO_LONG_TICKS = 12
_SLO_SHORT_TICKS = 3

#: Mirror-decision resolution: fractions are compared at one-in-a-million
#: granularity against the statement fingerprint's stable 64-bit hash.
_MIRROR_SCALE = 1_000_000


class RolloutError(RuntimeError):
    """An invalid rollout transition (nothing to promote, busy, ...)."""


@dataclass(frozen=True)
class RolloutGate:
    """The promotion gate's thresholds.

    min_feedback:
        Q-error observations required *per deployment* before the gate
        evaluates — an accuracy verdict on three queries is noise.
    max_qerror_ratio:
        The candidate's windowed p95 q-error may exceed the baseline's
        by at most this factor.
    max_latency_burn:
        Upper bound on the candidate's short-window latency SLO burn
        rate (1.0 = exactly spending its error budget).
    """

    min_feedback: int = 32
    max_qerror_ratio: float = 1.25
    max_latency_burn: float = 2.0


class RolloutManager:
    """Drives canary → promote/rollback for one model on one fleet.

    Parameters
    ----------
    registry:
        The model registry both worker generations load from.
    model:
        The published model name being rolled out.
    supervisor:
        The live fleet's supervisor; its pool is the routing pool the
        promote step swaps.
    candidate_factory:
        ``(worker_id, version) -> started WorkerHandle`` building one
        *candidate* worker pinned to the candidate version.
    gate / mirror_fraction:
        Gate thresholds and the fraction of single-estimate traffic
        mirrored to the candidate during canary.
    latency_slo / slo_objective:
        Target seconds and objective for the two canary latency SLO
        trackers.
    """

    def __init__(self, registry: ModelRegistry, model: str,
                 supervisor: WorkerSupervisor,
                 candidate_factory: Callable[[str, int], WorkerHandle],
                 gate: RolloutGate | None = None,
                 mirror_fraction: float = 1.0,
                 latency_slo: float = 0.5,
                 slo_objective: float = 0.95) -> None:
        if not 0.0 <= mirror_fraction <= 1.0:
            raise ValueError(
                f"mirror_fraction must be in [0, 1], got {mirror_fraction}")
        self._registry = registry
        self._model = model
        self._supervisor = supervisor
        self._candidate_factory = candidate_factory
        self._gate = gate if gate is not None else RolloutGate()
        self._mirror_threshold = int(mirror_fraction * _MIRROR_SCALE)
        self._router = None
        self._lock = threading.Lock()
        self._state = "idle"
        self._baseline_version: int | None = None
        self._candidate_version: int | None = None
        self._candidates: tuple[WorkerHandle, ...] = ()
        self._counts = {"baseline": 0, "candidate": 0}
        self._decision: dict | None = None
        self._history: list[dict] = []
        windows = obs.get_windows()
        self._qerror_window = windows.histogram(
            "fleet.canary.qerror.window", label_names=("deployment",),
            window_ticks=_WINDOW_TICKS)
        self._latency_window = windows.histogram(
            "fleet.canary.latency.window", label_names=("deployment",),
            window_ticks=_WINDOW_TICKS)
        self._baseline_latency_slo = windows.slo(
            "fleet.canary.baseline.latency.slo", target=latency_slo,
            objective=slo_objective, short_ticks=_SLO_SHORT_TICKS,
            long_ticks=_SLO_LONG_TICKS)
        self._candidate_latency_slo = windows.slo(
            "fleet.canary.candidate.latency.slo", target=latency_slo,
            objective=slo_objective, short_ticks=_SLO_SHORT_TICKS,
            long_ticks=_SLO_LONG_TICKS)

    @property
    def gate(self) -> RolloutGate:
        """The promotion gate in force."""
        return self._gate

    @property
    def state(self) -> str:
        """The rollout state machine's current state."""
        return self._state

    def bind(self, router) -> None:
        """Attach this manager to its router (hooks + warm-up source)."""
        self._router = router
        router.set_rollout(self)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def begin(self, version: int | str = "latest") -> dict:
        """Publish → warm → canary: start rolling ``version`` out."""
        candidate = self._registry.resolve(self._model, version)
        baseline = self._registry.resolve(self._model)
        with self._lock:
            if self._state in ("warming", "canary"):
                raise RolloutError(
                    f"a rollout is already {self._state}; promote or "
                    f"roll it back first")
            self._state = "warming"
            self._baseline_version = baseline.version
            self._candidate_version = candidate.version
            self._counts = {"baseline": 0, "candidate": 0}
            self._decision = None
            self._history.append({"state": "warming",
                                  "baseline": baseline.version,
                                  "candidate": candidate.version})
        width = max(len(self._supervisor.pool), 1)
        handles: list[WorkerHandle] = []
        try:
            for index in range(width):
                handles.append(self._candidate_factory(
                    f"c{index}", candidate.version))
            warm_sql = (self._router.recent_sql()
                        if self._router is not None else [])
            if warm_sql:
                for handle in handles:
                    handle.warm(warm_sql)
        except Exception as exc:  # repro: ignore[RPR103] — a failed candidate spawn must settle the state machine, whatever broke
            for handle in handles:
                handle.terminate()
            with self._lock:
                self._state = "rolled_back"
                self._decision = {"outcome": "rollback",
                                  "reason": f"candidate spawn failed: "
                                            f"{exc}"}
                self._history.append({"state": "rolled_back",
                                      "reason": str(exc)})
            raise RolloutError(
                f"candidate workers failed to start: {exc}") from exc
        self._flush_windows()
        with self._lock:
            self._candidates = tuple(handles)
            self._state = "canary"
            self._history.append({"state": "canary",
                                  "workers": [h.worker_id for h in handles]})
        return self.status()

    def promote(self, reason: str = "gate passed") -> dict:
        """Hot-swap the candidate into live routing (see module docs)."""
        with self._lock:
            if self._state != "canary":
                raise RolloutError(
                    f"cannot promote from state {self._state!r}")
            self._state = "promoting"
            candidate_version = self._candidate_version
            candidates = self._candidates
        self._registry.set_latest(self._model, candidate_version)
        displaced = self._supervisor.pool.swap(list(candidates))
        for handle in displaced:
            self._supervisor.forget(handle.worker_id)
        for handle in candidates:
            self._supervisor.watch(handle.worker_id)
        for handle in displaced:
            handle.drain()
        with self._lock:
            self._state = "promoted"
            self._candidates = ()
            self._decision = {"outcome": "promote", "reason": reason}
            self._history.append({"state": "promoted", "reason": reason})
        return self.status()

    def rollback(self, reason: str = "gate failed") -> dict:
        """Abandon the candidate and pin ``latest`` to the baseline."""
        with self._lock:
            if self._state not in ("canary", "warming"):
                raise RolloutError(
                    f"cannot roll back from state {self._state!r}")
            self._state = "rolling_back"
            baseline_version = self._baseline_version
            candidates = self._candidates
        self._registry.set_latest(self._model, baseline_version)
        for handle in candidates:
            handle.terminate()
        with self._lock:
            self._state = "rolled_back"
            self._candidates = ()
            self._decision = {"outcome": "rollback", "reason": reason}
            self._history.append({"state": "rolled_back", "reason": reason})
        return self.status()

    # ------------------------------------------------------------------
    # Router hooks (canary traffic)
    # ------------------------------------------------------------------

    def should_mirror(self, fingerprint: str) -> bool:
        """Deterministic mirror decision for one statement fingerprint."""
        return (_hash64("mirror:" + fingerprint) % _MIRROR_SCALE
                < self._mirror_threshold)

    def on_estimate(self, sql: str, fingerprint: str, response: dict,
                    seconds: float, trace_id: int | None) -> None:
        """Router hook: observe baseline latency, maybe mirror."""
        if self._state != "canary":
            return
        self._latency_window.observe(seconds, deployment="baseline")
        self._baseline_latency_slo.observe(seconds)
        if not self.should_mirror(fingerprint):
            return
        handle = self._candidate_for(fingerprint)
        if handle is None:
            return
        obs.get_registry().counter("fleet.mirrored_total").inc()
        watch = obs.get_event_log().stopwatch()
        try:
            with watch:
                handle.client.estimate(sql, trace_id=trace_id)
        except ServeClientError as exc:
            if exc.status == 0:
                # The candidate crashed under mirrored traffic — the
                # strongest possible gate failure.
                self.rollback(reason=f"candidate worker "
                                     f"{handle.worker_id} unreachable: "
                                     f"{exc}")
            else:
                obs.get_registry().counter(
                    "fleet.canary.candidate_errors_total").inc()
            return
        self._latency_window.observe(watch.seconds, deployment="candidate")
        self._candidate_latency_slo.observe(watch.seconds)

    def on_feedback(self, sql: str, true_cardinality: float,
                    baseline_response: dict,
                    trace_id: int | None) -> None:
        """Router hook: mirror feedback, feed the q-error windows."""
        if self._state != "canary":
            return
        fingerprint_qerror = baseline_response.get("qerror")
        if isinstance(fingerprint_qerror, (int, float)):
            self._qerror_window.observe(float(fingerprint_qerror),
                                        deployment="baseline")
            with self._lock:
                self._counts["baseline"] += 1
        handle = self._candidate_for(sql)
        if handle is None:
            return
        try:
            # estimate=None on purpose: the candidate re-estimates with
            # its own model, so its q-error reflects *its* accuracy.
            mirrored = handle.client.feedback(sql, true_cardinality,
                                              trace_id=trace_id)
        except ServeClientError as exc:
            if exc.status == 0:
                self.rollback(reason=f"candidate worker "
                                     f"{handle.worker_id} unreachable: "
                                     f"{exc}")
            else:
                obs.get_registry().counter(
                    "fleet.canary.candidate_errors_total").inc()
            return
        candidate_qerror = mirrored.get("qerror")
        if isinstance(candidate_qerror, (int, float)):
            self._qerror_window.observe(float(candidate_qerror),
                                        deployment="candidate")
            with self._lock:
                self._counts["candidate"] += 1
        self._maybe_evaluate()

    # ------------------------------------------------------------------
    # Gate
    # ------------------------------------------------------------------

    def evaluate(self) -> tuple[bool, str]:
        """The gate's verdict right now: ``(should_promote, reason)``."""
        baseline_p95 = self._qerror_window.quantile(0.95,
                                                    deployment="baseline")
        candidate_p95 = self._qerror_window.quantile(0.95,
                                                     deployment="candidate")
        if baseline_p95 is None or candidate_p95 is None:
            return False, "insufficient q-error observations"
        bound = baseline_p95 * self._gate.max_qerror_ratio
        if candidate_p95 > bound:
            return False, (f"candidate p95 q-error {candidate_p95:.4g} "
                           f"exceeds baseline {baseline_p95:.4g} x "
                           f"{self._gate.max_qerror_ratio} = {bound:.4g}")
        burn = self._candidate_latency_slo.burn_rate("short")
        if burn > self._gate.max_latency_burn:
            return False, (f"candidate latency SLO burn {burn:.4g} "
                           f"exceeds bound {self._gate.max_latency_burn}")
        return True, (f"candidate p95 q-error {candidate_p95:.4g} within "
                      f"{self._gate.max_qerror_ratio}x of baseline "
                      f"{baseline_p95:.4g}; latency burn {burn:.4g} <= "
                      f"{self._gate.max_latency_burn}")

    def _maybe_evaluate(self) -> None:
        """Auto-decide once both deployments have enough feedback."""
        with self._lock:
            if self._state != "canary":
                return
            ready = (self._counts["baseline"] >= self._gate.min_feedback
                     and self._counts["candidate"]
                     >= self._gate.min_feedback)
        if not ready:
            return
        should_promote, reason = self.evaluate()
        try:
            if should_promote:
                self.promote(reason=reason)
            else:
                self.rollback(reason=reason)
        except RolloutError:
            pass  # a concurrent hook already decided; its verdict stands

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """The rollout document served under ``/fleet/status``."""
        with self._lock:
            return {
                "state": self._state,
                "model": self._model,
                "baseline_version": self._baseline_version,
                "candidate_version": self._candidate_version,
                "candidate_workers": [handle.worker_id
                                      for handle in self._candidates],
                "feedback_counts": dict(self._counts),
                "min_feedback": self._gate.min_feedback,
                "decision": self._decision,
                "history": list(self._history),
            }

    # ------------------------------------------------------------------

    def _candidate_for(self, key: str) -> WorkerHandle | None:
        """The candidate worker owning ``key``, or ``None`` mid-teardown."""
        candidates = self._candidates
        if not candidates:
            return None
        ring_pool = WorkerPool()
        # Tiny pools (and rollback racing a mirror) make a scratch ring
        # cheaper and simpler than maintaining a second live pool.
        for handle in candidates:
            ring_pool.add(handle)
        try:
            return ring_pool.preference(key, 1)[0]
        except (KeyError, IndexError):
            return None

    def _flush_windows(self) -> None:
        """Advance the canary monitors past their window span, so a new
        canary never reads a previous rollout's observations."""
        for _ in range(_WINDOW_TICKS):
            self._qerror_window.advance()
            self._latency_window.advance()
        for _ in range(_SLO_LONG_TICKS):
            self._baseline_latency_slo.advance()
            self._candidate_latency_slo.advance()
