"""``repro fleet`` subcommands: serve a fleet, drive a rollout.

* ``repro fleet serve --registry R --model M --workers N`` — spawn N
  worker subprocesses under a supervisor, put the consistent-hash
  router in front, attach a rollout manager, and serve until
  SIGTERM/SIGINT (graceful drain, like ``repro serve``).
* ``repro fleet status --url http://...`` — print the router's
  ``/fleet/status`` document (workers, rollout state, restarts).
* ``repro fleet rollout --url ... --version V`` — start a canary of a
  published version; the gate then auto-promotes or auto-rolls-back on
  live traffic (or force the decision with ``promote``/``rollback``).

These handlers live next to the fleet machinery rather than in
:mod:`repro.cli` so the top-level CLI only pays the fleet import when a
fleet command actually runs; :func:`add_fleet_parser` is the only hook
the top-level parser needs.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path

from repro.fleet.rollout import RolloutGate, RolloutManager
from repro.fleet.router import FleetRouter, RouterServer
from repro.fleet.workers import ProcessWorker, WorkerSupervisor
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.registry import ModelRegistry

__all__ = ["add_fleet_parser", "build_parser"]


def _cmd_fleet_serve(args) -> int:
    registry_root = Path(args.registry)
    registry = ModelRegistry(registry_root)
    live = registry.resolve(args.model, args.version)
    print(f"fleet: serving {live.label()} from registry {registry_root}")

    def factory(worker_id: str, version: int | str = args.version
                ) -> ProcessWorker:
        return ProcessWorker(
            worker_id, registry_root, args.model, version=version,
            cache_size=args.cache_size,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_inflight=args.max_inflight,
            tick_every=args.tick_every).start()

    supervisor = WorkerSupervisor(factory)
    for handle in supervisor.spawn(args.workers):
        print(f"  worker {handle.worker_id}: {handle.url} "
              f"({handle.model_version})")
    supervisor.start()
    router = FleetRouter(supervisor.pool, supervisor=supervisor,
                         retries=args.retries)
    rollout = RolloutManager(
        registry, args.model, supervisor,
        candidate_factory=lambda worker_id, version: factory(worker_id,
                                                             version),
        gate=RolloutGate(min_feedback=args.min_feedback,
                         max_qerror_ratio=args.max_qerror_ratio,
                         max_latency_burn=args.max_latency_burn),
        mirror_fraction=args.mirror_fraction)
    rollout.bind(router)
    server = RouterServer(router, host=args.host, port=args.port)
    server.start()
    print(f"fleet router on {server.url} ({args.workers} workers, "
          f"retries {args.retries}, mirror {args.mirror_fraction}, "
          f"gate: {args.min_feedback} feedback / "
          f"{args.max_qerror_ratio}x q-error / "
          f"burn <= {args.max_latency_burn})")
    stop = getattr(args, "shutdown_event", None) or threading.Event()
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, lambda signum, frame: stop.set())
        signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    ready_hook = getattr(args, "on_ready", None)
    if ready_hook is not None:
        ready_hook(server.url)
    stop.wait()
    print("fleet: draining router and workers ...")
    server.stop(drain=True)
    supervisor.stop(drain=True)
    print("fleet stopped")
    return 0


def _control_call(args, invoke) -> int:
    """Run one control-plane call against a live router; print the JSON."""
    with ServeClient(args.url, timeout=args.timeout) as client:
        try:
            document = invoke(client)
        except ServeClientError as exc:
            print(f"fleet control call error: {exc}", file=sys.stderr)
            return 1
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def _cmd_fleet_status(args) -> int:
    return _control_call(args,
                         lambda client: client.get_json("/fleet/status"))


def _cmd_fleet_rollout(args) -> int:
    return _control_call(
        args, lambda client: client.post_json(
            "/fleet/rollout", {"version": args.version}))


def _cmd_fleet_promote(args) -> int:
    return _control_call(
        args, lambda client: client.post_json("/fleet/promote", {}))


def _cmd_fleet_rollback(args) -> int:
    return _control_call(
        args, lambda client: client.post_json("/fleet/rollback", {}))


def add_fleet_parser(sub) -> None:
    """Register the ``fleet`` subcommand tree on a subparsers object."""
    fleet = sub.add_parser(
        "fleet", help="sharded multi-worker serving with hot-swap "
                      "rollouts (see docs/serving.md)")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    serve = fleet_sub.add_parser(
        "serve", help="serve a registry model across N worker processes")
    serve.add_argument("--registry", required=True, type=Path,
                       help="model-registry root directory")
    serve.add_argument("--model", required=True,
                       help="published model name to serve")
    serve.add_argument("--version", default="latest",
                       help="registry version workers load "
                            "(default: latest)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker subprocesses to spawn (default: 2)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8640)
    serve.add_argument("--retries", type=int, default=1,
                       help="ring siblings to try when a worker is "
                            "unreachable (default: 1)")
    serve.add_argument("--max-batch-size", type=int, default=64)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument("--cache-size", type=int, default=1024)
    serve.add_argument("--max-inflight", type=int, default=256)
    serve.add_argument("--tick-every", type=int, default=64,
                       help="worker telemetry-window tick cadence "
                            "(default: 64)")
    serve.add_argument("--mirror-fraction", type=float, default=1.0,
                       help="fraction of estimate traffic mirrored to a "
                            "canary candidate (default: 1.0)")
    serve.add_argument("--min-feedback", type=int, default=32,
                       help="q-error observations per deployment before "
                            "the rollout gate decides (default: 32)")
    serve.add_argument("--max-qerror-ratio", type=float, default=1.25,
                       help="candidate p95 q-error bound, as a multiple "
                            "of the baseline's (default: 1.25)")
    serve.add_argument("--max-latency-burn", type=float, default=2.0,
                       help="candidate latency SLO burn-rate bound "
                            "(default: 2.0)")
    serve.set_defaults(func=_cmd_fleet_serve)

    for name, handler, description in (
            ("status", _cmd_fleet_status,
             "print a running fleet's /fleet/status document"),
            ("rollout", _cmd_fleet_rollout,
             "start a canary rollout of a published version"),
            ("promote", _cmd_fleet_promote,
             "force-promote the active canary"),
            ("rollback", _cmd_fleet_rollback,
             "force-roll-back the active canary")):
        command = fleet_sub.add_parser(name, help=description)
        command.add_argument("--url", default="http://127.0.0.1:8640",
                             help="router base URL "
                                  "(default: http://127.0.0.1:8640)")
        command.add_argument("--timeout", type=float, default=30.0,
                             help="control-call timeout in seconds "
                                  "(default: 30)")
        if name == "rollout":
            command.add_argument("--version", default="latest",
                                 help="published version to canary "
                                      "(default: latest)")
        command.set_defaults(func=handler)


def build_parser() -> argparse.ArgumentParser:
    """Standalone parser (``python -m repro.fleet.cli``); tests use it."""
    parser = argparse.ArgumentParser(prog="repro")
    sub = parser.add_subparsers(dest="command", required=True)
    add_fleet_parser(sub)
    return parser
