"""Consistent-hash ring mapping request keys onto worker ids.

The router keys every request by its SQL *fingerprint* (statement
template, literals masked — see :func:`repro.sql.parser.fingerprint_sql`)
so all instances of one prepared statement land on the same worker and
its parse/plan caches stay hot.  A plain ``hash(key) % N`` would remap
almost every key whenever N changes; the classic consistent-hashing
construction bounds that churn: each node owns ``replicas`` virtual
points on a 64-bit ring, a key belongs to the first point at or after
its own hash, and adding or removing one node of N moves only ~1/N of
the key space (the slices adjacent to the node's own points).

Hashing is BLAKE2b-64 — stable across processes and python versions
(``hash()`` is salted per process) so the router, tests, and any future
external balancer agree on placement.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["DEFAULT_REPLICAS", "HashRing"]

#: Virtual points per node; more points → smoother key distribution at
#: the cost of a (replicas × nodes)-entry sorted table.
DEFAULT_REPLICAS = 96


def _hash64(data: str) -> int:
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing over named nodes with virtual points.

    Not thread-safe by itself: the owning :class:`~repro.fleet.workers.
    WorkerPool` serializes membership changes and publishes the ring
    by atomic reference swap, so readers never see a half-built table.
    """

    def __init__(self, nodes: tuple[str, ...] = (),
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @property
    def replicas(self) -> int:
        """Virtual points each node owns on the ring."""
        return self._replicas

    def nodes(self) -> tuple[str, ...]:
        """Current member node ids, sorted."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add ``node``'s virtual points to the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self._replicas):
            point = _hash64(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove ``node``'s virtual points from the ring (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(point, owner)
                for point, owner in zip(self._points, self._owners)
                if owner != node]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def lookup(self, key: str) -> str:
        """The node owning ``key`` (first point at or after its hash)."""
        if not self._nodes:
            raise KeyError("hash ring is empty")
        index = bisect.bisect(self._points, _hash64(key))
        if index == len(self._points):
            index = 0  # wrap past the highest point
        return self._owners[index]

    def preference(self, key: str, count: int) -> tuple[str, ...]:
        """Up to ``count`` *distinct* nodes in ring order from ``key``.

        The first entry is :meth:`lookup`'s owner; the rest are the
        successive distinct owners walking clockwise — the siblings a
        router retries on when the owner is unreachable.
        """
        if not self._nodes:
            raise KeyError("hash ring is empty")
        count = min(count, len(self._nodes))
        start = bisect.bisect(self._points, _hash64(key))
        chosen: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner in seen:
                continue
            seen.add(owner)
            chosen.append(owner)
            if len(chosen) == count:
                break
        return tuple(chosen)
