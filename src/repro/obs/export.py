"""Trace exporters and the per-stage summary reporter.

Three output shapes from one span list:

* **JSONL span log** — one :meth:`Span.as_dict` object per line; the
  durable trace format (``trace.jsonl``) that ``repro obs report``
  consumes and CI uploads as an artifact.
* **Chrome trace-event JSON** — complete ``X`` (duration) events that
  ``chrome://tracing`` / Perfetto render as a flame view; thread idents
  are remapped to small stable ``tid`` s in order of first appearance.
* **Summary** — per-span-name aggregation (count, total, self-time,
  min/mean/max) rendered as JSON or an aligned text table.

Self-time is total time minus the time spent in direct child spans, so
a ``featurize.batch`` parent whose compile/encode children cover it
reports near-zero self-time — the signal that the stage breakdown is
complete.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence, Union

from repro.obs.trace import Span

__all__ = ["SPAN_RECORD_KEYS", "span_records", "write_spans_jsonl",
           "read_spans_jsonl", "to_chrome_trace", "write_chrome_trace",
           "stitch_chrome_trace", "write_stitched_chrome_trace",
           "summarize_spans", "render_summary_text", "render_summary_json"]

#: Keys every JSONL span record carries (the event schema).
SPAN_RECORD_KEYS = ("name", "span_id", "parent_id", "thread", "start_ns",
                    "duration_ns", "status", "error", "attributes")


def span_records(spans: Iterable[Union[Span, Mapping]]) -> list[dict]:
    """Normalise spans (live objects or parsed records) to plain dicts."""
    records = []
    for span in spans:
        record = dict(span) if isinstance(span, Mapping) else span.as_dict()
        missing = [key for key in SPAN_RECORD_KEYS if key not in record]
        if missing:
            raise ValueError(f"span record is missing keys {missing}")
        records.append(record)
    return records


def write_spans_jsonl(spans: Iterable[Union[Span, Mapping]],
                      path: Path) -> int:
    """Write one span record per line; returns the number written."""
    records = span_records(spans)
    lines = [json.dumps(record, sort_keys=True) for record in records]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""),
                          encoding="utf-8")
    return len(records)


def read_spans_jsonl(path: Path) -> list[dict]:
    """Parse a JSONL trace back into span records (schema-checked)."""
    records: list[dict] = []
    for lineno, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{lineno}: not a JSON span record: {error}"
            ) from None
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: span record is not an object")
        records.extend(span_records([record]))
    return records


def to_chrome_trace(spans: Iterable[Union[Span, Mapping]],
                    pid: int = 0) -> list[dict]:
    """Convert spans to Chrome trace-event format (complete events).

    Timestamps/durations are microseconds (the format's unit), taken
    from the monotonic clock; ``tid`` is a stable small integer per
    thread in order of first appearance.  ``pid`` labels the process
    row (the stitched multi-process exporter passes one per trace).
    """
    events = []
    tids: dict[int, int] = {}
    for record in span_records(spans):
        tid = tids.setdefault(record["thread"], len(tids))
        args = dict(record["attributes"])
        args["status"] = record["status"]
        if record["error"]:
            args["error"] = record["error"]
        events.append({
            "name": record["name"],
            "ph": "X",
            "ts": record["start_ns"] / 1e3,
            "dur": record["duration_ns"] / 1e3,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return events


def _record_trace_ids(record: Mapping) -> list:
    """Trace ids a span participates in: its own plus any span links.

    A batch-execute span that served many requests carries the full
    id list in a ``links`` attribute; each link joins that span to the
    corresponding request's flow.
    """
    attributes = record["attributes"]
    ids = []
    own = attributes.get("trace_id")
    if own is not None:
        ids.append(own)
    for linked in attributes.get("links", ()):  # batch span links
        if linked is not None and linked not in ids:
            ids.append(linked)
    return ids


def stitch_chrome_trace(
        traces: Sequence[tuple[str, Iterable[Union[Span, Mapping]]]]
) -> list[dict]:
    """Stitch span logs from several processes into one Chrome trace.

    ``traces`` is an ordered list of ``(process name, spans)`` pairs —
    order them by causality (client before server): each gets its own
    ``pid`` with a ``process_name`` metadata event, and per-process
    timestamps are rebased so every process starts at t=0 (monotonic
    clocks from different processes share no epoch, so absolute
    alignment is impossible; rebasing keeps each flame readable and
    the **flow events** carry the causality).

    For every trace id observed (span ``trace_id`` attributes plus
    batch ``links``), the earliest participating span per process
    anchors a flow: phase ``s`` (start) in the first participating
    process, ``t`` (step) in the middle, ``f`` (finish, binding
    enclosing slice) in the last — rendered by Perfetto as arrows from
    the client request into the server-side work that served it.
    """
    events: list[dict] = []
    # pid -> (trace id -> earliest anchor event), in process order.
    anchors: list[dict] = []
    for pid, (process_name, spans) in enumerate(traces):
        records = span_records(spans)
        base_ns = min((r["start_ns"] for r in records), default=0)
        rebased = []
        for record in records:
            rebased.append(dict(record,
                                start_ns=record["start_ns"] - base_ns))
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        })
        process_events = to_chrome_trace(rebased, pid=pid)
        events.extend(process_events)
        process_anchors: dict = {}
        for record, event in zip(rebased, process_events):
            for trace_id in _record_trace_ids(record):
                anchor = process_anchors.get(trace_id)
                if anchor is None or event["ts"] < anchor["ts"]:
                    process_anchors[trace_id] = event
        anchors.append(process_anchors)

    trace_ids = sorted({trace_id for process_anchors in anchors
                        for trace_id in process_anchors},
                       key=lambda trace_id: (str(type(trace_id)),
                                             str(trace_id)))
    for trace_id in trace_ids:
        chain = [process_anchors[trace_id] for process_anchors in anchors
                 if trace_id in process_anchors]
        if len(chain) < 2:
            continue  # a flow needs at least two processes to connect
        for index, anchor in enumerate(chain):
            if index == 0:
                phase = "s"
            elif index == len(chain) - 1:
                phase = "f"
            else:
                phase = "t"
            flow = {
                "name": "request", "cat": "trace", "id": trace_id,
                "ph": phase, "ts": anchor["ts"], "pid": anchor["pid"],
                "tid": anchor["tid"],
            }
            if phase == "f":
                flow["bp"] = "e"
            events.append(flow)
    return events


def write_stitched_chrome_trace(
        traces: Sequence[tuple[str, Iterable[Union[Span, Mapping]]]],
        path: Path) -> int:
    """Write a stitched multi-process Chrome trace; returns the event
    count (slices + metadata + flows)."""
    events = stitch_chrome_trace(traces)
    Path(path).write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}) + "\n",
        encoding="utf-8")
    return len(events)


def write_chrome_trace(spans: Iterable[Union[Span, Mapping]],
                       path: Path) -> int:
    """Write the Chrome trace-event JSON; returns the event count."""
    events = to_chrome_trace(spans)
    Path(path).write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}) + "\n",
        encoding="utf-8")
    return len(events)


def summarize_spans(spans: Iterable[Union[Span, Mapping]]) -> dict:
    """Aggregate spans per name: count, total/self seconds, min/mean/max.

    ``self_seconds`` subtracts direct children from each span before
    summing, so nested stages are not double-counted across rows.
    """
    records = span_records(spans)
    child_ns: dict[int, int] = {}
    for record in records:
        parent = record["parent_id"]
        if parent is not None:
            child_ns[parent] = child_ns.get(parent, 0) + record["duration_ns"]

    by_name: dict[str, dict] = {}
    for record in records:
        row = by_name.setdefault(record["name"], {
            "count": 0, "errors": 0, "total_seconds": 0.0,
            "self_seconds": 0.0, "min_seconds": float("inf"),
            "max_seconds": 0.0,
        })
        seconds = record["duration_ns"] / 1e9
        own = max(record["duration_ns"]
                  - child_ns.get(record["span_id"], 0), 0) / 1e9
        row["count"] += 1
        row["errors"] += 1 if record["status"] == "error" else 0
        row["total_seconds"] += seconds
        row["self_seconds"] += own
        row["min_seconds"] = min(row["min_seconds"], seconds)
        row["max_seconds"] = max(row["max_seconds"], seconds)
    for row in by_name.values():
        row["mean_seconds"] = row["total_seconds"] / row["count"]

    if records:
        start = min(r["start_ns"] for r in records)
        end = max(r["start_ns"] + r["duration_ns"] for r in records)
        wall = (end - start) / 1e9
    else:
        wall = 0.0
    return {
        "spans": len(records),
        "wall_seconds": wall,
        "by_name": {name: by_name[name] for name in sorted(by_name)},
    }


def render_summary_json(summary: dict) -> str:
    """Deterministic JSON rendering of a :func:`summarize_spans` result."""
    return json.dumps(summary, sort_keys=True, indent=2)


def render_summary_text(summary: dict) -> str:
    """Aligned text table of a summary, widest total first."""
    header = ("span", "count", "total (s)", "self (s)", "mean (s)",
              "max (s)", "errors")
    rows = [header]
    ordered = sorted(summary["by_name"].items(),
                     key=lambda item: (-item[1]["total_seconds"], item[0]))
    for name, row in ordered:
        rows.append((name, str(row["count"]),
                     f"{row['total_seconds']:.4f}",
                     f"{row['self_seconds']:.4f}",
                     f"{row['mean_seconds']:.6f}",
                     f"{row['max_seconds']:.6f}",
                     str(row["errors"])))
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [cell.rjust(width)
                  for cell, width in zip(row[1:], widths[1:])]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    lines.append("")
    lines.append(f"{summary['spans']} spans over "
                 f"{summary['wall_seconds']:.4f}s wall clock")
    return "\n".join(lines)
