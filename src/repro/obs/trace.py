"""Span tracing: nested, monotonic-clock timing of pipeline stages.

A **span** is one timed region of the featurize → model → estimate
pipeline, with a name, structured attributes, and a parent — the span
that was open on the same thread when it started.  Spans form per-thread
trees, so a trace of ``LearnedEstimator.fit`` shows the featurization
compile/encode stages nested under the estimator's own span, and a flame
view (see :mod:`repro.obs.export`) reconstructs where the time went.

Two usage surfaces:

* context manager — ``with obs.span("featurize.encode", n=64) as sp:``;
  the yielded object is the live :class:`Span` (``None`` when tracing is
  disabled), whose ``duration_seconds`` is readable after the block.
* decorator — ``@obs.trace("model.fit")`` wraps a callable in a span.

Tracing is **off by default** and the disabled path is near-zero-cost:
``span(...)`` returns a shared no-op context manager without allocating
anything, so instrumentation can stay in hot code unconditionally.
Durations come from :func:`time.perf_counter_ns` — the monotonic clock —
never from wall-clock ``time.time``.

The module-level helpers (:func:`span`, :func:`get_tracer`, ...) operate
on one process-global active tracer.  Code that *needs* measurements
regardless of global state (the benchmark CLI, the Tab. 7 experiment)
wraps itself in :func:`ensure_tracing`, which reuses the active tracer
when enabled and otherwise installs a temporary private one.

**Trace context** ties spans from different threads — and different
*processes* — to one logical request.  A trace id is minted once per
request (:func:`mint_trace_id`, a deterministic process-local counter,
not a random uuid, so identical runs mint identical ids), installed on
the current thread with :func:`use_trace_context`, and every span
opened while the context is active is stamped with a ``trace_id``
attribute.  Across the HTTP boundary the id travels in the
:data:`TRACE_HEADER` header (``X-Repro-Trace``): the serve client mints
and sends it, the server parses and adopts it, and the exporter
stitches both processes' spans into one Chrome trace keyed on the id.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["Span", "Tracer", "get_tracer", "set_tracer", "use_tracer",
           "ensure_tracing", "span", "trace", "enabled", "enable",
           "disable", "TRACE_HEADER", "mint_trace_id", "current_trace_id",
           "use_trace_context", "format_trace_header",
           "parse_trace_header", "reset_trace_ids"]

#: HTTP header carrying the trace id across the client/server boundary.
TRACE_HEADER = "X-Repro-Trace"

#: Deterministic process-local trace-id source (monotone from 1).
_trace_id_lock = threading.Lock()
_next_trace_id = 1

#: Per-thread active trace id (None outside any request context).
_trace_context = threading.local()


def mint_trace_id() -> int:
    """A fresh trace id: a process-local counter, never random.

    Counter-minted ids keep identical runs byte-identical (uuids would
    not); cross-process uniqueness is unnecessary because stitching
    keys on *(origin, id)* pairs carried by the minting side.
    """
    global _next_trace_id
    with _trace_id_lock:
        trace_id = _next_trace_id
        _next_trace_id += 1
    return trace_id


def reset_trace_ids() -> None:
    """Restart the trace-id counter (test/determinism hygiene)."""
    global _next_trace_id
    with _trace_id_lock:
        _next_trace_id = 1


def current_trace_id() -> int | None:
    """The trace id active on this thread, or ``None``."""
    return getattr(_trace_context, "trace_id", None)


@contextmanager
def use_trace_context(trace_id: int | None) -> Iterator[int | None]:
    """Install ``trace_id`` as this thread's active trace context.

    Every span opened inside the block is stamped with a ``trace_id``
    attribute (unless it sets its own).  ``None`` clears the context.
    """
    previous = getattr(_trace_context, "trace_id", None)
    _trace_context.trace_id = trace_id
    try:
        yield trace_id
    finally:
        _trace_context.trace_id = previous


def format_trace_header(trace_id: int) -> str:
    """Render a trace id as the :data:`TRACE_HEADER` value."""
    return str(int(trace_id))


def parse_trace_header(value: str | None) -> int | None:
    """Parse a :data:`TRACE_HEADER` value; ``None`` when absent/invalid.

    Propagation must never fail a request, so malformed headers simply
    drop the context instead of raising.
    """
    if value is None:
        return None
    value = value.strip()
    if not value.isdigit():
        return None
    trace_id = int(value)
    return trace_id if trace_id > 0 else None


class Span:
    """One timed region: a node of the per-thread span tree.

    Spans are context managers; timing starts at ``__enter__`` and the
    duration, status, and parent linkage are final after ``__exit__``.
    An exception escaping the block marks the span ``status="error"``
    (recording the exception type) and re-raises.
    """

    __slots__ = ("name", "attributes", "span_id", "parent_id", "thread_id",
                 "start_ns", "duration_ns", "status", "error",
                 "_tracer", "_metric")

    def __init__(self, tracer: "Tracer", name: str, metric: str | None,
                 attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.span_id = 0
        self.parent_id: int | None = None
        self.thread_id = 0
        self.start_ns = 0
        self.duration_ns = 0
        self.status = "ok"
        self.error: str | None = None
        self._tracer = tracer
        self._metric = metric

    @property
    def duration_seconds(self) -> float:
        """Span duration in seconds (0.0 while the span is still open)."""
        return self.duration_ns / 1e9

    def set_attribute(self, key: str, value) -> None:
        """Attach a structured attribute after the span has started."""
        self.attributes[key] = value

    def as_dict(self) -> dict:
        """JSON-serialisable record (one JSONL line of a trace file)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "status": self.status,
            "error": self.error,
            "attributes": self.attributes,
        }

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.error = exc_type.__name__
        self._tracer._close(self)
        return False

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, "
                f"duration={self.duration_seconds:.6f}s, {self.status})")


class _NoOpSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoOpSpan()


class Tracer:
    """Collects finished spans; maintains one span stack per thread."""

    def __init__(self, enabled: bool = True,
                 clock_ns: Callable[[], int] = time.perf_counter_ns) -> None:
        self._enabled = enabled
        self._clock_ns = clock_ns
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()
        self._next_id = 1

    @property
    def enabled(self) -> bool:
        """Whether :meth:`span` records (False: no-op fast path)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)

    def span(self, name: str, *, metric: str | None = None, **attributes):
        """Open a span context; record its duration into histogram
        ``metric`` (of the global metrics registry) when given."""
        if not self._enabled:
            return _NOOP_SPAN
        return Span(self, name, metric, attributes)

    def finished(self) -> tuple[Span, ...]:
        """Every span closed so far, in close order."""
        with self._lock:
            return tuple(self._finished)

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep their linkage)."""
        with self._lock:
            self._finished.clear()

    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
        trace_id = getattr(_trace_context, "trace_id", None)
        if trace_id is not None and "trace_id" not in span.attributes:
            span.attributes["trace_id"] = trace_id
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        span.thread_id = threading.get_ident()
        stack.append(span)
        span.start_ns = self._clock_ns()

    def _close(self, span: Span) -> None:
        span.duration_ns = self._clock_ns() - span.start_ns
        stack = self._stack()
        # Tolerate out-of-order exits (a span closed from a different
        # frame than it was opened in) instead of corrupting the stack.
        if span in stack:
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        with self._lock:
            self._finished.append(span)
        if span._metric is not None and span.status == "ok":
            from repro.obs.metrics_runtime import get_registry

            get_registry().histogram(span._metric).record(
                span.duration_seconds)


#: The process-global active tracer; disabled until someone enables it.
_active = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global active tracer."""
    return _active


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the active tracer; returns it."""
    global _active
    _active = tracer
    return tracer


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` as the active tracer."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous


@contextmanager
def ensure_tracing() -> Iterator[Tracer]:
    """Yield an *enabled* tracer: the active one if already enabled,
    otherwise a temporary private tracer installed for the block.

    This is how measurement consumers (benchmarks, timing experiments)
    read span durations without forcing tracing on for the whole
    process — and still contribute their spans to an externally enabled
    trace (e.g. ``repro bench featurize --trace``).
    """
    if _active.enabled:
        yield _active
        return
    with use_tracer(Tracer(enabled=True)) as tracer:
        yield tracer


def span(name: str, *, metric: str | None = None, **attributes):
    """Open a span on the active tracer (no-op when tracing is off)."""
    return _active.span(name, metric=metric, **attributes)


def enabled() -> bool:
    """Whether the active tracer is recording."""
    return _active.enabled


def enable() -> Tracer:
    """Turn the active tracer on; returns it."""
    _active.enabled = True
    return _active


def disable() -> Tracer:
    """Turn the active tracer off; returns it."""
    _active.enabled = False
    return _active


def trace(name: str | Callable | None = None, *,
          metric: str | None = None, **attributes):
    """Decorator form of :func:`span`.

    Usable bare (``@trace``, span named after the callable) or with an
    explicit name and attributes (``@trace("model.fit", model="gb")``).
    """
    if callable(name):  # bare @trace
        func = name
        return trace(func.__qualname__)(func)

    def decorate(func: Callable) -> Callable:
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with _active.span(span_name, metric=metric, **attributes):
                return func(*args, **kwargs)

        return wrapper

    return decorate
