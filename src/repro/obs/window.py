"""Windowed accuracy/latency monitors: sliding histograms and SLOs.

The cumulative histograms of :mod:`repro.obs.metrics_runtime` answer
"what happened since the process started" — the wrong question for a
serving fleet, where what matters is *stability over time*: is the
q-error p95 of the last few minutes still inside the gate, did the
latest model rollout move it, is the error budget burning.  This module
adds the windowed view:

* :class:`WindowedHistogram` — a **ring of the deterministic
  log-bucketed histograms**, advanced on a logical *tick* (no
  wall-clock anywhere: the caller decides what a tick means — every N
  requests, every scrape, every test barrier).  Observations land in
  the current tick's slot; reads merge the whole ring, so the sliding
  window is always the last ``window_ticks`` ticks.  Each monitor can
  carry **label dimensions** (table, QFT, model version, cache-hit …):
  every distinct label-value combination gets its own ring, and
  snapshots are byte-stable like the cumulative registry's.
* :class:`SloTracker` — a good/bad counter pair against an explicit
  target (latency bound, q-error bound) with an objective (e.g. 99 %
  good), plus short- and long-window **burn rates**: how fast the error
  budget is being consumed relative to sustainable pace.  Burn rate
  over a short window catches a fast regression (a bad canary); over a
  long window, slow drift.
* :class:`WindowRegistry` — get-or-create store mirroring
  :class:`~repro.obs.metrics_runtime.MetricsRegistry`, with
  ``advance_all()`` as the single tick source so every monitor's window
  moves in lockstep.

Quantiles are computed Prometheus-style from the merged bucket counts:
the reported pXX is the **upper edge of the bucket** holding the rank,
clamped to the observed max — a deterministic function of the
observation multiset, independent of arrival order and thread
interleaving (the byte-stability tests rotate writers across threads
and assert identical snapshots).

Like everything in ``repro.obs``, this module imports nothing from the
rest of ``repro``; the serve layer pushes labels in as plain strings.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.obs.metrics_runtime import DEFAULT_EDGES

__all__ = ["WindowedHistogram", "SloTracker", "WindowRegistry",
           "get_windows", "set_windows"]


def _check_value(name: str, value: float) -> float:
    """Validate one observation (same contract as ``Histogram.record``)."""
    value = float(value)
    if not math.isfinite(value) or value < 0.0:
        raise ValueError(
            f"monitor {name!r} cannot observe {value!r}; observations "
            "must be finite and non-negative")
    return value


def _accumulate(partials: list[float], value: float) -> None:
    """Shewchuk exact accumulation (``math.fsum``'s core step).

    ``partials`` holds non-overlapping floats whose exact sum equals
    everything ever added, so the rendered total is a pure function of
    the observation *multiset* — float ``+=`` is not associative, and a
    naive running sum would leak thread interleaving into the last bits
    of every snapshot (breaking byte-stability under concurrent
    writers).
    """
    i = 0
    for y in partials:
        x = value
        if abs(x) < abs(y):
            x, y = y, x
        high = x + y
        low = y - (high - x)
        if low:
            partials[i] = low
            i += 1
        value = high
    partials[i:] = [value]


class _Slot:
    """One tick's worth of observations for one label combination."""

    __slots__ = ("counts", "count", "partials", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = np.zeros(n_buckets, dtype=np.int64)
        self.count = 0
        self.partials: list[float] = []
        self.min = float("inf")
        self.max = float("-inf")

    @property
    def sum(self) -> float:
        """The exact observation total, correctly rounded once."""
        return math.fsum(self.partials)

    def record(self, index: int, value: float) -> None:
        self.counts[index] += 1
        self.count += 1
        _accumulate(self.partials, value)
        self.min = min(self.min, value)
        self.max = max(self.max, value)


class _Ring:
    """A bounded deque of slots: index 0 is the oldest surviving tick."""

    __slots__ = ("slots", "n_buckets")

    def __init__(self, n_buckets: int, window_ticks: int) -> None:
        self.n_buckets = n_buckets
        self.slots: deque[_Slot] = deque([_Slot(n_buckets)],
                                         maxlen=window_ticks)

    @property
    def current(self) -> _Slot:
        return self.slots[-1]

    def advance(self) -> None:
        self.slots.append(_Slot(self.n_buckets))

    def merged(self) -> _Slot:
        merged = _Slot(self.n_buckets)
        for slot in self.slots:
            merged.counts += slot.counts
            merged.count += slot.count
            for partial in slot.partials:
                _accumulate(merged.partials, partial)
            merged.min = min(merged.min, slot.min)
            merged.max = max(merged.max, slot.max)
        return merged


class WindowedHistogram:
    """A labeled sliding-window histogram over fixed log-spaced edges.

    Parameters
    ----------
    name:
        Dotted lowercase monitor name (``serve.request.seconds``).
    label_names:
        Ordered label dimensions every observation must supply, e.g.
        ``("model", "table", "cache")``.  Empty for an unlabeled
        monitor.
    window_ticks:
        How many logical ticks the sliding window spans.  The current
        tick counts, so a window of 8 covers the 7 completed ticks plus
        everything observed since the last :meth:`advance`.
    edges:
        Bucket upper bounds; defaults to the registry-wide
        quarter-decade edges, so windowed and cumulative views of the
        same quantity bucket identically.
    """

    def __init__(self, name: str, label_names: Iterable[str] = (),
                 window_ticks: int = 8,
                 edges: tuple[float, ...] = DEFAULT_EDGES) -> None:
        if window_ticks < 1:
            raise ValueError(
                f"window {name!r} needs window_ticks >= 1, got "
                f"{window_ticks}")
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"window {name!r} needs strictly increasing edges")
        self.name = name
        self.label_names = tuple(label_names)
        self.window_ticks = int(window_ticks)
        self.edges = tuple(float(e) for e in edges)
        self._series: dict[tuple[str, ...], _Ring] = {}
        self._lock = threading.Lock()
        self._tick = 0

    @property
    def tick(self) -> int:
        """How many times this monitor's window has advanced."""
        return self._tick

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"window {self.name!r} takes labels "
                f"{list(self.label_names)}, got {sorted(labels)}")
        return tuple(str(labels[name]) for name in self.label_names)

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the current tick's slot."""
        value = _check_value(self.name, value)
        key = self._key(labels)
        index = int(np.searchsorted(self.edges, value, side="left"))
        with self._lock:
            ring = self._series.get(key)
            if ring is None:
                ring = self._series[key] = _Ring(
                    len(self.edges) + 1, self.window_ticks)
            ring.current.record(index, value)

    def advance(self) -> int:
        """Start a new tick; the oldest slot falls out of the window."""
        with self._lock:
            self._tick += 1
            for ring in self._series.values():
                ring.advance()
            return self._tick

    def _merged(self, labels: Mapping[str, str]) -> _Slot:
        key = self._key(labels)
        with self._lock:
            ring = self._series.get(key)
            if ring is None:
                return _Slot(len(self.edges) + 1)
            return ring.merged()

    def window_count(self, **labels: str) -> int:
        """Observations currently inside the window for ``labels``."""
        return self._merged(labels).count

    def quantile(self, q: float, **labels: str) -> float | None:
        """Deterministic windowed quantile, or ``None`` when empty.

        Prometheus-style: the value reported is the upper edge of the
        bucket containing the rank (clamped to the window's observed
        max), so it is a pure function of the observation multiset.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        merged = self._merged(labels)
        return _bucket_quantile(merged, self.edges, q)

    def snapshot(self) -> dict:
        """Byte-stable JSON-serialisable state, merged on read.

        Series are keyed ``label=value`` pairs joined with commas (the
        Prometheus label-string shape), sorted; each carries the merged
        window's count/sum/min/max, non-empty buckets, and p50/p95/p99.
        """
        with self._lock:
            keys = sorted(self._series)
            merged = {key: self._series[key].merged() for key in keys}
        series = {}
        for key in keys:
            slot = merged[key]
            label_text = ",".join(
                f"{name}={value}"
                for name, value in zip(self.label_names, key))
            buckets = []
            for i, count in enumerate(slot.counts.tolist()):
                if count == 0:
                    continue
                le = ("+Inf" if i == len(self.edges)
                      else repr(self.edges[i]))
                buckets.append([le, count])
            series[label_text] = {
                "count": slot.count,
                "sum": slot.sum,
                "min": slot.min if slot.count else None,
                "max": slot.max if slot.count else None,
                "buckets": buckets,
                "p50": _bucket_quantile(slot, self.edges, 0.50),
                "p95": _bucket_quantile(slot, self.edges, 0.95),
                "p99": _bucket_quantile(slot, self.edges, 0.99),
            }
        return {
            "kind": "window_histogram",
            "window_ticks": self.window_ticks,
            "tick": self._tick,
            "labels": list(self.label_names),
            "series": series,
        }


def _bucket_quantile(slot: _Slot, edges: tuple[float, ...],
                     q: float) -> float | None:
    """Quantile of a merged slot from its bucket counts (None if empty)."""
    if slot.count == 0:
        return None
    rank = math.ceil(q * slot.count)
    cumulative = 0
    for i, count in enumerate(slot.counts.tolist()):
        cumulative += count
        if cumulative >= rank:
            upper = edges[i] if i < len(edges) else slot.max
            return float(min(upper, slot.max))
    return float(slot.max)


class _SloWindow:
    """Good/bad counts per tick over a bounded ring."""

    __slots__ = ("slots",)

    def __init__(self, window_ticks: int) -> None:
        self.slots: deque[list[int]] = deque([[0, 0]], maxlen=window_ticks)

    def advance(self) -> None:
        self.slots.append([0, 0])

    def totals(self, last: int | None = None) -> tuple[int, int]:
        slots = list(self.slots)
        if last is not None:
            slots = slots[-last:]
        good = sum(slot[0] for slot in slots)
        bad = sum(slot[1] for slot in slots)
        return good, bad


class SloTracker:
    """A service-level objective over one scalar signal.

    Parameters
    ----------
    name:
        Dotted lowercase SLO name (``serve.latency.slo``).
    target:
        An observation is *good* iff ``value <= target`` (latency bound
        in seconds, q-error bound as a ratio, …).
    objective:
        Fraction of observations that must be good (0.99 = "99 % of
        requests answer under the bound").
    short_ticks / long_ticks:
        Burn-rate windows, in logical ticks.  The short window catches
        fast regressions (a bad deploy); the long window, slow drift.

    The **burn rate** over a window is the window's bad fraction
    divided by the error budget ``1 - objective``: 1.0 means the budget
    is being spent exactly as fast as sustainable, >1 means a breach is
    coming.  Multiwindow alerting fires when *both* exceed a factor.
    """

    def __init__(self, name: str, target: float, objective: float = 0.99,
                 short_ticks: int = 3, long_ticks: int = 12) -> None:
        if not math.isfinite(float(target)) or float(target) <= 0.0:
            raise ValueError(
                f"slo {name!r} needs a positive finite target, got "
                f"{target!r}")
        if not 0.0 < objective < 1.0:
            raise ValueError(
                f"slo {name!r} needs objective in (0, 1), got {objective}")
        if short_ticks < 1 or long_ticks < short_ticks:
            raise ValueError(
                f"slo {name!r} needs 1 <= short_ticks <= long_ticks, got "
                f"{short_ticks}/{long_ticks}")
        self.name = name
        self.target = float(target)
        self.objective = float(objective)
        self.short_ticks = int(short_ticks)
        self.long_ticks = int(long_ticks)
        self._window = _SloWindow(long_ticks)
        self._good_total = 0
        self._bad_total = 0
        self._tick = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> bool:
        """Record one observation; returns whether it was good."""
        value = _check_value(self.name, value)
        good = value <= self.target
        with self._lock:
            if good:
                self._good_total += 1
                self._window.slots[-1][0] += 1
            else:
                self._bad_total += 1
                self._window.slots[-1][1] += 1
        return good

    def advance(self) -> int:
        """Start a new tick for both burn-rate windows."""
        with self._lock:
            self._tick += 1
            self._window.advance()
            return self._tick

    def burn_rate(self, window: str = "short") -> float:
        """Error-budget burn rate over the named window (0.0 if empty)."""
        if window not in ("short", "long"):
            raise ValueError(
                f"window must be 'short' or 'long', got {window!r}")
        last = self.short_ticks if window == "short" else None
        with self._lock:
            good, bad = self._window.totals(last)
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.objective)

    def snapshot(self) -> dict:
        """Byte-stable JSON-serialisable state."""
        with self._lock:
            good_total, bad_total = self._good_total, self._bad_total
            short_good, short_bad = self._window.totals(self.short_ticks)
            long_good, long_bad = self._window.totals(None)
            tick = self._tick

        def rate(good: int, bad: int) -> float:
            total = good + bad
            if total == 0:
                return 0.0
            return (bad / total) / (1.0 - self.objective)

        return {
            "kind": "slo",
            "target": self.target,
            "objective": self.objective,
            "tick": tick,
            "good_total": good_total,
            "bad_total": bad_total,
            "windows": {
                "short": {"ticks": self.short_ticks, "good": short_good,
                          "bad": short_bad,
                          "burn_rate": rate(short_good, short_bad)},
                "long": {"ticks": self.long_ticks, "good": long_good,
                         "bad": long_bad,
                         "burn_rate": rate(long_good, long_bad)},
            },
        }


class WindowRegistry:
    """Get-or-create store of windowed monitors with one tick source.

    Mirrors :class:`~repro.obs.metrics_runtime.MetricsRegistry`: reusing
    a name with a different monitor kind (or conflicting configuration)
    is a programming error and raises; :meth:`advance_all` is the
    single place a logical tick happens, so every monitor's window
    moves in lockstep and cross-monitor comparisons stay meaningful.
    """

    def __init__(self) -> None:
        self._monitors: dict[str, WindowedHistogram | SloTracker] = {}
        self._lock = threading.Lock()
        self._tick = 0

    @property
    def tick(self) -> int:
        """How many times :meth:`advance_all` has run."""
        return self._tick

    def histogram(self, name: str, label_names: Iterable[str] = (),
                  window_ticks: int = 8,
                  edges: tuple[float, ...] | None = None) -> WindowedHistogram:
        """The windowed histogram named ``name`` (created on first use)."""
        with self._lock:
            monitor = self._monitors.get(name)
            if monitor is None:
                monitor = self._monitors[name] = WindowedHistogram(
                    name, label_names=label_names,
                    window_ticks=window_ticks,
                    edges=edges if edges is not None else DEFAULT_EDGES)
            elif not isinstance(monitor, WindowedHistogram):
                raise ValueError(
                    f"monitor {name!r} is a {type(monitor).__name__}, "
                    "not a WindowedHistogram")
            elif monitor.label_names != tuple(label_names):
                raise ValueError(
                    f"window {name!r} already exists with labels "
                    f"{list(monitor.label_names)}")
            return monitor

    def slo(self, name: str, target: float | None = None,
            objective: float = 0.99, short_ticks: int = 3,
            long_ticks: int = 12) -> SloTracker:
        """The SLO tracker named ``name`` (created on first use).

        ``target`` is required on creation; asking for an existing
        tracker with a conflicting target raises.
        """
        with self._lock:
            monitor = self._monitors.get(name)
            if monitor is None:
                if target is None:
                    raise ValueError(
                        f"slo {name!r} does not exist yet; pass a target")
                monitor = self._monitors[name] = SloTracker(
                    name, target, objective=objective,
                    short_ticks=short_ticks, long_ticks=long_ticks)
            elif not isinstance(monitor, SloTracker):
                raise ValueError(
                    f"monitor {name!r} is a {type(monitor).__name__}, "
                    "not an SloTracker")
            elif target is not None and monitor.target != float(target):
                raise ValueError(
                    f"slo {name!r} already exists with target "
                    f"{monitor.target}")
            return monitor

    def advance_all(self) -> int:
        """Advance every monitor one logical tick; returns the tick."""
        with self._lock:
            self._tick += 1
            monitors = list(self._monitors.values())
            tick = self._tick
        for monitor in monitors:
            monitor.advance()
        return tick

    def names(self) -> tuple[str, ...]:
        """Registered monitor names, sorted."""
        with self._lock:
            return tuple(sorted(self._monitors))

    def snapshot(self) -> dict:
        """name -> monitor snapshot, in sorted-name order."""
        with self._lock:
            items = sorted(self._monitors.items())
        return {name: monitor.snapshot() for name, monitor in items}

    def to_json(self) -> str:
        """Deterministic JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)

    def write_json(self, path: Path) -> None:
        """Write the snapshot as indented JSON (byte-stable per stream)."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def reset(self) -> None:
        """Drop every monitor (tests and benchmark repeats use this)."""
        with self._lock:
            self._monitors.clear()
            self._tick = 0


#: Process-global window registry the serving stack records into.
_windows = WindowRegistry()


def get_windows() -> WindowRegistry:
    """The process-global windowed-monitor registry."""
    return _windows


def set_windows(registry: WindowRegistry) -> WindowRegistry:
    """Install ``registry`` as the global window registry; returns it."""
    global _windows
    _windows = registry
    return registry
