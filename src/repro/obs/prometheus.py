"""Prometheus text exposition for the obs registries.

The JSON ``/metrics`` endpoint is byte-stable and machine-friendly, but
invisible to the standard scrape ecosystem.  This module renders the
cumulative :class:`~repro.obs.metrics_runtime.MetricsRegistry` and the
windowed :class:`~repro.obs.window.WindowRegistry` in the Prometheus
`text exposition format`_ (version 0.0.4):

* counters/gauges — one sample each, ``# TYPE`` annotated;
* histograms — **cumulative** ``_bucket{le="..."}`` samples (the JSON
  snapshot stores per-bucket counts; Prometheus wants running totals)
  plus ``_sum`` and ``_count``;
* windowed histograms — rendered as *summaries*: per-label-series
  ``{quantile="0.5|0.95|0.99"}`` samples from the merged window, plus
  ``_sum``/``_count``, so dashboards get sliding percentiles directly;
* SLO trackers — ``_good_total``/``_bad_total`` counters and a
  ``_burn_rate{window="short|long"}`` gauge pair.

Dotted obs names map to Prometheus identifiers by replacing every
``.`` with ``_`` (``serve.requests_total`` → ``serve_requests_total``);
RPR110 pins obs names to ``[a-z0-9_.]`` literals precisely so this
mapping never needs escaping and scrape series never churn.

Rendering is deterministic: families sort by output name, series by
label string, and floats print via ``repr`` — two identical registries
expose byte-identical pages.  :func:`parse_exposition` is the strict
round-trip validator the tests and the CI smoke step use; it is a
format checker, not a general Prometheus client.

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from repro.obs.metrics_runtime import MetricsRegistry, get_registry
from repro.obs.window import WindowRegistry, get_windows

__all__ = ["render_prometheus", "parse_exposition", "prometheus_name",
           "escape_label_value", "CONTENT_TYPE"]

#: The scrape Content-Type for the 0.0.4 text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def prometheus_name(name: str) -> str:
    """Map a dotted obs metric name to a Prometheus identifier."""
    flat = name.replace(".", "_")
    if not _NAME_RE.match(flat):
        raise ValueError(
            f"metric name {name!r} does not map to a valid Prometheus "
            f"identifier ({flat!r})")
    return flat


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_string(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{escape_label_value(value)}"'
                     for name, value in labels.items())
    return "{" + inner + "}"


def _sample(name: str, labels: Mapping[str, str], value: float) -> str:
    return f"{name}{_label_string(labels)} {_format_value(value)}"


def _parse_series_labels(label_text: str, label_names: list[str]
                         ) -> dict[str, str]:
    """Split a window snapshot's ``k=v,k=v`` series key back to a dict."""
    if not label_text:
        return {}
    labels: dict[str, str] = {}
    remaining = label_text
    # Values may themselves contain "," or "=", so split on the known
    # ordered label names rather than naively on commas.
    for i, name in enumerate(label_names):
        prefix = f"{name}="
        if not remaining.startswith(prefix):
            raise ValueError(
                f"series key {label_text!r} does not match labels "
                f"{label_names}")
        remaining = remaining[len(prefix):]
        if i + 1 < len(label_names):
            cut = remaining.index(f",{label_names[i + 1]}=")
            labels[name] = remaining[:cut]
            remaining = remaining[cut + 1:]
        else:
            labels[name] = remaining
    return labels


def _render_histogram_family(name: str, snapshot: Mapping) -> list[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    saw_inf = False
    for le, count in snapshot["buckets"]:
        cumulative += count
        if le == "+Inf":
            saw_inf = True
        lines.append(_sample(f"{name}_bucket", {"le": str(le)}, cumulative))
    if not saw_inf:
        lines.append(_sample(f"{name}_bucket", {"le": "+Inf"},
                             snapshot["count"]))
    lines.append(_sample(f"{name}_sum", {}, snapshot["sum"]))
    lines.append(_sample(f"{name}_count", {}, snapshot["count"]))
    return lines


def _render_window_family(name: str, snapshot: Mapping) -> list[str]:
    lines = [f"# TYPE {name} summary"]
    label_names = list(snapshot["labels"])
    for series_key in sorted(snapshot["series"]):
        series = snapshot["series"][series_key]
        labels = _parse_series_labels(series_key, label_names)
        for q in ("0.5", "0.95", "0.99"):
            quantile = series[{"0.5": "p50", "0.95": "p95",
                               "0.99": "p99"}[q]]
            if quantile is None:
                continue
            lines.append(_sample(name, {**labels, "quantile": q}, quantile))
        lines.append(_sample(f"{name}_sum", labels, series["sum"]))
        lines.append(_sample(f"{name}_count", labels, series["count"]))
    return lines


def _render_slo_family(name: str, snapshot: Mapping) -> list[str]:
    lines = [f"# TYPE {name}_good_total counter",
             _sample(f"{name}_good_total", {}, snapshot["good_total"]),
             f"# TYPE {name}_bad_total counter",
             _sample(f"{name}_bad_total", {}, snapshot["bad_total"]),
             f"# TYPE {name}_burn_rate gauge"]
    for window in ("long", "short"):
        lines.append(_sample(f"{name}_burn_rate", {"window": window},
                             snapshot["windows"][window]["burn_rate"]))
    return lines


def render_prometheus(registry: MetricsRegistry | None = None,
                      windows: WindowRegistry | None = None) -> str:
    """Render both registries as one exposition page (trailing newline).

    Families are emitted in sorted output-name order across both
    registries, so the page is a deterministic function of the two
    snapshots.
    """
    registry = registry if registry is not None else get_registry()
    windows = windows if windows is not None else get_windows()

    families: list[tuple[str, list[str]]] = []
    for name, snapshot in registry.snapshot().items():
        flat = prometheus_name(name)
        kind = snapshot["kind"]
        if kind == "counter":
            families.append((flat, [f"# TYPE {flat} counter",
                                    _sample(flat, {}, snapshot["value"])]))
        elif kind == "gauge":
            families.append((flat, [f"# TYPE {flat} gauge",
                                    _sample(flat, {}, snapshot["value"])]))
        elif kind == "histogram":
            families.append((flat, _render_histogram_family(flat, snapshot)))
    for name, snapshot in windows.snapshot().items():
        flat = prometheus_name(name)
        kind = snapshot["kind"]
        if kind == "window_histogram":
            families.append((flat, _render_window_family(flat, snapshot)))
        elif kind == "slo":
            families.append((flat, _render_slo_family(flat, snapshot)))

    families.sort(key=lambda family: family[0])
    lines: list[str] = []
    for _, family_lines in families:
        lines.extend(family_lines)
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> dict[str, dict]:
    """Strictly parse an exposition page; raises ``ValueError`` on any
    malformed line.

    Returns ``family name -> {"type": ..., "samples": [(name, labels,
    value), ...]}``.  Validation beyond the grammar: every sample must
    belong to a ``# TYPE``-declared family (histogram samples may use
    the ``_bucket``/``_sum``/``_count`` suffixes, summaries
    ``_sum``/``_count``), histogram bucket counts must be cumulative
    (non-decreasing in ``le`` order), and a histogram's ``+Inf`` bucket
    must equal its ``_count``.
    """
    families: dict[str, dict] = {}
    suffix_owner: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, family, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary"):
                raise ValueError(
                    f"line {lineno}: unknown metric type {kind!r}")
            if family in families:
                raise ValueError(
                    f"line {lineno}: duplicate TYPE for {family!r}")
            families[family] = {"type": kind, "samples": []}
            suffix_owner[family] = family
            if kind in ("histogram", "summary"):
                suffix_owner[f"{family}_sum"] = family
                suffix_owner[f"{family}_count"] = family
            if kind == "histogram":
                suffix_owner[f"{family}_bucket"] = family
            continue
        if line.startswith("#"):
            continue  # HELP/comment lines are legal; we don't emit them.
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        family = suffix_owner.get(name)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding TYPE")
        labels: dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for label_match in _LABEL_RE.finditer(label_text):
                labels[label_match.group("name")] = label_match.group("value")
                consumed = label_match.end()
                if (consumed < len(label_text)
                        and label_text[consumed] == ","):
                    consumed += 1
            if consumed != len(label_text):
                raise ValueError(
                    f"line {lineno}: malformed labels: {{{label_text}}}")
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = float("inf")
        elif raw_value == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: malformed value {raw_value!r}"
                ) from None
        families[family]["samples"].append((name, labels, value))

    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        # Validate each series group independently: a page merged from
        # several sources (the fleet router's ``worker``-labeled scrape)
        # carries one cumulative bucket run *per label set*, so the
        # cumulativity and +Inf/_count checks group on the non-``le``
        # labels rather than assuming a single unlabeled run.
        buckets: dict[tuple, list[tuple[str | None, float]]] = {}
        counts: dict[tuple, float] = {}
        for name, labels, value in data["samples"]:
            group = tuple(sorted((key, val) for key, val in labels.items()
                                 if key != "le"))
            if name == f"{family}_bucket":
                buckets.setdefault(group, []).append(
                    (labels.get("le"), value))
            elif name == f"{family}_count" and group not in counts:
                counts[group] = value
        for group, run in buckets.items():
            previous = -math.inf
            inf_count = None
            for le, value in run:
                if le is None:
                    raise ValueError(
                        f"histogram {family!r} bucket is missing its "
                        f"le label")
                if value < previous:
                    raise ValueError(
                        f"histogram {family!r} buckets are not cumulative")
                previous = value
                if le == "+Inf":
                    inf_count = value
            if inf_count is None:
                raise ValueError(
                    f"histogram {family!r} has no +Inf bucket")
            if group in counts and counts[group] != inf_count:
                raise ValueError(
                    f"histogram {family!r} +Inf bucket ({inf_count}) does "
                    f"not match _count ({counts[group]})")
    return families
