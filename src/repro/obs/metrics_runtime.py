"""Runtime metrics: counters, gauges, and deterministic histograms.

Complements span tracing with *aggregates*: how many queries were
featurized, what batch sizes look like, how the q-error distributes.
Counters and gauges are plain numbers; histograms bucket observations
over **fixed log-spaced edges** (quarter-decades from 1e-9 to 1e9 by
default), so two identical runs serialise to byte-identical summaries —
no data-dependent bucket boundaries, no iteration-order dependence.

This module is intentionally independent of :mod:`repro.obs.trace`
(trace depends on it for the ``metric=`` span option, not the other way
around) and of everything above :mod:`repro.obs` in the layering.

Canonical metric names used by the instrumented pipeline:

=============================  =========  =================================
name                           kind       recorded by
=============================  =========  =================================
``featurize.queries_total``    counter    ``Featurizer.featurize[_batch]``
``featurize.batch_size``       histogram  ``Featurizer.featurize_batch``
``model.train.epoch_seconds``  histogram  NN / MSCN per-epoch spans
``estimator.qerror``           histogram  ``evaluate_estimator``
=============================  =========  =================================
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Iterable, Union

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_EDGES", "log_spaced_edges", "get_registry",
           "set_registry"]


def log_spaced_edges(low_exponent: int = -36, high_exponent: int = 36,
                     per_decade: int = 4) -> tuple[float, ...]:
    """Deterministic log-spaced bucket upper bounds.

    Edges are ``10 ** (k / per_decade)`` for integer ``k`` — computed
    from integer exponents, never from observed data, so every process
    produces the exact same floats.  Exponents are in quarter-decades by
    default: ``low_exponent=-36`` is 1e-9, ``high_exponent=36`` is 1e9.
    """
    if low_exponent >= high_exponent:
        raise ValueError(
            f"need low_exponent < high_exponent, got "
            f"[{low_exponent}, {high_exponent}]")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    return tuple(10.0 ** (k / per_decade)
                 for k in range(low_exponent, high_exponent + 1))


#: Default histogram edges: quarter-decades spanning 1e-9 .. 1e9.
DEFAULT_EDGES = log_spaced_edges()


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-serialisable state."""
        return {"kind": "counter", "value": self._value}


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self._value = float(value)

    @property
    def value(self) -> float:
        """Last recorded level."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-serialisable state."""
        return {"kind": "gauge", "value": self._value}


class Histogram:
    """Streaming histogram over fixed, pre-declared bucket edges.

    Bucket ``i`` counts observations ``v <= edges[i]`` (and greater than
    the previous edge); one overflow bucket catches values above the
    last edge.  Count/sum/min/max are tracked exactly.
    """

    __slots__ = ("name", "edges", "_counts", "_count", "_sum", "_min",
                 "_max")

    def __init__(self, name: str,
                 edges: tuple[float, ...] = DEFAULT_EDGES) -> None:
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing edges")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self._counts = np.zeros(len(self.edges) + 1, dtype=np.int64)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def record(self, value: float) -> None:
        """Record one observation.

        Observations must be finite and non-negative (durations,
        counts, q-errors — everything the pipeline buckets is);
        NaN/inf/negative values raise ``ValueError`` instead of
        silently poisoning ``sum``/``min``/``max``, matching the
        ``qerror`` input contract.
        """
        value = float(value)
        if not np.isfinite(value) or value < 0.0:
            raise ValueError(
                f"histogram {self.name!r} cannot record {value!r}; "
                "observations must be finite and non-negative")
        index = int(np.searchsorted(self.edges, value, side="left"))
        self._counts[index] += 1
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def record_many(self, values: Union[np.ndarray, Iterable[float]]) -> None:
        """Record a batch of observations (vectorized)."""
        arr = np.asarray(values, dtype=np.float64).reshape(-1)
        if arr.size == 0:
            return
        if not np.all(np.isfinite(arr)) or bool(np.any(arr < 0.0)):
            raise ValueError(
                f"histogram {self.name!r} cannot record a batch with "
                "NaN/inf/negative values; observations must be finite "
                "and non-negative")
        indices = np.searchsorted(self.edges, arr, side="left")
        self._counts += np.bincount(indices, minlength=self._counts.size)
        self._count += int(arr.size)
        self._sum += float(arr.sum())
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> dict:
        """JSON-serialisable state: non-empty buckets as [le, count].

        The overflow bucket serialises with ``le = "+Inf"``.  Identical
        observation streams produce identical snapshots byte-for-byte.
        """
        buckets = []
        for i, count in enumerate(self._counts.tolist()):
            if count == 0:
                continue
            le = "+Inf" if i == len(self.edges) else repr(self.edges[i])
            buckets.append([le, count])
        return {
            "kind": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Lookups are cheap enough for per-batch call sites; reuse of a name
    with a different metric kind (or different histogram edges) is a
    programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  edges: tuple[float, ...] | None = None) -> Histogram:
        """The histogram named ``name`` (created on first use).

        ``edges`` applies on creation; asking for an existing histogram
        with conflicting edges raises.
        """
        histogram = self._get_or_create(
            name, Histogram,
            lambda: Histogram(name, edges if edges is not None
                              else DEFAULT_EDGES))
        if edges is not None and histogram.edges != tuple(
                float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already exists with different edges")
        return histogram

    def names(self) -> tuple[str, ...]:
        """Registered metric names, sorted."""
        with self._lock:
            return tuple(sorted(self._metrics))

    def snapshot(self) -> dict:
        """name -> metric snapshot, in sorted-name order."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}

    def to_json(self) -> str:
        """Deterministic JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)

    def write_json(self, path: Path) -> None:
        """Write the summary as indented JSON (byte-stable per stream)."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def reset(self) -> None:
        """Drop every metric (tests and benchmark repeats use this)."""
        with self._lock:
            self._metrics.clear()


#: Process-global registry the instrumented pipeline records into.
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the global registry; returns it."""
    global _registry
    _registry = registry
    return registry
