"""Structured request events: one wide record per served estimate.

Metrics answer "how much / how fast on aggregate"; traces answer "where
did this request spend its time".  Neither answers "*which* query was
the one that blew the q-error budget last window" — for that you need
the request itself: its SQL, its shape fingerprint, which batch served
it, which model version answered, whether the caches hit, how long it
took, what was estimated, and (once feedback arrives) how wrong the
estimate was.  This module keeps exactly that, as **one wide event per
``/v1/estimate*`` request**, in the canonical wide-event style:

* :class:`EventLog` — a bounded in-memory ring of
  :data:`EVENT_RECORD_KEYS`-shaped dicts with **deterministic head
  sampling**: event ``seq`` is assigned to every request, but only
  every ``sample_every``-th event (``seq % sample_every == 0``) is
  retained — *unless the request errored*, which is always kept.  The
  sampling decision is a pure function of the sequence number, so two
  identical runs retain the identical event set.
* :class:`ExemplarReservoir` — a bounded best-of set holding the
  **worst-q-error requests seen so far**, including their SQL text, so
  the offending query is still in hand when the windowed p95 alarm
  fires.  Admission is by q-error with the sequence number as a
  deterministic tie-break; sampling does not apply (an exemplar is kept
  even when its event was not).
* JSONL export/import mirroring :mod:`repro.obs.export`'s span format,
  consumed by ``repro obs report --events`` and the ``repro obs watch``
  tailer.

Timestamps come from an injectable ``clock_ns`` (default
``time.perf_counter_ns``) so tests and determinism checks can pin them;
:meth:`EventLog.stopwatch` is the sanctioned way for higher layers to
time a request without touching ``time.*`` themselves (RPR108 keeps raw
clock calls out of the serve stack).

Like everything in ``repro.obs``, this module imports nothing from the
rest of ``repro``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Iterable, Mapping

__all__ = ["EVENT_RECORD_KEYS", "EventLog", "ExemplarReservoir",
           "Stopwatch", "read_events_jsonl", "render_event_text",
           "summarize_events", "render_events_summary_text",
           "render_events_summary_json", "get_event_log", "set_event_log"]

#: Keys every event record carries, in serialisation order.
EVENT_RECORD_KEYS = ("seq", "ts_ns", "trace_id", "fingerprint", "sql",
                     "batch_id", "model_version", "cache", "latency_seconds",
                     "estimate", "qerror", "error")


class Stopwatch:
    """Context manager measuring elapsed seconds on an injected clock.

    The serve layer uses this (via :meth:`EventLog.stopwatch`) instead
    of calling ``time.*`` directly, keeping ad-hoc clock access inside
    ``repro.obs`` where RPR108 allows it.
    """

    __slots__ = ("seconds", "_clock_ns", "_start_ns")

    def __init__(self, clock_ns: Callable[[], int]) -> None:
        self.seconds = 0.0
        self._clock_ns = clock_ns
        self._start_ns = 0

    def __enter__(self) -> "Stopwatch":
        self._start_ns = self._clock_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = (self._clock_ns() - self._start_ns) / 1e9
        return False


class ExemplarReservoir:
    """Bounded set of the worst-q-error requests, SQL included.

    Admission: an offer enters while the reservoir has room, or when
    its q-error beats the current minimum; ties break toward the
    earlier sequence number, so the retained set is a deterministic
    function of the offered stream.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._items: list[dict] = []
        self._lock = threading.Lock()

    def offer(self, qerror: float, record: Mapping) -> bool:
        """Offer one (q-error, event record) pair; True if retained."""
        qerror = float(qerror)
        entry = dict(record)
        entry["qerror"] = qerror
        # Sort key: worst q-error first, earliest seq breaks ties.
        key = (-qerror, entry.get("seq", 0))
        with self._lock:
            if len(self._items) >= self.capacity:
                worst_kept = (-self._items[-1]["qerror"],
                              self._items[-1].get("seq", 0))
                if key >= worst_kept:
                    return False
                self._items.pop()
            self._items.append(entry)
            self._items.sort(key=lambda item: (-item["qerror"],
                                               item.get("seq", 0)))
            return True

    def worst(self) -> dict | None:
        """The single worst-q-error exemplar (None while empty)."""
        with self._lock:
            return dict(self._items[0]) if self._items else None

    def snapshot(self) -> list[dict]:
        """Exemplars, worst q-error first (deterministic order)."""
        with self._lock:
            return [dict(item) for item in self._items]

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class EventLog:
    """Bounded, head-sampled log of wide per-request events.

    Parameters
    ----------
    capacity:
        Retained-event ring size; the oldest sampled event falls out
        once full (errors are not exempt from eviction, only from
        sampling).
    sample_every:
        Head-sampling period: event ``seq`` is retained iff
        ``seq % sample_every == 0`` or the request errored.  1 keeps
        everything.
    exemplar_capacity:
        Size of the worst-q-error :class:`ExemplarReservoir`.
    clock_ns:
        Timestamp source; injectable for deterministic runs.
    """

    def __init__(self, capacity: int = 1024, sample_every: int = 1,
                 exemplar_capacity: int = 8,
                 clock_ns: Callable[[], int] = time.perf_counter_ns) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}")
        self.capacity = int(capacity)
        self.sample_every = int(sample_every)
        self.exemplars = ExemplarReservoir(exemplar_capacity)
        self._clock_ns = clock_ns
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._recorded = 0
        self._sampled = 0
        self._errors = 0

    def stopwatch(self) -> Stopwatch:
        """A :class:`Stopwatch` on this log's clock (see class docs)."""
        return Stopwatch(self._clock_ns)

    def record(self, *, trace_id: int | None = None,
               fingerprint: str | None = None, sql: str | None = None,
               batch_id: int | None = None,
               model_version: str | None = None, cache: str | None = None,
               latency_seconds: float = 0.0, estimate: float | None = None,
               qerror: float | None = None,
               error: str | None = None) -> dict:
        """Record one request; returns the event record.

        The record is returned whether or not it was *retained* — the
        caller may still need it (e.g. to offer it to the exemplar
        reservoir once feedback arrives); ``record["sampled"]`` is not a
        key, retention is an internal property of the log.
        """
        with self._lock:
            self._seq += 1
            seq = self._seq
        event = {
            "seq": seq,
            "ts_ns": self._clock_ns(),
            "trace_id": trace_id,
            "fingerprint": fingerprint,
            "sql": sql,
            "batch_id": batch_id,
            "model_version": model_version,
            "cache": cache,
            "latency_seconds": float(latency_seconds),
            "estimate": None if estimate is None else float(estimate),
            "qerror": None if qerror is None else float(qerror),
            "error": error,
        }
        keep = (seq % self.sample_every == 0) or (error is not None)
        with self._lock:
            self._recorded += 1
            if error is not None:
                self._errors += 1
            if keep:
                self._sampled += 1
                self._events.append(event)
        return event

    def attach_qerror(self, fingerprint: str, qerror: float,
                      sql: str | None = None) -> dict | None:
        """Attach feedback to the newest sampled event with
        ``fingerprint``; offers the pair to the exemplar reservoir.

        Returns the updated event record, or ``None`` when no sampled
        event matches (the exemplar offer still happens — feedback on
        an unsampled request must not lose the offending SQL).
        """
        qerror = float(qerror)
        matched: dict | None = None
        with self._lock:
            for event in reversed(self._events):
                if event["fingerprint"] == fingerprint:
                    event["qerror"] = qerror
                    if sql is not None and event["sql"] is None:
                        event["sql"] = sql
                    matched = dict(event)
                    break
        offered = matched if matched is not None else {
            "seq": self._seq, "ts_ns": self._clock_ns(), "trace_id": None,
            "fingerprint": fingerprint, "sql": sql, "batch_id": None,
            "model_version": None, "cache": None, "latency_seconds": 0.0,
            "estimate": None, "qerror": qerror, "error": None,
        }
        self.exemplars.offer(qerror, offered)
        return matched

    def events(self) -> list[dict]:
        """Retained events, oldest first."""
        with self._lock:
            return [dict(event) for event in self._events]

    def counts(self) -> dict:
        """Recorded / sampled / error totals plus retained size."""
        with self._lock:
            return {
                "recorded": self._recorded,
                "sampled": self._sampled,
                "errors": self._errors,
                "retained": len(self._events),
                "sample_every": self.sample_every,
            }

    def snapshot(self) -> dict:
        """Byte-stable JSON-serialisable state (counts + exemplars)."""
        return {
            "kind": "events",
            "counts": self.counts(),
            "exemplars": self.exemplars.snapshot(),
        }

    def write_jsonl(self, path: Path) -> int:
        """Write retained events one JSON object per line; returns
        the number written."""
        records = self.events()
        lines = [json.dumps(record, sort_keys=True) for record in records]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""),
                              encoding="utf-8")
        return len(records)

    def reset(self) -> None:
        """Drop all events, counts, and exemplars."""
        with self._lock:
            self._events.clear()
            self._seq = 0
            self._recorded = 0
            self._sampled = 0
            self._errors = 0
        self.exemplars = ExemplarReservoir(self.exemplars.capacity)


def read_events_jsonl(path: Path) -> list[dict]:
    """Parse a JSONL event log back into records (schema-checked)."""
    records: list[dict] = []
    for lineno, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{lineno}: not a JSON event record: {error}"
            ) from None
        if not isinstance(record, dict):
            raise ValueError(
                f"{path}:{lineno}: event record is not an object")
        missing = [key for key in EVENT_RECORD_KEYS if key not in record]
        if missing:
            raise ValueError(
                f"{path}:{lineno}: event record is missing keys {missing}")
        records.append(record)
    return records


def render_event_text(record: Mapping) -> str:
    """One aligned human line per event (the ``repro obs watch`` shape)."""
    qerror = record.get("qerror")
    estimate = record.get("estimate")
    parts = [
        f"#{record.get('seq', '?')}",
        f"trace={record.get('trace_id')}",
        f"model={record.get('model_version') or '-'}",
        f"cache={record.get('cache') or '-'}",
        f"batch={record.get('batch_id') if record.get('batch_id') is not None else '-'}",
        f"lat={record.get('latency_seconds', 0.0) * 1e3:.3f}ms",
        f"est={estimate:.1f}" if estimate is not None else "est=-",
        f"qerr={qerror:.3f}" if qerror is not None else "qerr=-",
    ]
    error = record.get("error")
    if error:
        parts.append(f"error={error}")
    fingerprint = record.get("fingerprint")
    if fingerprint:
        parts.append(f"fp={str(fingerprint)[:12]}")
    return "  ".join(parts)


def _rank_quantile(values: list, q: float) -> float:
    """Nearest-rank quantile of ``values`` (0.0 when empty).

    Deterministic (plain sort, no interpolation) so two reads of the
    same event log render byte-identical summaries.
    """
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return 0.0
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def summarize_events(records: Iterable[Mapping]) -> dict:
    """Aggregate event records into a per-model / per-cache summary.

    The summary is a pure function of the record list (counts, nearest-
    rank latency and q-error quantiles, the single worst-q-error event),
    so ``repro obs report --events`` output is deterministic for a
    deterministic log.
    """
    records = list(records)
    latencies = [r.get("latency_seconds", 0.0) or 0.0 for r in records]
    qerrors = [r["qerror"] for r in records if r.get("qerror") is not None]
    models: dict[str, int] = {}
    caches: dict[str, int] = {}
    errors = 0
    worst: Mapping | None = None
    for record in records:
        models[record.get("model_version") or "-"] = (
            models.get(record.get("model_version") or "-", 0) + 1)
        caches[record.get("cache") or "-"] = (
            caches.get(record.get("cache") or "-", 0) + 1)
        if record.get("error"):
            errors += 1
        observed = record.get("qerror")
        if observed is not None and (
                worst is None
                or observed > worst["qerror"]
                or (observed == worst["qerror"]
                    and record.get("seq", 0) < worst.get("seq", 0))):
            worst = record
    return {
        "events": len(records),
        "errors": errors,
        "models": dict(sorted(models.items())),
        "cache": dict(sorted(caches.items())),
        "latency_ms": {
            "p50": _rank_quantile(latencies, 0.50) * 1e3,
            "p95": _rank_quantile(latencies, 0.95) * 1e3,
            "max": (max(latencies) * 1e3 if latencies else 0.0),
        },
        "qerror": {
            "count": len(qerrors),
            "p50": _rank_quantile(qerrors, 0.50),
            "p95": _rank_quantile(qerrors, 0.95),
            "max": (max(float(q) for q in qerrors) if qerrors else 0.0),
        },
        "worst": dict(worst) if worst is not None else None,
    }


def render_events_summary_text(summary: Mapping) -> str:
    """Human-readable multi-line rendering of :func:`summarize_events`."""
    latency = summary["latency_ms"]
    qerr = summary["qerror"]
    lines = [
        f"events: {summary['events']} ({summary['errors']} errors)",
        "  latency  p50 {p50:9.3f}ms  p95 {p95:9.3f}ms  "
        "max {max:9.3f}ms".format(**latency),
        f"  q-error  n {qerr['count']}  p50 {qerr['p50']:8.3f}  "
        f"p95 {qerr['p95']:8.3f}  max {qerr['max']:8.3f}",
    ]
    for model, count in summary["models"].items():
        lines.append(f"  model {model}: {count}")
    for cache, count in summary["cache"].items():
        lines.append(f"  cache {cache}: {count}")
    if summary["worst"] is not None:
        lines.append("  worst: " + render_event_text(summary["worst"]))
        sql = summary["worst"].get("sql")
        if sql:
            lines.append(f"    sql: {sql}")
    return "\n".join(lines)


def render_events_summary_json(summary: Mapping) -> str:
    """Byte-stable JSON rendering of :func:`summarize_events`."""
    return json.dumps(summary, sort_keys=True, indent=2)


#: Process-global event log the serving stack records into.
_event_log = EventLog()


def get_event_log() -> EventLog:
    """The process-global request-event log."""
    return _event_log


def set_event_log(log: EventLog) -> EventLog:
    """Install ``log`` as the global event log; returns it."""
    global _event_log
    _event_log = log
    return log
