"""``repro.obs`` — observability for the featurize → model → estimate
pipeline and the serving stack above it.

Six pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — nested span tracing with monotonic-clock
  timing, a context-manager and decorator API, a near-zero-cost no-op
  path while disabled (the default), and cross-process **trace
  context**: deterministic trace ids minted per request, carried in the
  ``X-Repro-Trace`` header, stamped onto every span opened in context.
* :mod:`repro.obs.metrics_runtime` — counters, gauges, and streaming
  histograms over fixed log-spaced buckets, so summaries are
  deterministic byte-for-byte.
* :mod:`repro.obs.window` — sliding-window monitors: labeled ring
  histograms advanced on a logical tick (windowed p50/p95/p99 per
  model/table/QFT/cache dimension) and :class:`SloTracker` burn-rate
  tracking against latency/q-error targets.
* :mod:`repro.obs.events` — one wide event per served request with
  deterministic head sampling, always-keep-on-error, and a bounded
  worst-q-error exemplar reservoir that retains the offending SQL.
* :mod:`repro.obs.prometheus` — text exposition of both registries for
  standard scrapers, plus the strict format validator.
* :mod:`repro.obs.export` — JSONL span logs, Chrome trace-event output
  (including multi-process stitching with flow arrows), and the
  per-stage summary behind ``repro obs report``.

This package sits at the very bottom of the layering: it imports
nothing from the rest of ``repro``, so every layer (featurize, models,
estimators, experiments, lint, serve) may instrument itself freely.
"""

from repro.obs.events import (
    EventLog,
    ExemplarReservoir,
    get_event_log,
    set_event_log,
)
from repro.obs.metrics_runtime import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    Tracer,
    current_trace_id,
    disable,
    enable,
    enabled,
    ensure_tracing,
    format_trace_header,
    get_tracer,
    mint_trace_id,
    parse_trace_header,
    reset_trace_ids,
    set_tracer,
    span,
    trace,
    use_trace_context,
    use_tracer,
)
from repro.obs.window import (
    SloTracker,
    WindowedHistogram,
    WindowRegistry,
    get_windows,
    set_windows,
)

__all__ = [
    # tracing
    "Span", "Tracer", "get_tracer", "set_tracer", "use_tracer",
    "ensure_tracing", "span", "trace", "enabled", "enable", "disable",
    # trace context
    "TRACE_HEADER", "mint_trace_id", "current_trace_id",
    "use_trace_context", "format_trace_header", "parse_trace_header",
    "reset_trace_ids",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "set_registry",
    # windowed monitors
    "WindowedHistogram", "SloTracker", "WindowRegistry", "get_windows",
    "set_windows",
    # request events
    "EventLog", "ExemplarReservoir", "get_event_log", "set_event_log",
    # maintenance
    "reset",
]


def reset() -> None:
    """Clear spans, metrics, windows, events, and the trace-id counter
    (test/benchmark hygiene — and how two runs start byte-identical)."""
    get_tracer().reset()
    get_registry().reset()
    get_windows().reset()
    get_event_log().reset()
    reset_trace_ids()
