"""``repro.obs`` — observability for the featurize → model → estimate
pipeline.

Three pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — nested span tracing with monotonic-clock
  timing, a context-manager and decorator API, and a near-zero-cost
  no-op path while disabled (the default).
* :mod:`repro.obs.metrics_runtime` — counters, gauges, and streaming
  histograms over fixed log-spaced buckets, so summaries are
  deterministic byte-for-byte.
* :mod:`repro.obs.export` — JSONL span logs, Chrome trace-event output
  for flame views, and the per-stage summary behind
  ``repro obs report``.

This package sits at the very bottom of the layering: it imports
nothing from the rest of ``repro``, so every layer (featurize, models,
estimators, experiments, lint) may instrument itself freely.
"""

from repro.obs.metrics_runtime import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    Span,
    Tracer,
    disable,
    enable,
    enabled,
    ensure_tracing,
    get_tracer,
    set_tracer,
    span,
    trace,
    use_tracer,
)

__all__ = [
    # tracing
    "Span", "Tracer", "get_tracer", "set_tracer", "use_tracer",
    "ensure_tracing", "span", "trace", "enabled", "enable", "disable",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "set_registry",
    # maintenance
    "reset",
]


def reset() -> None:
    """Clear recorded spans and all metrics (test/benchmark hygiene)."""
    get_tracer().reset()
    get_registry().reset()
