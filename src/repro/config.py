"""Global configuration defaults for the reproduction.

Every stochastic component in this package (data generators, workload
generators, model initialisation, sampling estimators) takes an explicit
``seed`` argument.  ``DEFAULT_SEED`` is the value used when the caller does
not care; using it everywhere makes full experiment runs reproducible
bit-for-bit.
"""

from __future__ import annotations

#: Seed used by default throughout the package (the paper's publication year).
DEFAULT_SEED: int = 2023

#: Default maximum number of per-attribute feature-vector entries for
#: Universal Conjunction Encoding / Limited Disjunction Encoding.  The paper
#: uses 64 unless stated otherwise (Section 5, "Abbreviations").
DEFAULT_PARTITIONS: int = 64

#: Number of rows for the synthetic forest covertype dataset used by the
#: default (laptop-scale) experiment configuration.  The original UCI data
#: has 581 012 rows; the QFT comparison only needs enough rows for stable
#: selectivities.
FOREST_ROWS: int = 60_000

#: Number of attributes in the forest covertype schema (matches UCI: 55).
FOREST_ATTRIBUTES: int = 55

#: Scale factor rows for the synthetic IMDb star schema's fact table.
IMDB_TITLE_ROWS: int = 20_000

#: Smallest admissible cardinality estimate.  The paper only considers
#: queries with non-empty results and clamps all estimates to >= 1 so the
#: q-error is always defined.
MIN_ESTIMATE: float = 1.0
