"""Work-based plan execution (the Table 4 "run time" proxy).

A real executor's run time on a join query is dominated by the tuples it
materialises.  :func:`plan_work` charges a chosen plan:

* one full scan per base table (reading the input), plus
* the **true** cardinality of every intermediate prefix the left-deep
  plan materialises.

The charge uses *true* sizes regardless of which estimator picked the
plan — exactly like a DBMS: the optimizer plans with estimates, the
executor pays real costs.  Summing work over a workload reproduces the
structure of the paper's Table 4 (Postgres vs. our approach vs. true
cardinalities).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.schema import Schema
from repro.estimators.base import CardinalityEstimator
from repro.optimizer.dp import JoinPlan, optimize
from repro.optimizer.subqueries import subquery
from repro.sql.ast import Query
from repro.sql.executor import cardinality

__all__ = ["PlanWork", "plan_work", "workload_work"]


@dataclass(frozen=True)
class PlanWork:
    """Measured work of one executed plan."""

    plan: JoinPlan
    #: Tuples read by base-table scans.
    scan_tuples: int
    #: True sizes of the materialised intermediates, in plan order.
    intermediate_tuples: tuple[int, ...]

    @property
    def total_tuples(self) -> int:
        """The run-time proxy: scans plus all intermediates."""
        return self.scan_tuples + sum(self.intermediate_tuples)


def plan_work(query: Query, plan: JoinPlan, schema: Schema) -> PlanWork:
    """Charge ``plan`` its true scan and intermediate sizes."""
    scan_tuples = sum(schema.table(t).row_count for t in plan.order)
    intermediates = tuple(
        cardinality(subquery(query, prefix, schema), schema)
        for prefix in plan.prefixes
    )
    return PlanWork(plan=plan, scan_tuples=scan_tuples,
                    intermediate_tuples=intermediates)


def workload_work(queries, schema: Schema,
                  estimator: CardinalityEstimator) -> int:
    """Total work of a workload when plans are chosen by ``estimator``."""
    total = 0
    for query in queries:
        plan = optimize(query, schema, estimator)
        total += plan_work(query, plan, schema).total_tuples
    return total
