"""Query-optimizer substrate for the end-to-end experiment (Table 4).

The paper integrates its estimator into PostgreSQL and measures JOB-light
run times under (a) Postgres's own estimates, (b) the learned estimates,
and (c) true cardinalities.  Offline, we reproduce the *plan-choice*
mechanism that drives those run times:

* :mod:`repro.optimizer.dp` — a System-R-style dynamic-programming join
  orderer that picks the cheapest left-deep join order under a given
  cardinality estimator (``C_out`` cost: the sum of estimated
  intermediate result sizes).
* :mod:`repro.optimizer.execute` — a work-based plan "executor" that
  charges every chosen intermediate its **true** size (tuples that a real
  executor would materialise), making plan quality measurable without a
  DBMS.
"""

from repro.optimizer.dp import JoinPlan, optimize
from repro.optimizer.execute import plan_work, workload_work

__all__ = ["JoinPlan", "optimize", "plan_work", "workload_work"]
