"""Sub-queries over table subsets (the DP's estimation targets)."""

from __future__ import annotations

from typing import Iterable

from repro.data.schema import Schema
from repro.sql.ast import And, BoolExpr, Query
from repro.sql.executor import per_table_selections

__all__ = ["subquery"]


def subquery(query: Query, tables: Iterable[str], schema: Schema) -> Query:
    """Restrict ``query`` to the subset ``tables``.

    Keeps the join predicates whose endpoints both lie in the subset and
    the selection terms owned by subset tables.  The subset must be
    non-empty and drawn from the query's FROM list.
    """
    subset = tuple(t for t in query.tables if t in set(tables))
    if len(subset) != len(set(tables)):
        unknown = set(tables) - set(query.tables)
        raise ValueError(f"tables {sorted(unknown)} not part of the query")
    if not subset:
        raise ValueError("subset must contain at least one table")
    joins = tuple(
        j for j in query.joins
        if j.left_table in subset and j.right_table in subset
    )
    selections = per_table_selections(query, schema)
    terms: list[BoolExpr] = [
        selections[t] for t in subset if selections.get(t) is not None
    ]
    where: BoolExpr | None
    if not terms:
        where = None
    elif len(terms) == 1:
        where = terms[0]
    else:
        where = And(terms)
    return Query(tables=subset, joins=joins, where=where)
