"""System-R-style join-order optimization (``C_out`` cost).

The DP table is indexed by connected table subsets.  Joining toward a
subset ``S`` costs the *estimated* cardinality of ``S`` — the classic
``C_out`` metric, which rewards plans that keep intermediate results
small.  Bad cardinality estimates therefore directly cause bad join
orders, which is the effect Table 4 measures.

Two search spaces are supported:

* **left-deep** (the default, System R's space): plans are join orders;
  every step joins one base table into the running intermediate.
* **bushy** (``bushy=True``): the full space of join trees; any two
  disjoint connected subsets with a join edge between them may combine.
  For FK-star queries both spaces contain the same optima; on chains and
  snowflakes bushy plans can be strictly cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.data.schema import Schema
from repro.estimators.base import CardinalityEstimator
from repro.optimizer.subqueries import subquery
from repro.sql.ast import Query

__all__ = ["JoinPlan", "optimize"]


@dataclass(frozen=True)
class JoinPlan:
    """A chosen join plan with its estimated ``C_out`` cost.

    ``intermediates`` are the table subsets the plan materialises (every
    internal node of the join tree, size >= 2) — the quantities a
    work-based executor charges.  For left-deep plans these are exactly
    the prefixes of ``order``.
    """

    #: Base tables in join (leaf) order; ``order[0]`` drives the plan.
    order: tuple[str, ...]
    #: Sum of estimated intermediate cardinalities.
    estimated_cost: float
    #: Materialised subsets, in evaluation order (innermost first).
    intermediates: tuple[tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if not self.intermediates and len(self.order) > 1:
            object.__setattr__(self, "intermediates", tuple(
                self.order[:size] for size in range(2, len(self.order) + 1)
            ))

    @property
    def prefixes(self) -> list[tuple[str, ...]]:
        """The materialised subsets (alias kept for the left-deep view)."""
        return list(self.intermediates)


def _join_graph(query: Query) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(query.tables)
    for join in query.joins:
        graph.add_edge(join.left_table, join.right_table)
    if not nx.is_connected(graph):
        raise ValueError(
            f"join graph of {query.tables} is not connected; cross products "
            "are not supported"
        )
    return graph


def optimize(query: Query, schema: Schema, estimator: CardinalityEstimator,
             bushy: bool = False) -> JoinPlan:
    """Choose the cheapest join plan under ``estimator``.

    Single-table queries trivially return the one-table plan.  The join
    graph must be connected (cross products are never considered).
    ``bushy=True`` searches the full join-tree space instead of
    left-deep orders.
    """
    if len(query.tables) == 1:
        return JoinPlan(order=query.tables, estimated_cost=0.0)
    graph = _join_graph(query)
    tables = query.tables
    index = {t: i for i, t in enumerate(tables)}

    estimate_cache: dict[int, float] = {}

    def estimate_subset(mask: int) -> float:
        if mask not in estimate_cache:
            subset = [t for t in tables if mask & (1 << index[t])]
            estimate_cache[mask] = estimator.estimate(
                subquery(query, subset, schema))
        return estimate_cache[mask]

    if bushy:
        return _optimize_bushy(query, graph, index, estimate_subset)
    return _optimize_left_deep(query, graph, index, estimate_subset)


def _optimize_left_deep(query: Query, graph: nx.Graph, index, estimate_subset
                        ) -> JoinPlan:
    full_mask = (1 << len(query.tables)) - 1
    best: dict[int, tuple[float, tuple[str, ...]]] = {}
    for table in query.tables:
        best[1 << index[table]] = (0.0, (table,))
    neighbors = {t: set(graph.neighbors(t)) for t in query.tables}

    frontier = list(best)
    while frontier:
        next_frontier: list[int] = []
        for mask in frontier:
            cost, order = best[mask]
            in_subset = set(order)
            candidates = set()
            for t in in_subset:
                candidates |= neighbors[t]
            candidates -= in_subset
            for table in candidates:
                new_mask = mask | (1 << index[table])
                new_cost = cost + estimate_subset(new_mask)
                current = best.get(new_mask)
                if current is None or new_cost < current[0]:
                    best[new_mask] = (new_cost, order + (table,))
                    next_frontier.append(new_mask)
        frontier = next_frontier

    cost, order = best[full_mask]
    return JoinPlan(order=order, estimated_cost=cost)


def _optimize_bushy(query: Query, graph: nx.Graph, index, estimate_subset
                    ) -> JoinPlan:
    tables = query.tables
    n = len(tables)
    full_mask = (1 << n) - 1

    # Precompute per-table neighbour masks for the edge-crossing check.
    neighbor_mask = [0] * n
    for left, right in graph.edges:
        neighbor_mask[index[left]] |= 1 << index[right]
        neighbor_mask[index[right]] |= 1 << index[left]

    def crosses_edge(mask_a: int, mask_b: int) -> bool:
        for i in range(n):
            if mask_a & (1 << i) and neighbor_mask[i] & mask_b:
                return True
        return False

    # DP state: mask -> (cost, leaf order, intermediates in eval order).
    best: dict[int, tuple[float, tuple[str, ...], tuple]] = {}
    for table in tables:
        best[1 << index[table]] = (0.0, (table,), ())

    # Enumerate masks in increasing popcount so sub-results exist.
    masks = sorted(range(1, full_mask + 1), key=lambda m: bin(m).count("1"))
    for mask in masks:
        if bin(mask).count("1") < 2:
            continue
        chosen = None
        # Iterate proper submasks; consider each unordered partition once.
        sub = (mask - 1) & mask
        while sub:
            other = mask ^ sub
            if sub < other:
                left_state = best.get(sub)
                right_state = best.get(other)
                if (left_state is not None and right_state is not None
                        and crosses_edge(sub, other)):
                    cost = (left_state[0] + right_state[0]
                            + estimate_subset(mask))
                    if chosen is None or cost < chosen[0]:
                        chosen = (
                            cost,
                            left_state[1] + right_state[1],
                            left_state[2] + right_state[2]
                            + (tuple(t for t in tables
                                     if mask & (1 << index[t])),),
                        )
            sub = (sub - 1) & mask
        if chosen is not None:
            best[mask] = chosen

    cost, order, intermediates = best[full_mask]
    return JoinPlan(order=order, estimated_cost=cost,
                    intermediates=intermediates)
