"""Quickstart: train a learned cardinality estimator on a single table.

Walks the full pipeline of the paper on the synthetic forest covertype
dataset:

1. generate data and a conjunctive query workload (true cardinalities
   come from the built-in executor),
2. featurize queries with Universal Conjunction Encoding,
3. train a gradient-boosting model on log cardinalities,
4. evaluate with the q-error, and
5. estimate a query written as SQL text.

Run:  python examples/quickstart.py
"""

from repro.data.forest import generate_forest
from repro.estimators import LearnedEstimator, PostgresEstimator
from repro.featurize import ConjunctiveEncoding
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor
from repro.sql import parse_query
from repro.sql.executor import cardinality
from repro.workloads import generate_conjunctive_workload


def main() -> None:
    print("Generating the forest covertype table ...")
    table = generate_forest(rows=20_000)
    print(f"  {table}")

    print("Generating a labeled conjunctive workload ...")
    workload = generate_conjunctive_workload(table, num_queries=3_000)
    train, test = workload.split(train_size=2_500)
    print(f"  {len(train)} training / {len(test)} test queries")
    print(f"  example: {train[0].query.to_sql()[:100]} ...")

    print("Training GB + Universal Conjunction Encoding ...")
    estimator = LearnedEstimator(
        ConjunctiveEncoding(table, max_partitions=32),
        GradientBoostingRegressor(),
        name="GB + conj",
    ).fit(train.queries, train.cardinalities)

    errors = qerror(test.cardinalities, estimator.estimate_batch(test.queries))
    summary = summarize(errors)
    print(f"  q-error: mean={summary.mean:.2f} median={summary.median:.2f} "
          f"99%={summary.q99:.2f} max={summary.max:.2f}")

    baseline = PostgresEstimator(table)
    base_summary = summarize(
        qerror(test.cardinalities, baseline.estimate_batch(test.queries))
    )
    print(f"  Postgres-style baseline: mean={base_summary.mean:.2f} "
          f"median={base_summary.median:.2f} 99%={base_summary.q99:.2f}")

    sql = ("SELECT count(*) FROM forest "
           "WHERE A1 >= 2500 AND A1 <= 3100 AND A3 <= 20 AND A3 <> 7")
    query = parse_query(sql)
    estimate = estimator.estimate(query)
    true_count = cardinality(query, table)
    print(f"SQL: {sql}")
    print(f"  estimated {estimate:.0f}, true {true_count}, "
          f"q-error {float(qerror(true_count, estimate)):.2f}")


if __name__ == "__main__":
    main()
