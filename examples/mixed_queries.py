"""Mixed queries: estimating cardinalities for AND/OR predicate combinations.

Demonstrates the paper's headline capability — featurizing *mixed
queries* (Definition 3.3), which contain both conjunctions and
disjunctions — with Limited Disjunction Encoding, and shows why the
alternatives fail:

* Singular/Range Predicate Encoding reject disjunctions outright;
* the inclusion-exclusion principle (Section 6) would need ``2^n - 1``
  estimates for an n-way OR;
* Limited Disjunction Encoding featurizes them directly.

Run:  python examples/mixed_queries.py
"""

import numpy as np

from repro.data.forest import generate_forest
from repro.estimators import LearnedEstimator
from repro.featurize import DisjunctionEncoding, RangeEncoding
from repro.featurize.base import LosslessnessError
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor
from repro.sql import parse_query
from repro.sql.executor import cardinality
from repro.workloads import generate_mixed_workload


def main() -> None:
    table = generate_forest(rows=20_000)
    print("Generating a labeled *mixed* workload (AND + OR) ...")
    workload = generate_mixed_workload(table, num_queries=3_000)
    train, test = workload.split(train_size=2_500)
    print(f"  example: {train[1].query.to_sql()[:140]} ...")

    print("Training GB + Limited Disjunction Encoding ...")
    estimator = LearnedEstimator(
        DisjunctionEncoding(table, max_partitions=32),
        GradientBoostingRegressor(),
        name="GB + complex",
    ).fit(train.queries, train.cardinalities)
    summary = summarize(
        qerror(test.cardinalities, estimator.estimate_batch(test.queries))
    )
    print(f"  q-error: mean={summary.mean:.2f} median={summary.median:.2f} "
          f"99%={summary.q99:.2f}")

    # A paper-style mixed query (cf. the TPC-H example below Definition
    # 3.3): per-attribute compound predicates combined with AND.
    sql = (
        "SELECT count(*) FROM forest WHERE "
        "(A1 >= 2400 AND A1 <= 2600 AND A1 <> 2500 "
        " OR A1 >= 3000 AND A1 <= 3200) "
        "AND (A55 = 1 OR A55 = 2) "
        "AND A3 > 5 AND A3 < 25"
    )
    query = parse_query(sql)
    estimate = estimator.estimate(query)
    true_count = cardinality(query, table)
    print(f"Mixed SQL: {sql}")
    print(f"  estimated {estimate:.0f}, true {true_count}, "
          f"q-error {float(qerror(true_count, estimate)):.2f}")

    # The older QFTs cannot featurize this query at all.
    try:
        RangeEncoding(table).featurize(query)
    except LosslessnessError as exc:
        print(f"Range Predicate Encoding rejects it, as expected:\n  {exc}")

    # Inclusion-exclusion blow-up: a 3-branch OR already needs 2^3 - 1
    # sub-estimates; Limited Disjunction Encoding needs exactly one.
    branches = 3
    print(f"Inclusion-exclusion would need {2**branches - 1} estimates for "
          f"a {branches}-way OR; Limited Disjunction Encoding needs 1.")


if __name__ == "__main__":
    main()
