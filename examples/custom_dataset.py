"""Bring your own data: estimators over a custom table, plus the
Section 6 extensions (string prefixes and GROUP BY).

Shows the full public API surface on a small hand-built orders table:

1. build a :class:`~repro.data.Table` from plain numpy arrays
   (categoricals dictionary-encoded to integers),
2. generate + label a workload and train an estimator,
3. featurize string prefix predicates (``LIKE 'a%'``) with the
   string-bucket extension, and
4. featurize GROUP BY clauses with the binary grouping vector.

Run:  python examples/custom_dataset.py
"""

import numpy as np

from repro.data import Table
from repro.estimators import LearnedEstimator
from repro.featurize import ConjunctiveEncoding
from repro.featurize.groupby import GroupByVector
from repro.featurize.strings import StringPrefixEncoding
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor
from repro.sql import parse_query
from repro.sql.executor import cardinality, group_count
from repro.workloads import generate_conjunctive_workload


def main() -> None:
    rng = np.random.default_rng(7)
    n = 30_000
    # An orders table in the spirit of the paper's TPC-H example.
    status_names = ["F", "O", "P"]
    table = Table("orders", {
        "o_totalprice": np.round(rng.gamma(3.0, 800.0, n), 2),
        "o_orderstatus": rng.choice(3, size=n, p=[0.45, 0.45, 0.10]),
        "o_orderyear": rng.integers(1992, 1999, n),
        "o_linecount": rng.integers(1, 8, n),
    })
    print(f"Built {table}")

    workload = generate_conjunctive_workload(table, num_queries=2_000,
                                             max_attributes=4)
    train, test = workload.split(1_600)
    estimator = LearnedEstimator(
        ConjunctiveEncoding(table, max_partitions=32),
        GradientBoostingRegressor(n_estimators=80),
    ).fit(train.queries, train.cardinalities)
    summary = summarize(
        qerror(test.cardinalities, estimator.estimate_batch(test.queries))
    )
    print(f"GB + conj on the custom table: mean={summary.mean:.2f} "
          f"median={summary.median:.2f} 99%={summary.q99:.2f}")

    sql = ("SELECT count(*) FROM orders WHERE o_orderyear >= 1994 AND "
           "o_orderyear <= 1996 AND o_orderstatus = 2 AND o_totalprice < 2000")
    query = parse_query(sql)
    print(f"SQL: {sql}")
    print(f"  estimated {estimator.estimate(query):.0f}, "
          f"true {cardinality(query, table)} "
          f"(status code 2 = {status_names[2]!r})")

    # --- Section 6 extension: string predicates end to end -------------
    # Dictionary-encode a string column, then query it with LIKE: the
    # desugaring pass turns the prefix into a code range every QFT and
    # the executor understand.
    from repro.data import Column
    from repro.sql import desugar_strings

    words = ["alpha", "apex", "bravo", "beta", "charlie", "delta", "dog",
             "echo", "ember", "foxtrot"]
    clerks = [words[i] for i in rng.integers(0, len(words), n)]
    orders_with_clerks = Table("orders", [
        Column.from_strings("o_clerk", clerks),
        *table.columns,
    ])
    like_query = parse_query(
        "SELECT count(*) FROM orders WHERE o_clerk LIKE 'a%' "
        "AND o_totalprice < 3000")
    desugared = desugar_strings(like_query, orders_with_clerks)
    print(f"LIKE query: {like_query.to_sql()}")
    print(f"  desugared to: {desugared.to_sql()}")
    print(f"  true count: {cardinality(like_query, orders_with_clerks)}")

    # The standalone bucket featurization of prefixes (more buckets ->
    # finer vectors) is also available:
    strings = StringPrefixEncoding(sorted(set(clerks)), buckets=26)
    vector = strings.featurize_prefix("a")
    print(f"  bucket featurization of 'a%': "
          f"{np.count_nonzero(vector[:-1])} active buckets, "
          f"dictionary selectivity {vector[-1]:.2f}")

    # --- Section 6 extension: GROUP BY ---------------------------------
    groupby = GroupByVector(table)
    grouped = parse_query(
        "SELECT count(*) FROM orders WHERE o_orderyear = 1995 "
        "GROUP BY o_orderstatus, o_linecount"
    )
    print(f"GROUP BY vector: {groupby.featurize(grouped).astype(int)} "
          f"(attributes {table.column_names})")
    print(f"  the query produces {group_count(grouped, table)} groups")


if __name__ == "__main__":
    main()
