"""Data drift in production: feedback monitoring and self-tuning.

Section 5.5.2 of the paper: "we simply recommend to reconstruct models
after data drift occurred.  For deciding when to reconstruct, we
recommend to [...] base the decision on query feedback."

This example plays that scenario end to end:

1. train an estimator on today's table,
2. let the data drift (a bulk delete removes two thirds of the rows),
3. keep serving queries while reporting executed queries' true counts
   back to the :class:`~repro.feedback.SelfTuningEstimator`,
4. watch the feedback monitor detect the drift and rebuild the model,
5. compare accuracy before/after the rebuild.

Run:  python examples/drift_monitoring.py
"""

import numpy as np

from repro.data.forest import generate_forest
from repro.estimators import LearnedEstimator
from repro.featurize import ConjunctiveEncoding
from repro.feedback import QueryFeedbackMonitor, SelfTuningEstimator
from repro.metrics import qerror
from repro.models import GradientBoostingRegressor
from repro.workloads import generate_conjunctive_workload


def main() -> None:
    print("Day 0: generating the table and training the estimator ...")
    table = generate_forest(rows=20_000)
    live = {"table": table}

    def build():
        workload = generate_conjunctive_workload(
            live["table"], 1_500, max_attributes=3, seed=17)
        return LearnedEstimator(
            ConjunctiveEncoding(live["table"], max_partitions=32),
            GradientBoostingRegressor(n_estimators=80),
        ).fit(workload.queries, workload.cardinalities)

    monitor = QueryFeedbackMonitor(window=120, min_observations=50,
                                   threshold=8.0, quantile=0.9)
    estimator = SelfTuningEstimator(build, monitor)
    print(f"  trained; rebuilds so far: {estimator.rebuild_count}")

    print("Day 1: data drift — a bulk delete keeps only the highest "
          "elevations (one row in ten) ...")
    elevation = table.column("A1").values
    live["table"] = table.subset(elevation > np.quantile(elevation, 0.9))
    print(f"  table now has {live['table'].row_count} rows")

    print("Serving queries with feedback ...")
    served = generate_conjunctive_workload(live["table"], 200,
                                           max_attributes=3, seed=18)
    for i, item in enumerate(served):
        rebuilt = estimator.feedback(item.query, item.cardinality)
        if rebuilt:
            print(f"  drift detected after {i + 1} served queries; "
                  "model rebuilt on the live table")
            break
    print(f"  rebuilds: {estimator.rebuild_count}")

    print("Accuracy on the drifted data ...")
    check = generate_conjunctive_workload(live["table"], 150,
                                          max_attributes=3, seed=19)
    stale_model = LearnedEstimator(
        ConjunctiveEncoding(table, max_partitions=32),
        GradientBoostingRegressor(n_estimators=80),
    )
    stale_workload = generate_conjunctive_workload(table, 1_500,
                                                   max_attributes=3, seed=17)
    stale_model.fit(stale_workload.queries, stale_workload.cardinalities)
    for name, est in (("stale (day-0) model", stale_model),
                      ("self-tuned model", estimator)):
        errors = qerror(check.cardinalities, est.estimate_batch(check.queries))
        print(f"  {name}: mean q-error {errors.mean():.2f}, "
              f"median {np.median(errors):.2f}")


if __name__ == "__main__":
    main()
