"""The paper's own Definition 3.3 example, end to end.

Reproduces the paper's illustrative mixed query on a TPC-H-style
``Orders`` table — orders from either 1994 or 1996 (July 4th excluded in
both years), pending or finished, priced between 1000 and 2000 — and
estimates it with GB + Limited Disjunction Encoding.

Run:  python examples/tpch_mixed_query.py
"""

from repro.data.tpch import ORDERSTATUS_CODES, generate_orders
from repro.estimators import LearnedEstimator, PostgresEstimator
from repro.featurize import DisjunctionEncoding
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor
from repro.sql import parse_query
from repro.sql.executor import cardinality
from repro.workloads import generate_mixed_workload


def main() -> None:
    print("Generating the TPC-H-style orders table ...")
    table = generate_orders(rows=30_000)
    print(f"  {table} (o_orderstatus codes: {ORDERSTATUS_CODES})")

    print("Training GB + Limited Disjunction Encoding on mixed queries ...")
    workload = generate_mixed_workload(table, num_queries=3_000,
                                       max_attributes=4)
    train, test = workload.split(2_500)
    estimator = LearnedEstimator(
        DisjunctionEncoding(table, max_partitions=64),
        GradientBoostingRegressor(),
        name="GB + complex",
    ).fit(train.queries, train.cardinalities)
    summary = summarize(qerror(
        test.cardinalities, estimator.estimate_batch(test.queries)))
    print(f"  test q-error: mean={summary.mean:.2f} "
          f"median={summary.median:.2f} 99%={summary.q99:.2f}")

    # The paper's example below Definition 3.3, with dates as YYYYMMDD
    # integers and statuses dictionary-encoded (P=2, F=0).
    sql = (
        "SELECT count(*) FROM orders WHERE "
        "(o_orderdate >= 19940101 AND o_orderdate <= 19941231 "
        " AND o_orderdate <> 19940704 "
        " OR o_orderdate >= 19960101 AND o_orderdate <= 19961231 "
        " AND o_orderdate <> 19960704) "
        "AND (o_orderstatus = 2 OR o_orderstatus = 0) "
        "AND (o_totalprice > 1000 AND o_totalprice < 2000)"
    )
    query = parse_query(sql)
    truth = cardinality(query, table)
    estimate = estimator.estimate(query)
    print("The paper's Definition 3.3 example query:")
    print(f"  {sql}")
    print(f"  true {truth}, estimated {estimate:.0f}, "
          f"q-error {float(qerror(truth, estimate)):.2f}")

    # The independence-assumption baseline handles the same query via
    # the union formula — usually noticeably worse on correlated data.
    baseline = PostgresEstimator(table)
    base_estimate = baseline.estimate(query)
    print(f"  Postgres-style baseline: {base_estimate:.0f} "
          f"(q-error {float(qerror(truth, base_estimate)):.2f})")

    # Per-attribute compound structure, as Algorithm 2 sees it.
    form = query.compound_form()
    for attribute, branches in form.items():
        print(f"  compound on {attribute}: {len(branches)} branch(es)")


if __name__ == "__main__":
    main()
