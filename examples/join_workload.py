"""Join queries: local models over a star schema, and plan choice.

Reproduces the paper's join setup on the synthetic IMDb schema:

1. train one local model per sub-schema (GB + Universal Conjunction
   Encoding),
2. evaluate on a JOB-light-style benchmark against the Postgres-style
   baseline,
3. show the end-to-end effect: the System-R optimizer picks different
   join orders under different estimators, and the chosen plans differ
   in real work (tuples processed).

Run:  python examples/join_workload.py
"""

from repro.data.imdb import generate_imdb
from repro.estimators import (
    LocalModelEnsemble,
    PostgresEstimator,
    TrueCardinalityEstimator,
)
from repro.featurize import ConjunctiveEncoding
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor
from repro.optimizer import optimize, plan_work
from repro.workloads import generate_joblight_benchmark
from repro.workloads.joblight import generate_balanced_training


def main() -> None:
    print("Generating the synthetic IMDb star schema ...")
    schema = generate_imdb(title_rows=5_000)
    for table in schema.tables:
        print(f"  {table}")

    print("Generating workloads (training is balanced per sub-schema) ...")
    train = generate_balanced_training(schema, queries_per_subschema=400)
    bench = generate_joblight_benchmark(schema)
    print(f"  {len(train)} training queries, {len(bench)} benchmark queries")
    print(f"  example: {bench[0].query.to_sql()[:160]} ...")

    print("Training local models (GB + conj, one per sub-schema) ...")
    learned = LocalModelEnsemble(
        schema,
        lambda table, attrs: ConjunctiveEncoding(table, attrs, max_partitions=32),
        lambda: GradientBoostingRegressor(n_estimators=120),
        name="GB + conj (local)",
    ).fit(train.queries, train.cardinalities)
    print(f"  trained {len(learned.subschemata)} local models")

    postgres = PostgresEstimator(schema)
    for estimator in (learned, postgres):
        summary = summarize(qerror(
            bench.cardinalities, estimator.estimate_batch(bench.queries)
        ))
        print(f"  {estimator.name}: mean={summary.mean:.2f} "
              f"median={summary.median:.2f} 99%={summary.q99:.2f}")

    print("Plan choice under different estimators (first benchmark query):")
    query = bench[0].query
    truth = TrueCardinalityEstimator(schema)
    for estimator in (postgres, learned, truth):
        plan = optimize(query, schema, estimator)
        work = plan_work(query, plan, schema)
        print(f"  {estimator.name:>12}: order={' -> '.join(plan.order)} "
              f"work={work.total_tuples} tuples")


if __name__ == "__main__":
    main()
