"""Benchmarks for the Section 6 extensions (GROUP BY, string prefixes)."""

from repro.experiments import ext_extensions


def test_ext_groupby(benchmark, scale, record):
    result = benchmark.pedantic(ext_extensions.run_groupby, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = {r["estimator"]: r for r in result.rows}
    learned = rows["GB + conj ⊕ grouping vector"]
    bound = rows["distinct-product bound"]
    # The learned estimator beats the histogram-backed bound on the mean
    # (the bound has no way to see data-dependent group collapse); the
    # medians are close at bench scale.
    assert learned["mean"] <= bound["mean"]
    assert learned["median"] <= 1.15 * bound["median"]


def test_ext_strings(benchmark, scale, record):
    result = benchmark.pedantic(ext_extensions.run_strings, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    for row in result.rows:
        # Dictionary-based prefix selectivities are near-exact.
        assert row["median"] < 1.05
        assert row["99%"] < 2.0
