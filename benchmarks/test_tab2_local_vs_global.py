"""Regenerates Table 2: local vs. global models on JOB-light."""

from repro.experiments import tab2_local_global


def test_tab2_local_vs_global(benchmark, scale, record):
    result = benchmark.pedantic(tab2_local_global.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = {r["model + QFT"]: r for r in result.rows}
    assert set(rows) == {"MSCN w/o mods (global)", "MSCN + conj (global)",
                         "NN + conj (local)"}

    # The QFT upgrade improves the global MSCN on at least one of the
    # paper's headline statistics (median or 99%).
    base = rows["MSCN w/o mods (global)"]
    upgraded = rows["MSCN + conj (global)"]
    assert (upgraded["median"] <= base["median"]
            or upgraded["99%"] <= base["99%"])
