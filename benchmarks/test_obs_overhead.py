"""Tracing overhead: instrumented featurization vs the raw pipeline.

Times the batch featurization path three ways (see
``repro.bench.run_obs_bench``): with no instrumentation reachable at
all, with the default disabled tracer, and with tracing enabled.  The
disabled-mode overhead is the cost every production run pays for the
hooks; it must stay under the same bound the ``repro bench obs`` CLI
gate and the committed ``BENCH_obs.json`` enforce.
"""

from __future__ import annotations

from repro.bench import run_obs_bench
from repro.experiments.common import ExperimentResult

#: Maximum tolerated slowdown of the disabled-tracing path, percent.
MAX_DISABLED_OVERHEAD_PCT = 3.0


def test_obs_overhead(scale, record):
    report = run_obs_bench(rows=scale.forest_rows,
                           queries=scale.featurize_queries,
                           partitions=scale.partitions)
    rows = [{
        "queries": report["n_queries"],
        "baseline (s)": f"{report['baseline_seconds']:.3f}",
        "disabled (s)": f"{report['disabled_seconds']:.3f}",
        "enabled (s)": f"{report['enabled_seconds']:.3f}",
        "disabled overhead": f"{report['disabled_overhead_pct']:+.2f}%",
        "enabled overhead": f"{report['enabled_overhead_pct']:+.2f}%",
    }]
    record(ExperimentResult(
        experiment="obs_overhead",
        paper_artifact="featurization cost (Section 5 'costs of the "
                       "query featurization'), instrumented",
        rows=rows,
        notes="Disabled-mode overhead is what every run pays for the "
              "repro.obs hooks; enabled-mode overhead is the price of "
              "an actual trace.",
    ))
    assert report["disabled_overhead_pct"] <= MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled tracing costs {report['disabled_overhead_pct']:.2f}% "
        f"(bound {MAX_DISABLED_OVERHEAD_PCT}%)"
    )
