"""Regenerates Figure 4: GB+conj / GB+complex vs. established estimators."""

import numpy as np

from repro.experiments import fig4_vs_established


def test_fig4_vs_established(benchmark, scale, record):
    result = benchmark.pedantic(fig4_vs_established.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = result.rows

    def agg(workload, estimator, stat):
        values = [r[stat] for r in rows
                  if r["workload"] == workload and r["estimator"] == estimator]
        assert values, f"missing rows for {estimator} on {workload}"
        return float(np.mean(values))

    # Conjunctive workload: our approach beats Postgres on the 99% tail.
    assert agg("conjunctive", "GB + conj", "q99") <= agg("conjunctive",
                                                         "Postgres", "q99")
    # Mixed workload: ours beats Postgres on the median (disjunctions
    # widen queries, which softens Postgres's correlation errors in the
    # tail at bench scale); MSCN is absent (no disjunctions).
    assert agg("mixed", "GB + complex", "median") <= agg("mixed", "Postgres",
                                                         "median")
    assert not any(r["estimator"] == "MSCN" and r["workload"] == "mixed"
                   for r in rows)
    # Sampling's tail is heavier than its median (the familiar phenomenon).
    assert agg("conjunctive", "Sampling", "q99") >= 2 * agg(
        "conjunctive", "Sampling", "median")
