"""Regenerates Figure 1: q-error distribution per QFT × ML model (forest).

Checks the paper's three take-aways on the measured grid:
GB ≈ NN under the lossy QFTs, GB/MSCN benefit most from the data-driven
QFTs, and conjunctive/complex beat simple/range under GB.
"""

from repro.experiments import fig1_qft_model


def _median(rows, model, qft):
    return next(r["median"] for r in rows
                if r["model"] == model and r["qft"] == qft)


def test_fig1_qft_model_grid(benchmark, scale, record):
    result = benchmark.pedantic(fig1_qft_model.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)

    rows = result.rows
    assert len(rows) == 12  # 4 QFTs x 3 models

    # Take-away (3): under GB, the data-driven QFTs beat the lossy ones.
    assert _median(rows, "GB", "conjunctive") <= 1.5 * _median(rows, "GB", "simple")

    # Every combination produced sane error distributions.
    for row in rows:
        assert row["median"] >= 1.0
        assert row["q25"] <= row["median"] <= row["q75"] <= row["q99"]
