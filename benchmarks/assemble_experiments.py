"""Assemble EXPERIMENTS.md from recorded benchmark results.

Run after a benchmark pass::

    pytest benchmarks/ --benchmark-only
    python benchmarks/assemble_experiments.py

Each experiment's measured table (from ``benchmarks/results/*.md``,
which already embeds the paper's reported rows) is combined with the
reproduction verdict below: what the paper claims, what we measure, and
whether the shape holds.
"""

from __future__ import annotations

from pathlib import Path

RESULTS = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent.parent / "EXPERIMENTS.md"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation of
*"Enhanced Featurization of Queries with Mixed Combinations of
Predicates for ML-based Cardinality Estimation"* (EDBT 2023).

**How to read this file.** The substrates differ from the authors'
testbed by construction (synthetic datasets in place of UCI covertype /
IMDb, from-scratch numpy models in place of lightGBM/Keras/PyTorch, a
plan-work simulator in place of PostgreSQL — see DESIGN.md §2), and the
default benchmark scale trains on ~2.5k queries instead of 100k–231k.
Absolute q-errors are therefore *not* expected to match; the claims
under reproduction are the **shapes**: which method wins, how errors
order across QFTs/models, where the crossovers fall.  Each section
states the paper's claim and the measured verdict.

Regenerate everything with::

    pytest benchmarks/ --benchmark-only        # writes benchmarks/results/
    python benchmarks/assemble_experiments.py  # rebuilds this file

Scale knobs: ``REPRO_BENCH_SCALE=bench|small|full`` (see
``benchmarks/conftest.py``).
"""

#: Experiment id -> (paper claim, measured verdict).
VERDICTS: dict[str, tuple[str, str]] = {
    "fig1": (
        "Estimation accuracy depends strongly on the QFT: under GB and "
        "MSCN, Universal Conjunction Encoding and Limited Disjunction "
        "Encoding clearly beat Singular/Range Predicate Encoding; under "
        "the lossy QFTs the local model choice (GB vs NN) matters little.",
        "REPRODUCED — for every model, median and mean errors order "
        "simple > range > conjunctive, and the complex/mixed column is "
        "the best-behaved; GB and NN are close under simple/range.",
    ),
    "fig2": (
        "Errors grow with the number of attributes for every QFT; "
        "conjunctive beats simple/range at every attribute count; "
        "complex (on the mixed workload) performs about as well as "
        "conjunctive despite handling disjunctions.",
        "REPRODUCED — same growth and same ordering in every bucket.",
    ),
    "fig3": (
        "Only Singular Predicate Encoding struggles at 2 predicates (a "
        "single closed range); Range Predicate Encoding's 99% error "
        "spikes once not-equal predicates appear (3+); "
        "conjunctive/complex stay consistent as predicates accumulate.",
        "REPRODUCED in aggregate — simple degrades fastest with "
        "predicate count and conjunctive/complex stay flattest; the "
        "range-vs-conjunctive gap at exactly 3 predicates is smaller "
        "than the paper's (our <>-exclusions remove less mass at bench "
        "scale).",
    ),
    "tab1": (
        "On JOB-light, GB beats NN across QFTs; GB+range has the best "
        "mean (JOB-light has at most one range per attribute, Range "
        "Predicate Encoding is lossless there); GB+conj has the best "
        "median; for the NN, conj dominates the other QFTs.",
        "PARTIALLY REPRODUCED — GB medians beat NN medians and GB+range "
        "has the best mean, exactly as reported.  The NN rows are closer "
        "together than the paper's (our from-scratch NN at reduced "
        "training scale does not collapse as badly under simple/range).",
    ),
    "tab2": (
        "Replacing MSCN's learned per-predicate featurization with "
        "Universal Conjunction Encoding reduces its errors across the "
        "board; local models beat the global model on joins.",
        "REPRODUCED for the QFT upgrade (MSCN+conj improves every "
        "statistic).  The local-vs-global gap is inverted at bench scale "
        "— our local NN ensemble splits its small training budget over "
        "31 sub-schema models while the global MSCN pools it, which at "
        "300 queries/sub-schema favours the global model; the paper "
        "trains on 231k queries where local models saturate.",
    ),
    "tab3": (
        "Appending per-attribute selectivity estimates changes accuracy "
        "only marginally, but tends to reduce worst-case (max) errors, "
        "most visibly for the NN.",
        "REPRODUCED — differences are marginal (means within ~1.5x), "
        "and the clearest benefit of attrSel is on the NN mean/max.",
    ),
    "tab4": (
        "End-to-end, the learned estimates close almost the entire gap "
        "between PostgreSQL's estimates and true cardinalities "
        "(144.95s vs 142.45s vs 142.20s — all within 2%).",
        "REPRODUCED in structure — all three configurations pick plans "
        "within a few percent of each other's total work; true "
        "cardinalities are optimal (guaranteed under the C_out "
        "simulation), and both estimators land close to the optimum, "
        "mirroring the paper's 'defensive optimizer, small gaps' "
        "observation.",
    ),
    "fig4": (
        "Against established estimators on forest: Postgres "
        "(independence) is worst and degrades fastest in the attribute "
        "count; sampling is excellent in the median but has heavy 99% "
        "tails; GB+conj / GB+complex have the lowest 99% errors; MSCN "
        "cannot run on the mixed workload at all.",
        "REPRODUCED on the conjunctive workload on every point, including "
        "sampling's good-median/heavy-tail signature and MSCN's absence "
        "from the mixed workload.  On the mixed workload our GB+complex "
        "wins on the median at every attribute count; Postgres's *tail* "
        "is less bad than the paper's because disjunctions widen queries, "
        "which softens correlation errors on our synthetic data.",
    ),
    "tab5": (
        "Feature-vector length trades information loss against "
        "learnability: 8/16 entries lose information, 64/256 entries "
        "overwhelm the training budget; 32 is the sweet spot.",
        "SHAPE VISIBLE, WEAKER — an interior entry count is at least as "
        "good as 256 entries, but the minimum is flatter than the "
        "paper's because our synthetic IMDb predicates live on small "
        "domains where even 8 entries lose little.",
    ),
    "fig5": (
        "Under query drift (train on <= 2 attributes, test on >= 3): GB "
        "generalizes well for all featurizations (with a larger tail at "
        "8 attributes than without drift); the NN overfits visibly, but "
        "least under conjunctive/complex.",
        "REPRODUCED — GB's drifted medians stay near its in-distribution "
        "medians, tails grow at 8 attributes, and the NN's drift gap is "
        "clearly smallest under conjunctive/complex.",
    ),
    "tab6": (
        "Errors fall with the number of training queries for every "
        "combination; GB converges much faster than NN; at any budget, "
        "conj/comp beat range/simple by a wide margin.",
        "REPRODUCED — monotone convergence, GB below NN, and conj/comp "
        "beat simple at every budget (our range column sits closer to "
        "conj than the paper's because the reduced workload dimensionality "
        "leaves fewer multi-predicate-per-attribute queries).",
    ),
    "tab7": (
        "All QFTs featurize in well under 100us/query, ordered simple < "
        "range < conjunctive < complex; GB is the smallest model "
        "(~4.8kB), MSCN >= 320kB, the NN > 1MB; a 0.1% sample is "
        "~142kB.",
        "REPRODUCED in ordering — simple < range < conjunctive < complex "
        "and everything far below 1ms (absolute times are a few times "
        "the paper's: per-query Python/numpy overhead instead of the "
        "authors' tuned implementation); memory ordering GB << MSCN < NN "
        "matches.",
    ),
    "ablation-partitions": (
        "(Beyond the paper; supports Lemma 3.2.)  As the per-attribute "
        "entry count grows, feature-vector collisions — different "
        "queries with different cardinalities mapping to one vector — "
        "must vanish and accuracy improve until learnability limits "
        "kick in.",
        "CONFIRMED — the collision rate falls monotonically with the "
        "entry count and the coarsest encoding is never the most "
        "accurate.",
    ),
    "ablation-merge": (
        "(Beyond the paper; Algorithm 2 design choice.)  Entry-wise max "
        "merging mirrors OR semantics exactly; a clipped entry-wise sum "
        "is the natural alternative.",
        "CONFIRMED — both merges train well; max is never worse, "
        "validating the paper's choice.",
    ),
    "ablation-linear": (
        "Section 2.2: linear regression and SVR were dropped because "
        "'their estimates are worse by a significant factor'.",
        "CONFIRMED for the naive setups — raw-target linear regression "
        "and the linear SVR lose to GB by large factors under both "
        "featurizations.  A noteworthy divergence: ridge regression on "
        "*log* targets over Universal Conjunction Encoding features is "
        "competitive with GB at this scale, which actually reinforces "
        "the paper's thesis that featurization quality, not model "
        "capacity, is the bottleneck.",
    ),
    "ablation-granularity": (
        "(Beyond the paper; quantifies Section 2.1.2's pointer to "
        "Woltmann et al. [31].)  Local models are only needed for "
        "sub-schemata where the System-R assumptions fail; a hybrid with "
        "one learned model per base table plus Selinger join composition "
        "should capture the intra-table share of the error at a fraction "
        "of the model count.",
        "CONFIRMED — the hybrid (6 models, cheap single-table labels) "
        "beats the histogram baseline on the median, and at the reduced "
        "training budget even beats the 31-model per-sub-schema ensemble "
        "whose join-labelled budget is split too thin.",
    ),
    "ablation-partitioning": (
        "(Section 3.2's histogram hint, made concrete.)  'One could also "
        "apply sophisticated partitioning techniques from the field of "
        "histograms' — equi-depth boundaries spend the per-attribute "
        "budget where the data lives.",
        "CONFIRMED in direction — at a tight budget (8 entries) the "
        "equi-depth layout edges out equal-width on the mean; at 32 "
        "entries the layouts converge, consistent with the paper's "
        "observation that 32 partitions already suffice at moderate "
        "skew.",
    ),
    "ext-groupby": (
        "(Section 6, outlined but not evaluated in the paper.)  The "
        "binary grouping vector composes with any QFT to estimate GROUP "
        "BY result sizes.",
        "FUNCTIONAL — the learned group-count estimator beats the "
        "histogram-backed distinct-product bound on the mean when "
        "grouping on high-cardinality attributes (where group counts are "
        "data-dependent); on trivially-bounded binary groupings the "
        "bound is already near-exact.",
    ),
    "ext-strings": (
        "(Section 6, outlined but not evaluated in the paper.)  "
        "Universal Conjunction Encoding 'naturally supports' prefix "
        "predicates via per-letter buckets.",
        "FUNCTIONAL — the dictionary-backed prefix selectivity estimate "
        "is near-exact at every bucket count.",
    ),
}

#: Section order (paper order, then ablations).
ORDER = ["fig1", "fig2", "fig3", "tab1", "tab2", "tab3", "tab4", "fig4",
         "tab5", "fig5", "tab6", "tab7",
         "ablation-partitions", "ablation-merge", "ablation-linear",
         "ablation-granularity", "ablation-partitioning",
         "ext-groupby", "ext-strings"]


def main() -> int:
    missing = [key for key in ORDER if not (RESULTS / f"{key}.md").exists()]
    if missing:
        raise SystemExit(
            f"missing results for {missing}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    parts = [HEADER]
    for key in ORDER:
        claim, verdict = VERDICTS[key]
        body = (RESULTS / f"{key}.md").read_text(encoding="utf-8").rstrip()
        parts.append("\n---\n")
        parts.append(body)
        parts.append(f"\n**Paper's claim.** {claim}\n")
        parts.append(f"**Verdict.** {verdict}\n")
    OUTPUT.write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
