"""Regenerates Table 7 (+ Section 5.7): QFT timing and model memory."""

from repro.experiments import tab7_time_memory


def test_tab7_featurization_time(benchmark, scale, record):
    result = benchmark.pedantic(tab7_time_memory.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    timing = {r["subject"]: r["value"] for r in result.rows
              if r["measure"] == "featurization"}
    memory = {r["subject"]: r["value"] for r in result.rows
              if r["measure"] == "memory"}

    # Time grows with QFT complexity and everything is sub-millisecond.
    assert timing["simple"] <= timing["conjunctive"] <= timing["complex"]
    assert all(t < 1_000 for t in timing.values())

    # GB is the smallest learned model, the NN the largest (Section 5.7).
    assert memory["GB"] < memory["NN"]
    assert memory["MSCN"] < memory["NN"]
