"""Regenerates Figure 2: GB estimation errors per QFT by #attributes."""

import numpy as np

from repro.experiments import fig2_by_attributes


def test_fig2_by_num_attributes(benchmark, scale, record):
    result = benchmark.pedantic(fig2_by_attributes.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = result.rows

    # Accuracy degrades with the attribute count: the median error at the
    # largest bucket exceeds the smallest bucket's, per QFT (the median is
    # the statistic that is stable at bench scale; q99 is tail-noisy).
    for qft in ("simple", "range", "conjunctive"):
        series = [r for r in rows if r["qft"] == qft]
        first, last = series[0], series[-1]
        assert last["median"] >= first["median"]

    # Universal Conjunction Encoding beats Singular Predicate Encoding in
    # aggregate mean error across the buckets.
    def total_mean(qft):
        return float(np.mean([r["mean"] for r in rows if r["qft"] == qft]))

    assert total_mean("conjunctive") <= total_mean("simple")
