"""Regenerates Table 3: effect of the per-attribute selectivity appendix."""

from repro.experiments import tab3_attr_selectivity


def test_tab3_attr_selectivity(benchmark, scale, record):
    result = benchmark.pedantic(tab3_attr_selectivity.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = result.rows
    assert len(rows) == 8  # {GB, NN} x {conj, comp} x {w/, w/o}

    # The paper finds mostly marginal differences; verify the ablation at
    # least does not catastrophically hurt the medians for GB.
    by_name = {r["model"]: r for r in rows}
    for short in ("conj", "comp"):
        with_sel = by_name[f"GB+{short} w/ attrSel"]["median"]
        without = by_name[f"GB+{short} w/o attrSel"]["median"]
        assert with_sel <= 3 * without
        assert without <= 3 * with_sel
