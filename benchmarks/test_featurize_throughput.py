"""Featurization throughput: scalar loop vs columnar batch pipeline.

Times every QFT's per-query ``featurize`` loop against the compile →
encode ``featurize_batch`` pipeline on the same workloads (see
``repro.bench``), asserts the two produce bitwise-identical matrices,
and records the speedups.  The same measurement backs the
``repro bench featurize`` CLI subcommand and the committed
``BENCH_featurize.json``.
"""

from __future__ import annotations

from repro.bench import run_featurize_bench
from repro.experiments.common import ExperimentResult


def test_featurize_throughput(scale, record):
    report = run_featurize_bench(rows=scale.forest_rows,
                                 queries=scale.featurize_queries,
                                 partitions=scale.partitions)
    rows = [
        {
            "qft": case["featurizer"],
            "workload": case["workload"],
            "queries": case["n_queries"],
            "scalar (s)": f"{case['scalar_seconds']:.3f}",
            "batch (s)": f"{case['batch_seconds']:.3f}",
            "speedup": f"{case['speedup']:.2f}x",
            "identical": case["identical"],
        }
        for case in report["cases"]
    ]
    record(ExperimentResult(
        experiment="featurize_throughput",
        paper_artifact="featurization cost (Section 5 'costs of the "
                       "query featurization')",
        rows=rows,
        notes="Batch featurization must match the scalar path bitwise; "
              "the speedup column is the scalar/batch runtime ratio.",
    ))
    assert report["all_identical"], "batch featurization diverged from scalar"
    assert report["min_speedup"] >= 1.0, (
        f"batch slower than scalar: min speedup {report['min_speedup']:.2f}x"
    )
