"""Regenerates Table 4: end-to-end plan work under three estimators."""

from repro.experiments import tab4_end_to_end


def test_tab4_end_to_end(benchmark, scale, record):
    result = benchmark.pedantic(tab4_end_to_end.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    work = {r["estimator"]: r["total work (tuples)"] for r in result.rows}

    # True cardinalities give C_out-optimal plans: nothing beats them.
    assert work["True cardinalities"] <= work["Postgres"]
    assert work["True cardinalities"] <= work["Our approach"]

    # The paper's observation: the learned estimator recovers most of the
    # gap — it stays within a modest factor of the optimum.
    assert work["Our approach"] <= 1.5 * work["True cardinalities"]
