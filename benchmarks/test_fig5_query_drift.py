"""Regenerates Figure 5: query drift (train <= 2 attrs, test >= 3)."""

import numpy as np

from repro.experiments import fig5_query_drift


def test_fig5_query_drift(benchmark, scale, record):
    result = benchmark.pedantic(fig5_query_drift.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = result.rows

    # Both in-distribution (1-2 attrs) and drifted (3+) rows exist for
    # every model x QFT combination.
    for model in ("GB", "NN"):
        for qft in ("simple", "range", "conjunctive", "complex"):
            combo = [r for r in rows if r["model"] == model and r["qft"] == qft]
            assert any(r["drifted"] for r in combo)
            assert any(not r["drifted"] for r in combo)

    # The paper's NN finding: the drift gap is smallest under the
    # data-driven QFTs ("the NN overfits during training, but less for
    # Limited Disjunction Encoding and Universal Conjunction Encoding").
    def drifted_mean(model, qfts):
        return float(np.mean([r["mean"] for r in rows
                              if r["model"] == model and r["drifted"]
                              and r["qft"] in qfts]))

    assert drifted_mean("NN", ("conjunctive", "complex")) <= \
        drifted_mean("NN", ("simple", "range"))
