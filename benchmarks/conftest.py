"""Benchmark configuration.

Each benchmark file regenerates one of the paper's tables/figures via
:mod:`repro.experiments` and records the result:

* the measured rows are printed as markdown (visible with ``-s`` or in
  captured output),
* a copy is written to ``benchmarks/results/<experiment>.md`` so
  EXPERIMENTS.md can be assembled from a benchmark run.

The scale is chosen by the ``REPRO_BENCH_SCALE`` environment variable:
``bench`` (default, minutes for the full suite), ``small``, or ``full``
(closest to the paper, substantially slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import FULL, SMALL
from repro.experiments.common import ExperimentResult, Scale

#: Default benchmark scale: small enough that the full suite runs in
#: tens of minutes on a laptop, large enough that the paper's shapes
#: (who wins, where the crossovers are) are stable.
BENCH = Scale(
    name="bench",
    forest_rows=10_000,
    train_queries=2_500,
    test_queries=1_000,
    imdb_title_rows=4_000,
    queries_per_subschema=300,
    gb_trees=100,
    nn_epochs=25,
    mscn_epochs=15,
)

_SCALES = {"bench": BENCH, "small": SMALL, "full": FULL}

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The benchmark scale selected via REPRO_BENCH_SCALE."""
    name = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


def _record(result: ExperimentResult) -> None:
    """Print an experiment result and persist it under benchmarks/results/."""
    text = result.markdown()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment}.md"
    path.write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def record():
    """Fixture handing benchmarks the result recorder."""
    return _record
