"""Regenerates Figure 3: GB estimation errors per QFT by #predicates."""

import numpy as np

from repro.experiments import fig3_by_predicates


def test_fig3_by_num_predicates(benchmark, scale, record):
    result = benchmark.pedantic(fig3_by_predicates.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = result.rows

    # All four QFTs produced per-bucket distributions.
    assert {r["qft"] for r in rows} == {"simple", "range", "conjunctive",
                                        "complex"}

    # Universal Conjunction Encoding is the most consistent across
    # predicate counts: its aggregate mean stays below Singular's.
    def total_mean(qft):
        return float(np.mean([r["mean"] for r in rows if r["qft"] == qft]))

    assert total_mean("conjunctive") <= total_mean("simple")
