"""Regenerates Table 5: GB + conj accuracy per feature-vector length."""

from repro.experiments import tab5_feature_length


def test_tab5_feature_length(benchmark, scale, record):
    result = benchmark.pedantic(tab5_feature_length.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = result.rows
    assert [r["entries"] for r in rows] == [8, 16, 32, 64, 256]

    # Feature-vector bytes grow monotonically with the entry count.
    sizes = [r["bytes"] for r in rows]
    assert sizes == sorted(sizes)

    # The paper's sweet-spot shape: some interior entry count is at least
    # as good (mean error) as the 256-entry extreme, where learnability
    # suffers at a fixed training budget.
    interior_best = min(r["mean"] for r in rows[:4])
    assert interior_best <= rows[-1]["mean"] * 1.25
