"""Regenerates Table 6: mean error vs. number of training queries."""

from repro.experiments import tab6_convergence


def test_tab6_convergence(benchmark, scale, record):
    result = benchmark.pedantic(tab6_convergence.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = result.rows

    gb_rows = [r for r in rows if r["model"] == "GB"]
    nn_rows = [r for r in rows if r["model"] == "NN"]
    assert len(gb_rows) == len(nn_rows) == 6

    # More training data helps: the largest budget beats the smallest for
    # GB under the data-driven QFT.
    assert gb_rows[-1]["conj"] <= gb_rows[0]["conj"]

    # Given the full budget, conj/comp beat simple for GB (the paper's
    # central convergence claim).
    final = gb_rows[-1]
    assert final["conj"] <= final["simple"]
    assert final["comp"] <= final["simple"]
