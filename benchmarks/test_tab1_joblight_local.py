"""Regenerates Table 1: JOB-light under local NN/GB × simple/range/conj."""

import numpy as np

from repro.experiments import tab1_joblight


def test_tab1_joblight_local(benchmark, scale, record):
    result = benchmark.pedantic(tab1_joblight.run, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = {r["model + QFT"]: r for r in result.rows}
    assert len(rows) == 6

    # The paper's dominant finding: GB medians beat NN medians overall.
    gb_median = np.mean([r["median"] for k, r in rows.items()
                         if k.startswith("GB")])
    nn_median = np.mean([r["median"] for k, r in rows.items()
                         if k.startswith("NN")])
    assert gb_median <= nn_median

    # "Overall, the estimates of GB + range are best.  This comes as no
    # surprise since JOB-light queries contain at most one point- or
    # range predicate per attribute."
    gb_means = {k: r["mean"] for k, r in rows.items() if k.startswith("GB")}
    assert min(gb_means, key=gb_means.get) == "GB + range"
