"""Ablation benchmarks beyond the paper's tables (see DESIGN.md §5)."""

from repro.experiments import ablations


def test_ablation_partition_convergence(benchmark, scale, record):
    result = benchmark.pedantic(ablations.run_partitions, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    rows = result.rows
    # Lemma 3.2: collisions vanish as the partition count grows.
    assert rows[-1]["collision rate"] <= rows[0]["collision rate"]
    # And the coarsest encoding is never the most accurate.
    assert rows[0]["mean"] >= min(r["mean"] for r in rows)


def test_ablation_merge_operator(benchmark, scale, record):
    result = benchmark.pedantic(ablations.run_merge, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    merges = {r["merge"]: r for r in result.rows}
    assert set(merges) == {"max", "sum"}
    # Both merges are viable featurizations; neither degenerates.
    assert merges["max"]["median"] < 10
    assert merges["sum"]["median"] < 10


def test_ablation_model_granularity(benchmark, scale, record):
    result = benchmark.pedantic(ablations.run_model_granularity,
                                args=(scale,), rounds=1, iterations=1)
    record(result)
    rows = {r["estimator"]: r for r in result.rows}
    # The hybrid needs only n models (vs up to 2^n - 1 for the ensemble).
    assert rows["hybrid (per base table)"]["models"] < \
        rows["local (per sub-schema)"]["models"]
    # Learned selections keep the hybrid's median at least competitive
    # with the pure histogram baseline.
    assert rows["hybrid (per base table)"]["median"] <= \
        1.3 * rows["Postgres (no models)"]["median"]


def test_ablation_linear_baselines(benchmark, scale, record):
    result = benchmark.pedantic(ablations.run_linear_baselines, args=(scale,),
                                rounds=1, iterations=1)
    record(result)
    by_combo = {(r["qft"], r["model"]): r for r in result.rows}
    # Section 2.2's dismissal: the naive linear setups are worse than GB
    # "by a significant factor" under both featurizations.
    for qft in ("simple", "conjunctive"):
        gb_mean = by_combo[(qft, "GB")]["mean"]
        assert gb_mean < by_combo[(qft, "Ridge (raw targets)")]["mean"]
        assert gb_mean < by_combo[(qft, "Linear SVR (log targets)")]["mean"]


def test_ablation_partitioning_scheme(benchmark, scale, record):
    result = benchmark.pedantic(ablations.run_partitioning_scheme,
                                args=(scale,), rounds=1, iterations=1)
    record(result)
    by_combo = {(r["entries"], r["scheme"]): r for r in result.rows}
    entries = sorted({e for e, _ in by_combo})
    # At the tight budget, equi-depth is at least competitive with
    # equal-width on this skewed dataset.
    tight = entries[0]
    assert by_combo[(tight, "equi-depth")]["mean"] <= \
        1.25 * by_combo[(tight, "equal-width")]["mean"]
