"""Tests for the concurrency band (RPR401-RPR405).

Single-module behaviour goes through ``lint_text``; the cross-module
lock-order cycle — the case that needs the ProjectIndex — builds a
small package tree on disk and runs the full engine over it.
"""

import textwrap
from pathlib import Path

from repro.lint import LintConfig, lint_text
from repro.lint.engine import run

CONCURRENCY = LintConfig(select=frozenset(
    {"RPR401", "RPR402", "RPR403", "RPR404", "RPR405"}))


def codes(source, *, module_name="repro.serve.mod"):
    result = lint_text(textwrap.dedent(source), module_name=module_name,
                       config=CONCURRENCY)
    return [f.code for f in result.findings]


def write_tree(root: Path, files: dict) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def tree_codes(tmp_path, files, config=CONCURRENCY):
    write_tree(tmp_path, files)
    result = run([tmp_path / "repro"], config)
    return [(f.path.rsplit("/", 1)[-1], f.code) for f in result.findings]


PKG = {
    "repro/__init__.py": '"""pkg."""\n',
    "repro/serve/__init__.py": '"""pkg."""\n',
}


class TestUnguardedSharedStateRPR401:
    def test_unlocked_write_to_guarded_attr_is_flagged(self):
        assert codes("""\
            import threading


            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    self._count = 0
            """) == ["RPR401"]

    def test_all_writes_locked_is_clean(self):
        assert codes("""\
            import threading


            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    with self._lock:
                        self._count = 0
            """) == []

    def test_init_writes_are_exempt(self):
        # __init__ happens before the object is shared; the unlocked
        # assignment there is what *establishes* the guarded attribute.
        assert codes("""\
            import threading


            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = {}

                def put(self, key, value):
                    with self._lock:
                        self._state[key] = value
            """) == []

    def test_locked_read_establishes_guardedness(self):
        # No locked *write* exists, but the locked read in get() still
        # marks _closed as guarded — the serving-stack shutdown race.
        assert codes("""\
            import threading


            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False

                def get(self):
                    with self._lock:
                        if self._closed:
                            raise RuntimeError("closed")

                def close(self):
                    self._closed = True
            """) == ["RPR401"]

    def test_lockless_class_is_ignored(self):
        assert codes("""\
            class Plain:
                def set(self, value):
                    self._value = value
            """) == []


class TestLockOrderCycleRPR402:
    def test_opposite_orders_in_one_module_are_flagged(self):
        found = codes("""\
            import threading


            class Pair:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def ab(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def ba(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
            """)
        assert found == ["RPR402", "RPR402"]

    def test_consistent_order_is_clean(self):
        assert codes("""\
            import threading


            class Pair:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def ab(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def also_ab(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
            """) == []

    def test_reacquiring_a_plain_lock_is_flagged(self):
        assert codes("""\
            import threading


            class Once:
                def __init__(self):
                    self._lock = threading.Lock()

                def recurse(self):
                    with self._lock:
                        with self._lock:
                            pass
            """) == ["RPR402"]

    def test_reacquiring_an_rlock_is_clean(self):
        assert codes("""\
            import threading


            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def recurse(self):
                    with self._lock:
                        with self._lock:
                            pass
            """) == []

    def test_cross_module_cycle_through_a_call(self, tmp_path):
        # locks_a holds A while *calling into* locks_b (which takes B),
        # and elsewhere takes B then A directly: a cycle only the
        # project-wide graph can see.  Both edges anchor in locks_a,
        # whose import closure covers every participant.
        found = tree_codes(tmp_path, {
            **PKG,
            "repro/serve/locks_b.py": """\
                import threading

                LOCK_B = threading.Lock()


                def take_b():
                    with LOCK_B:
                        pass
                """,
            "repro/serve/locks_a.py": """\
                import threading

                from repro.serve import locks_b

                LOCK_A = threading.Lock()


                def a_then_b():
                    with LOCK_A:
                        locks_b.take_b()


                def b_then_a():
                    with locks_b.LOCK_B:
                        with LOCK_A:
                            pass
                """,
        })
        assert found == [("locks_a.py", "RPR402"),
                         ("locks_a.py", "RPR402")]

    def test_fixing_the_callee_invalidates_the_cached_cycle(self, tmp_path):
        # ``from repro.serve import locks_b`` must create an import
        # edge to the submodule itself: editing only locks_b has to
        # dirty locks_a's cached RPR402 findings on the warm run.
        files = {
            **PKG,
            "repro/serve/locks_b.py": """\
                import threading

                LOCK_B = threading.Lock()


                def take_b():
                    with LOCK_B:
                        pass
                """,
            "repro/serve/locks_a.py": """\
                import threading

                from repro.serve import locks_b

                LOCK_A = threading.Lock()


                def a_then_b():
                    with LOCK_A:
                        locks_b.take_b()


                def b_then_a():
                    with locks_b.LOCK_B:
                        with LOCK_A:
                            pass
                """,
        }
        write_tree(tmp_path, files)
        cache = tmp_path / "cache.json"
        cold = run([tmp_path / "repro"], CONCURRENCY, cache_path=cache)
        assert {f.code for f in cold.findings} == {"RPR402"}
        (tmp_path / "repro/serve/locks_b.py").write_text(textwrap.dedent(
            """\
            import threading

            LOCK_B = threading.Lock()


            def take_b():
                pass
            """), encoding="utf-8")
        warm = run([tmp_path / "repro"], CONCURRENCY, cache_path=cache)
        assert warm.findings == ()
        reanalyzed = {p.rsplit("/", 1)[-1] for p in warm.files_reanalyzed}
        assert "locks_a.py" in reanalyzed

    def test_cross_module_consistent_order_is_clean(self, tmp_path):
        assert tree_codes(tmp_path, {
            **PKG,
            "repro/serve/locks_b.py": """\
                import threading

                LOCK_B = threading.Lock()


                def take_b():
                    with LOCK_B:
                        pass
                """,
            "repro/serve/locks_a.py": """\
                import threading

                from repro.serve import locks_b

                LOCK_A = threading.Lock()


                def a_then_b():
                    with LOCK_A:
                        locks_b.take_b()
                """,
        }) == []


class TestBlockingWhileLockedRPR403:
    def test_sleep_under_lock_is_flagged(self):
        assert codes("""\
            import threading
            import time


            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def poll(self):
                    with self._lock:
                        time.sleep(0.1)
            """) == ["RPR403"]

    def test_sleep_outside_lock_is_clean(self):
        assert codes("""\
            import threading
            import time


            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def poll(self):
                    with self._lock:
                        pass
                    time.sleep(0.1)
            """) == []

    def test_join_under_lock_is_flagged(self):
        assert codes("""\
            import threading


            class Owner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._worker = threading.Thread(target=print)

                def close(self):
                    with self._lock:
                        self._worker.join()
            """) == ["RPR403"]

    def test_config_extends_the_blocking_catalogue(self):
        source = textwrap.dedent("""\
            import threading

            import redis


            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def fetch(self, key):
                    with self._lock:
                        return redis.fetch_blocking(key)
            """)
        plain = lint_text(source, module_name="repro.serve.mod",
                          config=CONCURRENCY)
        extended = lint_text(source, module_name="repro.serve.mod",
                             config=LintConfig(
                                 select=frozenset({"RPR403"}),
                                 blocking_calls=("redis.fetch_blocking",)))
        assert [f.code for f in plain.findings] == []
        assert [f.code for f in extended.findings] == ["RPR403"]


class TestThreadUnsafeLazyInitRPR404:
    def test_split_lock_regions_are_flagged(self):
        assert codes("""\
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._handles = {}

                def load(self, key):
                    with self._lock:
                        handle = self._handles.get(key)
                    if handle is None:
                        handle = object()
                        with self._lock:
                            self._handles[key] = handle
                    return handle
            """) == ["RPR404"]

    def test_single_region_is_clean(self):
        assert codes("""\
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._handles = {}

                def load(self, key):
                    with self._lock:
                        handle = self._handles.get(key)
                        if handle is None:
                            handle = object()
                            self._handles[key] = handle
                    return handle
            """) == []

    def test_double_checked_locking_is_clean(self):
        # The inner re-check shares a lock region with the write, which
        # is exactly what makes the pattern safe.
        assert codes("""\
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._handles = {}

                def load(self, key):
                    handle = self._handles.get(key)
                    if handle is None:
                        with self._lock:
                            handle = self._handles.get(key)
                            if handle is None:
                                handle = object()
                                self._handles[key] = handle
                    return handle
            """) == []

    def test_pragma_suppresses_the_finding(self):
        result = lint_text(textwrap.dedent("""\
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._handles = {}

                def load(self, key):
                    with self._lock:
                        handle = self._handles.get(key)
                    if handle is None:  # repro: ignore[RPR404]
                        handle = object()
                        with self._lock:
                            self._handles.setdefault(key, handle)
                    return handle
            """), module_name="repro.serve.mod", config=CONCURRENCY)
        assert [f.code for f in result.findings] == []
        assert [f.code for f in result.suppressed] == ["RPR404"]


class TestDaemonThreadDrainRPR405:
    def test_unjoined_daemon_thread_is_flagged(self):
        assert codes("""\
            import threading


            def spawn():
                worker = threading.Thread(target=print, daemon=True)
                worker.start()
            """) == ["RPR405"]

    def test_joined_daemon_thread_is_clean(self):
        assert codes("""\
            import threading


            def spawn():
                worker = threading.Thread(target=print, daemon=True)
                worker.start()
                worker.join()
            """) == []

    def test_self_bound_daemon_joined_in_another_method_is_clean(self):
        assert codes("""\
            import threading


            class Batcher:
                def start(self):
                    self._worker = threading.Thread(target=print,
                                                    daemon=True)
                    self._worker.start()

                def close(self):
                    self._worker.join()
            """) == []

    def test_self_bound_daemon_never_joined_is_flagged(self):
        assert codes("""\
            import threading


            class Batcher:
                def start(self):
                    self._worker = threading.Thread(target=print,
                                                    daemon=True)
                    self._worker.start()
            """) == ["RPR405"]

    def test_unbound_daemon_start_is_flagged(self):
        assert codes("""\
            import threading


            def fire_and_forget():
                threading.Thread(target=print, daemon=True).start()
            """) == ["RPR405"]

    def test_non_daemon_thread_is_clean(self):
        # A non-daemon thread blocks interpreter exit until it finishes;
        # there is no silent mid-operation kill to warn about.
        assert codes("""\
            import threading


            def spawn():
                worker = threading.Thread(target=print)
                worker.start()
            """) == []
