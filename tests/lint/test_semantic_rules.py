"""Tests for the interprocedural rules (RPR106/107/203/204).

Single-module behaviour goes through ``lint_text``; the cross-module
cases — the reason the semantic layer exists — build small package
trees on disk and run the full engine over them.
"""

import textwrap
from pathlib import Path

from repro.lint import LintConfig, lint_text
from repro.lint.engine import run

SEMANTIC = LintConfig(select=frozenset(
    {"RPR106", "RPR107", "RPR203", "RPR204"}))


def codes(source, *, module_name="repro.featurize.mod"):
    result = lint_text(textwrap.dedent(source), module_name=module_name,
                       config=SEMANTIC)
    return [f.code for f in result.findings]


def write_tree(root: Path, files: dict) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def tree_codes(tmp_path, files, config=SEMANTIC):
    write_tree(tmp_path, files)
    result = run([tmp_path / "repro"], config)
    return [(f.path.rsplit("/", 1)[-1], f.code) for f in result.findings]


PKG = {
    "repro/__init__.py": '"""pkg."""\n',
    "repro/featurize/__init__.py": '"""pkg."""\n',
}


class TestGeneratorThreadingRPR203:
    def test_call_without_generator_is_flagged(self):
        assert codes("""\
            import numpy as np

            def jitter(values, rng):
                return values + rng.normal(size=values.shape)

            def pipeline(values):
                return jitter(values)
            """) == ["RPR203"]

    def test_threading_the_generator_is_clean(self):
        assert codes("""\
            import numpy as np

            def jitter(values, rng):
                return values + rng.normal(size=values.shape)

            def pipeline(values, rng):
                return jitter(values, rng)
            """) == []

    def test_seed_parameter_with_internal_rng_is_clean(self):
        # A `seed: int` API is deterministic by construction; requiring
        # a Generator there would fight the codebase's own convention.
        assert codes("""\
            import numpy as np

            def sample(n, seed):
                rng = np.random.default_rng(seed)
                return rng.normal(size=n)

            def pipeline(n):
                return sample(n, 17)
            """) == []

    def test_transitive_requirement_propagates(self):
        # pipeline -> middle -> jitter: middle forwards its rng into a
        # drawing callee, so calling middle bare is as wrong as calling
        # jitter bare.
        assert codes("""\
            import numpy as np

            def jitter(values, rng):
                return values + rng.normal(size=values.shape)

            def middle(values, rng):
                return jitter(values, rng)

            def pipeline(values):
                return middle(values)
            """) == ["RPR203"]

    def test_cross_module_call_is_flagged(self, tmp_path):
        found = tree_codes(tmp_path, {
            **PKG,
            "repro/featurize/noise.py": """\
                import numpy as np

                def jitter(values, rng):
                    return values + rng.normal(size=values.shape)
                """,
            "repro/featurize/pipe.py": """\
                from repro.featurize.noise import jitter

                def pipeline(values):
                    return jitter(values)
                """,
        })
        assert found == [("pipe.py", "RPR203")]


class TestFeatureDtypeDriftRPR106:
    def test_direct_float32_return_is_flagged(self):
        assert codes("""\
            import numpy as np

            class Thing:
                def featurize(self, query):
                    return np.zeros(8, dtype=np.float32)
            """) == ["RPR106"]

    def test_float64_is_clean(self):
        assert codes("""\
            import numpy as np

            class Thing:
                def featurize(self, query):
                    return np.zeros(8)
            """) == []

    def test_outside_featurize_package_is_ignored(self):
        assert codes("""\
            import numpy as np

            class Thing:
                def featurize(self, query):
                    return np.zeros(8, dtype=np.float32)
            """, module_name="repro.models.mod") == []

    def test_drift_through_cross_module_helper(self, tmp_path):
        # The headline case: the narrow dtype is created two modules
        # away from the surface that emits it.
        found = tree_codes(tmp_path, {
            **PKG,
            "repro/featurize/alloc.py": """\
                import numpy as np

                def make_vec(n):
                    return np.zeros(n, dtype=np.float32)
                """,
            "repro/featurize/mid.py": """\
                from repro.featurize.alloc import make_vec

                def build(n):
                    return make_vec(n)
                """,
            "repro/featurize/surface.py": """\
                from repro.featurize.mid import build

                class Thing:
                    def featurize(self, query):
                        return build(8)
                """,
        })
        assert found == [("surface.py", "RPR106")]

    def test_astype_float32_is_flagged(self):
        assert codes("""\
            import numpy as np

            class Thing:
                def featurize(self, query):
                    return np.ones(8).astype(np.float32)
            """) == ["RPR106"]


class TestFeatureShapeContractRPR107:
    def test_batch_surface_returning_vector_is_flagged(self):
        assert codes("""\
            import numpy as np

            class Thing:
                def featurize_batch(self, queries):
                    return np.zeros(8)
            """) == ["RPR107"]

    def test_batch_surface_returning_matrix_is_clean(self):
        assert codes("""\
            import numpy as np

            class Thing:
                def featurize_batch(self, queries):
                    return np.zeros((4, 8))
            """) == []

    def test_scalar_surface_returning_matrix_is_flagged(self):
        assert codes("""\
            import numpy as np

            class Thing:
                def featurize(self, query):
                    return np.zeros((1, 8))
            """) == ["RPR107"]

    def test_unknown_rank_is_conservative(self):
        assert codes("""\
            import numpy as np

            class Thing:
                def featurize_batch(self, queries):
                    return np.zeros(self.shape)
            """) == []

    def test_rank_through_helper(self, tmp_path):
        found = tree_codes(tmp_path, {
            **PKG,
            "repro/featurize/alloc.py": """\
                import numpy as np

                def make_vec(n):
                    return np.zeros(8)
                """,
            "repro/featurize/surface.py": """\
                from repro.featurize.alloc import make_vec

                class Thing:
                    def featurize_batch(self, queries):
                        return make_vec(8)
                """,
        })
        assert found == [("surface.py", "RPR107")]


class TestUnorderedIterationRPR204:
    def test_set_literal_iteration_is_flagged(self):
        assert codes("""\
            def emit(columns):
                seen = {c for c in columns}
                out = []
                for column in seen:
                    out.append(column)
                return out
            """) == ["RPR204"]

    def test_sorted_set_is_clean(self):
        assert codes("""\
            def emit(columns):
                seen = {c for c in columns}
                out = []
                for column in sorted(seen):
                    out.append(column)
                return out
            """) == []

    def test_outside_emission_modules_is_ignored(self):
        assert codes("""\
            def emit(columns):
                seen = set(columns)
                return [c for c in seen]
            """, module_name="repro.models.mod") == []

    def test_cross_module_set_returning_helper(self, tmp_path):
        found = tree_codes(tmp_path, {
            **PKG,
            "repro/featurize/cols.py": """\
                def collect(exprs):
                    return {e.column for e in exprs}
                """,
            "repro/featurize/surface.py": """\
                from repro.featurize.cols import collect

                def emit(exprs):
                    out = []
                    for column in collect(exprs):
                        out.append(column)
                    return out
                """,
        })
        assert found == [("surface.py", "RPR204")]

    def test_transitively_set_returning_helper(self, tmp_path):
        found = tree_codes(tmp_path, {
            **PKG,
            "repro/featurize/cols.py": """\
                def collect(exprs):
                    return {e.column for e in exprs}

                def gather(exprs):
                    return collect(exprs)
                """,
            "repro/featurize/surface.py": """\
                from repro.featurize.cols import gather

                def emit(exprs):
                    return [column for column in gather(exprs)]
                """,
        })
        assert found == [("surface.py", "RPR204")]


class TestSemanticPragmas:
    def test_pragma_suppresses_semantic_finding(self):
        result = lint_text(textwrap.dedent("""\
            import numpy as np

            class Thing:
                def featurize(self, query):
                    return np.zeros(8, dtype=np.float32)  # repro: ignore[RPR106]
            """), module_name="repro.featurize.mod", config=SEMANTIC)
        assert [f.code for f in result.findings] == []
        assert [f.code for f in result.suppressed] == ["RPR106"]
