"""SARIF reporter tests: schema validity and text-reporter round-trip."""

import io
import json
import textwrap

import jsonschema
import pytest

from repro.lint import lint_text
from repro.lint.reporters import (
    Report,
    render_sarif,
    render_text,
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
)

DIRTY = textwrap.dedent("""\
    import numpy as np

    __all__ = ["f"]


    def f(x=[]):
        \"\"\"Misbehave.\"\"\"
        np.random.seed(0)
        if x == 0.5:
            return None
        return x
    """)

#: The load-bearing subset of the SARIF 2.1.0 schema: everything the
#: reporter emits, with the structural constraints GitHub code scanning
#: actually enforces (required members, types, minimum array sizes).
SARIF_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "helpUri": {
                                                    "type": "string"},
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning",
                                             "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation"],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


@pytest.fixture()
def report():
    result = lint_text(DIRTY, path="pkg/dirty.py")
    assert len(result.findings) >= 3
    return Report(new=list(result.findings),
                  files_scanned=1)


def render(report):
    stream = io.StringIO()
    render_sarif(report, stream)
    return json.loads(stream.getvalue())


def test_sarif_validates_against_schema(report):
    payload = render(report)
    jsonschema.validate(payload, SARIF_SCHEMA)
    assert payload["$schema"] == SARIF_SCHEMA_URI
    assert payload["version"] == SARIF_VERSION


def test_empty_report_still_validates():
    payload = render(Report(new=[]))
    jsonschema.validate(payload, SARIF_SCHEMA)
    assert payload["runs"][0]["results"] == []


def test_every_text_finding_round_trips(report):
    """Each text-reporter line maps onto exactly one SARIF result."""
    stream = io.StringIO()
    render_text(report, stream)
    text_lines = [line for line in stream.getvalue().splitlines()
                  if ": RPR" in line]
    results = render(report)["runs"][0]["results"]
    assert len(results) == len(text_lines) == len(report.new)
    for finding, result in zip(report.new, results):
        assert result["ruleId"] == finding.code
        assert result["message"]["text"] == finding.message
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == finding.path
        assert location["region"]["startLine"] == finding.line
        assert location["region"]["startColumn"] == finding.col
        rebuilt = (f"{location['artifactLocation']['uri']}:"
                   f"{location['region']['startLine']}:"
                   f"{location['region']['startColumn']}: "
                   f"{result['ruleId']} {result['message']['text']}")
        assert rebuilt in text_lines


def test_rule_index_points_into_catalogue(report):
    payload = render(report)
    rules = payload["runs"][0]["tool"]["driver"]["rules"]
    for result in payload["runs"][0]["results"]:
        index = result["ruleIndex"]
        assert rules[index]["id"] == result["ruleId"]


def test_rule_catalogue_carries_full_metadata():
    """Every rule entry has the help URI and a real fullDescription."""
    rules = render(Report(new=[]))["runs"][0]["tool"]["driver"]["rules"]
    assert len(rules) >= 26
    for entry in rules:
        assert entry["helpUri"].startswith("docs/lint_rules.md#")
        assert entry["helpUri"].endswith(entry["id"].lower())
        assert entry["fullDescription"]["text"].strip()
        assert entry["fullDescription"]["text"] != \
            entry["shortDescription"]["text"]
