"""Tests for the numeric abstract-interpretation band (RPR501-505).

Covers the lattice primitives directly (dtype promotion, narrowing
classification, value joins, interval widening termination), each
rule's positive and negative fixtures end to end through
:func:`lint_text`, and the cache round-trip of the numeric facts.
"""

import ast
import math
import textwrap

from repro.lint.dataflow import (
    NumericAnalysis,
    NumState,
    NumValue,
    attach_numeric_facts,
    build_cfg,
    dtype_range,
    is_narrowing,
    iter_op_states,
    join_values,
    promote,
    solve,
)
from repro.lint.engine import lint_text
from repro.lint.semantic.facts import ModuleFacts, extract_module_facts

INF = math.inf


def numeric_codes(source, module_name="snippet"):
    """RPR5xx finding codes (with lines) for a dedented snippet."""
    result = lint_text(textwrap.dedent(source), module_name=module_name)
    return sorted((f.code, f.line) for f in result.findings
                  if f.code.startswith("RPR5"))


def facts_for(source, module_name="snippet"):
    tree = ast.parse(textwrap.dedent(source))
    facts = extract_module_facts(tree, path=f"{module_name}.py",
                                 module_name=module_name)
    attach_numeric_facts(facts, tree)
    return facts


class TestDtypeLattice:
    def test_promotion_widens_within_a_kind(self):
        assert promote("int32", "int64") == "int64"
        assert promote("float32", "float64") == "float64"
        assert promote("uint8", "uint16") == "uint16"

    def test_promotion_crosses_kinds_upward(self):
        assert promote("bool_", "int32") == "int32"
        assert promote("int64", "float32") in ("float32", "float64")
        assert promote("float64", "int8") == "float64"

    def test_mixed_signedness_needs_a_wider_signed_type(self):
        result = promote("uint32", "int32")
        assert result in ("int64", "float64")

    def test_unknown_dtype_is_absorbing(self):
        assert promote(None, "int32") is None
        assert promote("int32", None) is None

    def test_narrowing_is_range_containment_not_bit_width(self):
        assert is_narrowing("int64", "uint8")
        assert is_narrowing("int64", "int32")
        assert not is_narrowing("int32", "int64")
        assert not is_narrowing("uint8", "int64")
        # Same width, different sign: both directions lose values.
        assert is_narrowing("int8", "uint8")
        assert is_narrowing("uint8", "int8")

    def test_float_narrowing_is_mantissa_loss(self):
        assert is_narrowing("float64", "float32")
        assert not is_narrowing("float32", "float64")

    def test_cross_kind_casts_are_exempt(self):
        assert not is_narrowing("float64", "int32")
        assert not is_narrowing("int64", "float32")

    def test_dtype_range_bounds(self):
        assert dtype_range("uint8") == (0, 255)
        assert dtype_range("int8") == (-128, 127)
        lo, hi = dtype_range("float32")
        assert lo == -INF and hi == INF


class TestJoinValues:
    def test_join_hulls_intervals(self):
        a = NumValue(kind="scalar", dtype="int64", lo=0, hi=10)
        b = NumValue(kind="scalar", dtype="int64", lo=5, hi=20)
        joined = join_values(a, b)
        assert (joined.lo, joined.hi) == (0, 20)
        assert joined.dtype == "int64"

    def test_join_of_different_dtypes_forgets_the_dtype(self):
        a = NumValue(kind="array", dtype="int32", shape=(4,))
        b = NumValue(kind="array", dtype="float64", shape=(4,))
        assert join_values(a, b).dtype is None

    def test_join_keeps_agreeing_dims_and_wildcards_the_rest(self):
        a = NumValue(kind="array", dtype="f8", shape=(3, 8))
        b = NumValue(kind="array", dtype="f8", shape=(5, 8))
        assert join_values(a, b).shape == ("?", 8)

    def test_join_of_different_ranks_forgets_the_shape(self):
        a = NumValue(kind="array", dtype="f8", shape=(3,))
        b = NumValue(kind="array", dtype="f8", shape=(3, 4))
        assert join_values(a, b).shape is None

    def test_maybe_empty_taints_the_join(self):
        a = NumValue(kind="array", dtype="f8", shape=(3,))
        b = NumValue(kind="array", dtype="f8", shape=("?",),
                     maybe_empty=True)
        assert join_values(a, b).maybe_empty


class TestWideningTermination:
    def solve_fn(self, source):
        tree = ast.parse(textwrap.dedent(source))
        fn = next(node for node in ast.walk(tree)
                  if isinstance(node, ast.FunctionDef))
        cfg = build_cfg(fn)
        analysis = NumericAnalysis(fn)
        return fn, cfg, analysis, solve(cfg, analysis)

    def value_at_return(self, source, name):
        fn, cfg, analysis, solution = self.solve_fn(source)
        for op, state in iter_op_states(cfg, analysis, solution):
            if op.kind == "stmt" and isinstance(op.node, ast.Return):
                return state.get(name)
        raise AssertionError("return op not reached")

    def test_counting_loop_terminates_and_widens_upward(self):
        # Without widening the interval [0,0], [0,1], [0,2], ... climbs
        # forever; the per-name widening counter must cut it to +inf
        # within the solver's pass budget.
        total = self.value_at_return("""\
            def f(n):
                total = 0
                for i in range(n):
                    total = total + 1
                return total
            """, "total")
        assert total.lo == 0
        assert total.hi == INF

    def test_widening_preserves_the_stable_bound(self):
        # The lower bound never changes, so widening must only blow
        # out the climbing end, not both.
        x = self.value_at_return("""\
            def f(n):
                x = 100
                while n:
                    x = x - 3
                return x
            """, "x")
        assert x.hi == 100
        assert x.lo == -INF

    def test_nested_loops_converge(self):
        fn, cfg, analysis, solution = self.solve_fn("""\
            def f(n, m):
                acc = 0
                for i in range(n):
                    for j in range(m):
                        acc = acc + i * j
                return acc
            """)
        assert solution.block_in  # fixed point reached, no blow-up


class TestSilentDtypeNarrowing:
    def test_unbounded_narrowing_cast_fires(self):
        assert numeric_codes("""\
            import numpy as np

            def f(ids):
                wide = np.asarray(ids, dtype=np.int64)
                return wide.astype(np.uint8)
            """) == [("RPR501", 5)]

    def test_provably_in_range_cast_is_silent(self):
        assert numeric_codes("""\
            import numpy as np

            def f():
                codes = np.zeros((4, 4), dtype=np.int64)
                return codes.astype(np.uint8)
            """) == []

    def test_bound_guard_suppresses(self):
        assert numeric_codes("""\
            import numpy as np

            def f(vals):
                wide = np.asarray(vals, dtype=np.int64)
                if wide.max() > 255:
                    raise ValueError("out of range")
                return wide.astype(np.uint8)
            """) == []

    def test_float_to_int_truncation_is_exempt(self):
        assert numeric_codes("""\
            import numpy as np

            def f(x):
                vals = np.asarray(x, dtype=np.float64)
                return vals.astype(np.int32)
            """) == []


class TestFloatPrecisionDrift:
    KERNEL = "repro.featurize.fixture"
    MIXED = """\
        import numpy as np

        def f(a32, b):
            a = np.asarray(a32, dtype=np.float32)
            c = np.asarray(b, dtype=np.float64)
            return a * c
        """

    def test_mixed_float_arithmetic_fires_in_kernel_modules(self):
        assert numeric_codes(self.MIXED, module_name=self.KERNEL) == \
            [("RPR502", 6)]

    def test_rule_is_scoped_to_the_kernel_prefixes(self):
        assert numeric_codes(self.MIXED, module_name="snippet") == []

    def test_uniform_precision_is_silent(self):
        assert numeric_codes("""\
            import numpy as np

            def f(a, b):
                x = np.asarray(a, dtype=np.float64)
                y = np.asarray(b, dtype=np.float64)
                return x * y
            """, module_name=self.KERNEL) == []


class TestShapeContractViolation:
    def test_incompatible_broadcast_fires(self):
        assert numeric_codes("""\
            import numpy as np

            def f():
                a = np.zeros((3,))
                b = np.zeros((4,))
                return a + b
            """) == [("RPR503", 6)]

    def test_broadcastable_shapes_are_silent(self):
        assert numeric_codes("""\
            import numpy as np

            def f():
                a = np.zeros((3, 4))
                b = np.zeros((4,))
                row = np.zeros((1, 4))
                return a + b + row
            """) == []

    def test_unknown_shapes_never_fire(self):
        assert numeric_codes("""\
            import numpy as np

            def f(a, b):
                return a + b
            """) == []

    def test_concatenate_rank_mismatch_fires(self):
        assert numeric_codes("""\
            import numpy as np

            def f():
                a = np.zeros((3, 4))
                b = np.zeros((4,))
                return np.concatenate([a, b])
            """) == [("RPR503", 6)]


class TestUnsafeIndexDtype:
    def test_unbounded_small_index_fires(self):
        assert numeric_codes("""\
            import numpy as np

            def f(table, rows):
                idx = np.asarray(rows, dtype=np.int32)
                return table[idx]
            """) == [("RPR504", 5)]

    def test_provably_bounded_index_is_silent(self):
        assert numeric_codes("""\
            import numpy as np

            def f(table):
                idx = np.zeros((8,), dtype=np.int32)
                idx = idx + 1000
                return table[idx]
            """) == []

    def test_int64_index_is_silent(self):
        assert numeric_codes("""\
            import numpy as np

            def f(table, rows):
                idx = np.asarray(rows, dtype=np.int64)
                return table[idx]
            """) == []


class TestEmptyArrayReduction:
    def test_reduction_over_mask_selection_fires(self):
        assert numeric_codes("""\
            import numpy as np

            def f(x: np.ndarray):
                pos = x[x > 0]
                return float(pos.min())
            """) == [("RPR505", 5)]

    def test_size_check_suppresses(self):
        assert numeric_codes("""\
            import numpy as np

            def f(x: np.ndarray):
                pos = x[x > 0]
                if pos.size == 0:
                    return 0.0
                return float(pos.min())
            """) == []

    def test_known_nonempty_operand_is_silent(self):
        assert numeric_codes("""\
            import numpy as np

            def f():
                x = np.ones((8,))
                return float(x.min())
            """) == []

    def test_sum_of_empty_is_well_defined_and_silent(self):
        assert numeric_codes("""\
            import numpy as np

            def f(x: np.ndarray):
                pos = x[x > 0]
                return float(pos.sum())
            """) == []


class TestFactsAndCacheRoundTrip:
    SOURCE = """\
        import numpy as np

        def f(ids):
            wide = np.asarray(ids, dtype=np.int64)
            return wide.astype(np.uint8)

        def g():
            a = np.zeros((3,))
            b = np.zeros((4,))
            return a + b
        """

    def test_numeric_facts_are_attached_per_function(self):
        facts = facts_for(self.SOURCE)
        by_name = {fn.name: fn for fn in facts.functions}
        assert [c.dst_dtype for c in by_name["f"].narrowing_casts] == \
            ["uint8"]
        assert not by_name["f"].narrowing_casts[0].provable
        assert len(by_name["g"].shape_mismatches) == 1

    def test_facts_survive_the_cache_round_trip(self):
        facts = facts_for(self.SOURCE)
        clone = ModuleFacts.from_dict(facts.to_dict())
        for original, restored in zip(facts.functions, clone.functions):
            assert restored.narrowing_casts == original.narrowing_casts
            assert restored.shape_mismatches == original.shape_mismatches
            assert restored.small_indices == original.small_indices
            assert restored.empty_reductions == original.empty_reductions
            assert restored.mixed_precision == original.mixed_precision

    def test_cast_interval_refines_the_return_fact(self):
        # The syntactic pass sees only ``wide.astype(...)``; the lattice
        # replay fills in the concrete dtype and rank.
        facts = facts_for("""\
            import numpy as np

            def f():
                codes = np.zeros((4, 4), dtype=np.int64)
                return codes.astype(np.uint8)
            """)
        ret = facts.functions[0].returns[0]
        assert (ret.dtype, ret.rank) == ("uint8", 2)
