"""Tests for the incremental cache and the parse-stage fan-out."""

import json
import textwrap
from pathlib import Path

from repro.lint import LintConfig
from repro.lint.cache import CacheEntry, LintCache, cache_meta_key
from repro.lint.engine import run
from repro.lint.findings import Finding

DIRTY = textwrap.dedent("""\
    import numpy as np

    __all__ = ["f"]


    def f(x=[]):
        \"\"\"Misbehave.\"\"\"
        np.random.seed(0)
        return x
    """)


def write_files(root: Path, count: int) -> None:
    for i in range(count):
        (root / f"mod{i:02d}.py").write_text(DIRTY, encoding="utf-8")


class TestWarmRuns:
    def test_warm_run_reuses_everything(self, tmp_path):
        write_files(tmp_path, 4)
        cache = tmp_path / "cache.json"
        config = LintConfig()
        cold = run([tmp_path], config, cache_path=cache)
        warm = run([tmp_path], config, cache_path=cache)
        assert warm.files_reanalyzed == ()
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed
        assert warm.files_scanned == cold.files_scanned

    def test_uncached_run_matches_cached(self, tmp_path):
        write_files(tmp_path, 4)
        cache = tmp_path / "cache.json"
        config = LintConfig()
        cached = run([tmp_path], config, cache_path=cache)
        plain = run([tmp_path], config)
        assert plain.findings == cached.findings

    def test_deleted_file_is_pruned(self, tmp_path):
        write_files(tmp_path, 3)
        cache = tmp_path / "cache.json"
        config = LintConfig()
        run([tmp_path], config, cache_path=cache)
        (tmp_path / "mod02.py").unlink()
        result = run([tmp_path], config, cache_path=cache)
        assert result.files_scanned == 2
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert not any("mod02" in key for key in payload["files"])


class TestInvalidation:
    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        write_files(tmp_path, 2)
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json", encoding="utf-8")
        config = LintConfig()
        result = run([tmp_path], config, cache_path=cache)
        assert len(result.findings) == 4  # RPR101 + RPR201 per file
        # and the run rewrote a valid cache
        assert json.loads(cache.read_text(encoding="utf-8"))["files"]

    def test_config_change_invalidates_whole_cache(self, tmp_path):
        write_files(tmp_path, 2)
        cache = tmp_path / "cache.json"
        run([tmp_path], LintConfig(), cache_path=cache)
        narrowed = LintConfig(select=frozenset({"RPR101"}))
        result = run([tmp_path], narrowed, cache_path=cache)
        assert {f.code for f in result.findings} == {"RPR101"}
        assert len(result.files_reanalyzed) == 2

    def test_meta_key_covers_rules_and_config(self):
        base = cache_meta_key("cfg-a", ["RPR101", "RPR102"])
        assert base == cache_meta_key("cfg-a", ["RPR102", "RPR101"])
        assert base != cache_meta_key("cfg-b", ["RPR101", "RPR102"])
        assert base != cache_meta_key("cfg-a", ["RPR101"])

    def test_unwritable_cache_does_not_fail_the_run(self, tmp_path):
        write_files(tmp_path, 1)
        config = LintConfig()
        missing_dir = tmp_path / "no-such-dir" / "cache.json"
        result = run([tmp_path], config, cache_path=missing_dir)
        assert len(result.findings) == 2


class TestEntryRoundTrip:
    def test_entry_serialises_losslessly(self):
        finding = Finding(path="a.py", line=3, col=1, code="RPR101",
                          message="m")
        entry = CacheEntry(file_hash="h", module_name="a",
                           findings=[finding], suppressed=[],
                           semantic_findings=[], semantic_suppressed=None,
                           facts=None)
        rebuilt = CacheEntry.from_dict(
            json.loads(json.dumps(entry.to_dict())))
        assert rebuilt.findings == [finding]
        assert rebuilt.semantic_findings == []
        assert rebuilt.semantic_suppressed is None

    def test_stale_meta_key_loads_empty(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache = LintCache(cache_path, "meta-1")
        cache.put("a.py", CacheEntry(file_hash="h", module_name="a"))
        cache.save()
        assert LintCache.load(cache_path, "meta-1").entries
        assert not LintCache.load(cache_path, "meta-2").entries


class TestParallelism:
    def test_jobs_equivalent_to_serial(self, tmp_path):
        # Enough files to clear the pool threshold.
        write_files(tmp_path, 14)
        config = LintConfig()
        serial = run([tmp_path], config, jobs=1)
        parallel = run([tmp_path], config, jobs=2)
        assert parallel.findings == serial.findings
        assert parallel.suppressed == serial.suppressed
        assert parallel.files_scanned == serial.files_scanned

    def test_jobs_auto_mode(self, tmp_path):
        write_files(tmp_path, 14)
        config = LintConfig()
        auto = run([tmp_path], config, jobs=0)
        assert auto.files_scanned == 14

    def test_warm_files_are_not_dispatched_to_workers(self, tmp_path,
                                                      monkeypatch):
        # The pool must only ever see cache misses: a warm run over an
        # unchanged tree hands the file stage zero items (no re-read,
        # no re-parse) regardless of the jobs setting.
        import repro.lint.engine as engine_mod
        write_files(tmp_path, 14)
        cache = tmp_path / "cache.json"
        config = LintConfig()
        run([tmp_path], config, jobs=2, cache_path=cache)
        dispatched = []
        original = engine_mod._run_file_stage

        def spy(items, jobs):
            dispatched.append(len(items))
            return original(items, jobs)

        monkeypatch.setattr(engine_mod, "_run_file_stage", spy)
        warm = run([tmp_path], config, jobs=2, cache_path=cache)
        assert warm.files_reanalyzed == ()
        assert dispatched == [0]
