"""Tests for the engine plumbing: baseline, config, reporters, pragmas."""

import json
from pathlib import Path

import pytest

from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.lint.config import (
    DEFAULT_LAYERING,
    LintConfig,
    find_pyproject,
    load_config,
)
from repro.lint.engine import discover_files, module_name_for
from repro.lint.findings import Finding
from repro.lint.pragmas import decorator_pragmas, parse_pragmas
from repro.lint.registry import all_rule_classes
from repro.lint.reporters import Report, render

F1 = Finding(path="a.py", line=3, col=1, code="RPR101", message="m1")
F2 = Finding(path="b.py", line=9, col=5, code="RPR303", message="m2")


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([F1, F2], path)
        known = load_baseline(path)
        new, matched = apply_baseline([F1, F2], known)
        assert new == []
        assert sorted(matched) == sorted([F1, F2])

    def test_line_drift_still_matches(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([F1], path)
        moved = Finding(path="a.py", line=77, col=2, code="RPR101",
                        message="m1")
        new, matched = apply_baseline([moved], load_baseline(path))
        assert new == [] and matched == [moved]

    def test_second_identical_violation_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([F1], path)
        twice = [F1, Finding(path="a.py", line=50, col=1, code="RPR101",
                             message="m1")]
        new, matched = apply_baseline(twice, load_baseline(path))
        assert len(new) == 1 and len(matched) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[1, 2]")
        with pytest.raises(BaselineError):
            load_baseline(path)
        path.write_text("not json at all")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_stale_paths_are_pruned_on_load(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        path = tmp_path / "baseline.json"
        write_baseline([F1, F2], path)  # a.py exists, b.py does not
        known = load_baseline(path, root=tmp_path)
        assert ("a.py", "RPR101", "m1") in known
        assert ("b.py", "RPR303", "m2") not in known
        # without a root, nothing is pruned (library callers opt in)
        assert ("b.py", "RPR303", "m2") in load_baseline(path)

    def test_update_baseline_drops_fixed_entries(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        path = tmp_path / "baseline.json"
        write_baseline([F1, F2], path)
        # Current run only produces F1 — F2 was fixed.
        removed = update_baseline([F1], path, root=tmp_path)
        assert removed == 1
        assert set(load_baseline(path)) == {("a.py", "RPR101", "m1")}

    def test_update_baseline_never_adds_new_findings(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        path = tmp_path / "baseline.json"
        write_baseline([F1], path)
        fresh = Finding(path="a.py", line=2, col=1, code="RPR102",
                        message="brand new")
        update_baseline([F1, fresh], path, root=tmp_path)
        known = load_baseline(path)
        assert set(known) == {("a.py", "RPR101", "m1")}

    def test_update_baseline_is_deterministic(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        path = tmp_path / "baseline.json"
        write_baseline([F2, F1], path)
        update_baseline([F1, F2], path, root=tmp_path)
        first = path.read_text()
        update_baseline([F2, F1], path, root=tmp_path)
        assert path.read_text() == first


class TestConfig:
    def test_repo_pyproject_is_discovered(self):
        repo_root = Path(__file__).resolve().parents[2]
        config = load_config(repo_root / "src")
        assert config.root == repo_root
        assert "repro.cli" in config.print_allowed
        assert config.layering["repro.featurize"] == (
            "repro.models", "repro.estimators", "repro.experiments")
        assert config.baseline_path() == repo_root / "lint-baseline.json"

    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(tmp_path)
        assert dict(config.layering) == dict(DEFAULT_LAYERING)
        assert config.select is None and config.ignore == frozenset()

    def test_section_overrides(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro.lint]\n'
            'ignore = ["RPR302"]\n'
            'select = ["RPR302", "RPR101"]\n'
            'print-allowed = ["x.y"]\n'
            'baseline = "b.json"\n'
            '[tool.repro.lint.layering]\n'
            '"pkg.low" = ["pkg.high"]\n')
        config = load_config(tmp_path)
        assert config.is_enabled("RPR101")
        assert not config.is_enabled("RPR302")  # ignore beats select
        assert not config.is_enabled("RPR303")  # not selected
        assert config.print_allowed == ("x.y",)
        assert config.layering == {"pkg.low": ("pkg.high",)}
        assert config.baseline_path() == tmp_path / "b.json"

    def test_find_pyproject_walks_upward(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_pyproject(nested) == tmp_path / "pyproject.toml"
        assert find_pyproject(Path("/")) in (None, Path("/pyproject.toml"))


class TestPragmas:
    def test_parse_single_and_multiple_codes(self):
        pragmas = parse_pragmas(
            "x = 1  # repro: ignore[RPR102]\n"
            "y = 2  # repro: ignore[RPR101, RPR303]\n")
        assert pragmas[1] == frozenset({"RPR102"})
        assert pragmas[2] == frozenset({"RPR101", "RPR303"})

    def test_pragma_inside_string_is_not_a_pragma(self):
        pragmas = parse_pragmas('x = "# repro: ignore[RPR101]"\n')
        assert pragmas == {}

    def test_blanket_form(self):
        assert parse_pragmas("x = 1  # repro: ignore\n")[1] == frozenset("*")

    def test_space_separated_codes(self):
        pragmas = parse_pragmas("x = 1  # repro: ignore[RPR102 RPR201]\n")
        assert pragmas[1] == frozenset({"RPR102", "RPR201"})

    def test_mixed_comma_and_space_separators(self):
        pragmas = parse_pragmas(
            "x = 1  # repro: ignore[RPR102, RPR201 RPR303]\n")
        assert pragmas[1] == frozenset({"RPR102", "RPR201", "RPR303"})

    def test_decorator_pragma_covers_the_def_line(self):
        import ast
        source = (
            "@property  # repro: ignore[RPR101]\n"
            "def f(x=[]):\n"
            "    return x\n")
        merged = decorator_pragmas(ast.parse(source),
                                   parse_pragmas(source))
        assert merged[1] == frozenset({"RPR101"})
        assert merged[2] == frozenset({"RPR101"})

    def test_decorator_pragma_suppresses_finding(self):
        from repro.lint import lint_text
        result = lint_text(
            "@staticmethod  # repro: ignore[RPR101]\n"
            "def f(x=[]):\n"
            '    """Doc."""\n'
            "    return x\n")
        assert not any(f.code == "RPR101" for f in result.findings)
        assert any(f.code == "RPR101" for f in result.suppressed)


class TestReporters:
    def _report(self):
        return Report(new=[F1], baselined=[F2], suppressed=[],
                      files_scanned=4)

    def test_text_reporter(self, tmp_path):
        out = (tmp_path / "o.txt").open("w+")
        render(self._report(), out, "text")
        out.seek(0)
        text = out.read()
        assert "a.py:3:1: RPR101 m1" in text
        assert "1 finding(s) in 4 file(s) (1 baselined)" in text

    def test_json_reporter(self, tmp_path):
        out = (tmp_path / "o.json").open("w+")
        render(self._report(), out, "json")
        out.seek(0)
        payload = json.loads(out.read())
        assert payload["findings"] == [F1.to_dict()]
        assert payload["summary"]["baselined"] == 1
        assert payload["summary"]["exit_code"] == 1

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            render(self._report(), (tmp_path / "o").open("w"), "yaml")

    def test_exit_code_zero_when_clean(self):
        assert Report(new=[], baselined=[F1], files_scanned=1).exit_code == 0


class TestRegistry:
    def test_catalogue_is_complete_and_banded(self):
        classes = all_rule_classes()
        codes = [cls.code for cls in classes]
        assert len(codes) == len(set(codes)) >= 9
        assert all(code.startswith("RPR") for code in codes)
        bands = {code[3] for code in codes}
        assert bands == {"1", "2", "3", "4", "5"}
        for cls in classes:
            assert cls.name and cls.summary
            assert cls.example_bad and cls.example_good
            assert cls.rationale()
            assert cls.help_uri().endswith(cls.code.lower())


class TestDiscovery:
    def test_module_name_resolution(self):
        repo_src = Path(__file__).resolve().parents[2] / "src"
        assert module_name_for(
            repo_src / "repro" / "featurize" / "base.py"
        ) == "repro.featurize.base"
        assert module_name_for(
            repo_src / "repro" / "lint" / "__init__.py") == "repro.lint"

    def test_discover_skips_hidden_and_finds_nested(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "no.py").write_text("x = 1\n")
        found = discover_files([tmp_path])
        assert [p.name for p in found] == ["mod.py"]

    def test_discover_rejects_non_python_target(self, tmp_path):
        target = tmp_path / "data.csv"
        target.write_text("a,b\n")
        with pytest.raises(FileNotFoundError):
            discover_files([target])
