"""Tests for the project index: resolution and cache invalidation.

The fixture package exercises the three resolution features the
interprocedural rules lean on — a diamond import, a cross-file
``Featurizer`` subclass, and a symbol re-exported through a package
``__init__`` — and then proves the import-graph invalidation frontier
matches the diamond exactly.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import LintConfig
from repro.lint.engine import module_name_for, run
from repro.lint.semantic import ProjectIndex, extract_module_facts

#: Diamond: app -> (left, right) -> core, plus a package __init__
#: re-exporting core's helper and a cross-file Featurizer hierarchy.
FIXTURE = {
    "pkg/__init__.py": """\
        from pkg.core import helper
        """,
    "pkg/core.py": """\
        def helper(x):
            return x + 1

        class Featurizer:
            pass
        """,
    "pkg/left.py": """\
        from pkg.core import helper

        def via_left(x):
            return helper(x)
        """,
    "pkg/right.py": """\
        from pkg.core import Featurizer

        class Intermediate(Featurizer):
            pass
        """,
    "pkg/app.py": """\
        from pkg import helper
        from pkg.left import via_left
        from pkg.right import Intermediate

        class Leaf(Intermediate):
            pass

        def main(x):
            return helper(via_left(x))
        """,
    "pkg/loner.py": """\
        def unrelated():
            return 0
        """,
}


def write_tree(root: Path, files: dict) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def build_index(root: Path) -> ProjectIndex:
    facts = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        facts.append(extract_module_facts(
            tree, path=path.relative_to(root).as_posix(),
            module_name=module_name_for(path)))
    return ProjectIndex(facts)


class TestResolution:
    def test_direct_import_resolves(self, tmp_path):
        write_tree(tmp_path, FIXTURE)
        index = build_index(tmp_path)
        symbol = index.resolve_symbol("pkg.left", "helper")
        assert symbol.kind == "function"
        assert symbol.module.module_name == "pkg.core"
        assert symbol.function.name == "helper"

    def test_reexport_through_package_init(self, tmp_path):
        write_tree(tmp_path, FIXTURE)
        index = build_index(tmp_path)
        # app imports helper from the package, which re-exports core's.
        symbol = index.resolve_symbol("pkg.app", "helper")
        assert symbol.kind == "function"
        assert symbol.module.module_name == "pkg.core"

    def test_cross_file_subclass_closure(self, tmp_path):
        write_tree(tmp_path, FIXTURE)
        index = build_index(tmp_path)
        subclasses = {cls.name for _, cls
                      in index.subclasses_of("Featurizer")}
        assert subclasses == {"Intermediate", "Leaf"}

    def test_call_resolution_through_reexport(self, tmp_path):
        write_tree(tmp_path, FIXTURE)
        index = build_index(tmp_path)
        resolved = index.resolve_call("pkg.app", "helper")
        assert resolved is not None
        assert resolved[0].module_name == "pkg.core"

    def test_diamond_import_edges(self, tmp_path):
        write_tree(tmp_path, FIXTURE)
        index = build_index(tmp_path)
        assert index.imports_of["pkg.left"] == {"pkg.core"}
        assert index.imports_of["pkg.right"] == {"pkg.core"}
        assert index.imports_of["pkg.app"] == {
            "pkg", "pkg.left", "pkg.right"}
        assert index.importers_of["pkg.core"] == {
            "pkg", "pkg.left", "pkg.right"}

    def test_dependent_paths_walk_the_diamond(self, tmp_path):
        write_tree(tmp_path, FIXTURE)
        index = build_index(tmp_path)
        dependents = index.dependent_paths(["pkg/core.py"])
        assert dependents == {"pkg/core.py", "pkg/__init__.py",
                              "pkg/left.py", "pkg/right.py", "pkg/app.py"}
        assert index.dependent_paths(["pkg/loner.py"]) == {"pkg/loner.py"}


class TestTransitiveInvalidation:
    """Editing one file re-analyses exactly it plus its importers."""

    def test_diamond_edit_invalidates_importers_only(self, tmp_path):
        write_tree(tmp_path, FIXTURE)
        config = LintConfig()
        cache = tmp_path / "cache.json"
        cold = run([tmp_path / "pkg"], config, cache_path=cache)
        assert len(cold.files_reanalyzed) == len(FIXTURE)

        warm = run([tmp_path / "pkg"], config, cache_path=cache)
        assert warm.files_reanalyzed == ()

        target = tmp_path / "pkg/core.py"
        target.write_text(target.read_text(encoding="utf-8")
                          + "\n# touched\n", encoding="utf-8")
        edited = run([tmp_path / "pkg"], config, cache_path=cache)
        names = {Path(p).name for p in edited.files_reanalyzed}
        assert names == {"core.py", "__init__.py", "left.py",
                         "right.py", "app.py"}

    def test_leaf_edit_invalidates_only_itself(self, tmp_path):
        write_tree(tmp_path, FIXTURE)
        config = LintConfig()
        cache = tmp_path / "cache.json"
        run([tmp_path / "pkg"], config, cache_path=cache)
        target = tmp_path / "pkg/loner.py"
        target.write_text(target.read_text(encoding="utf-8")
                          + "\n# touched\n", encoding="utf-8")
        edited = run([tmp_path / "pkg"], config, cache_path=cache)
        names = {Path(p).name for p in edited.files_reanalyzed}
        assert names == {"loner.py"}
