"""Per-rule unit tests: one positive and one negative case per rule,
plus the edge cases each rule's semantics promise."""

import textwrap

from repro.lint import LintConfig, lint_text


def codes(source, *, module_name="snippet", path="snippet.py", config=None):
    """Rule codes the engine reports for a source snippet."""
    result = lint_text(textwrap.dedent(source), module_name=module_name,
                       path=path, config=config)
    return [finding.code for finding in result.findings]


class TestMutableDefaultRPR101:
    def test_flags_list_literal_default(self):
        assert "RPR101" in codes("def f(x=[]):\n    return x\n")

    def test_flags_dict_call_and_kwonly_default(self):
        found = codes("def f(*, cache=dict()):\n    return cache\n")
        assert found.count("RPR101") == 1

    def test_accepts_none_and_immutable_defaults(self):
        assert codes(
            "def f(x=None, y=(), z=3, name='q'):\n    return x, y, z, name\n"
        ) == []


class TestFloatEqualityRPR102:
    def test_flags_equality_against_float_literal(self):
        assert "RPR102" in codes("def f(x):\n    return x == 1.0\n")

    def test_flags_inequality_and_negative_literals(self):
        assert "RPR102" in codes("def f(x):\n    return x != -0.5\n")

    def test_accepts_integer_literals_and_ordering(self):
        assert codes(
            "def f(x):\n    return x == 1 or x < 2.5 or x >= 0.0\n"
        ) == []

    def test_pragma_suppresses(self):
        source = "def f(x):\n    return x == 1.0  # repro: ignore[RPR102]\n"
        result = lint_text(source)
        assert [f.code for f in result.findings] == []
        assert [f.code for f in result.suppressed] == ["RPR102"]


class TestBroadExceptRPR103:
    def test_flags_bare_except(self):
        assert "RPR103" in codes(
            "def f():\n    try:\n        g()\n    except:\n        pass\n")

    def test_flags_swallowed_exception(self):
        assert "RPR103" in codes(
            "def f():\n    try:\n        g()\n"
            "    except Exception:\n        return None\n")

    def test_accepts_reraising_broad_handler(self):
        assert codes(
            "def f():\n    try:\n        g()\n"
            "    except Exception:\n        log()\n        raise\n") == []

    def test_accepts_specific_exception(self):
        assert codes(
            "def f():\n    try:\n        g()\n"
            "    except KeyError:\n        return None\n") == []


FEATURIZER_BASE = """
    import abc

    class Featurizer(abc.ABC):
        @property
        @abc.abstractmethod
        def feature_length(self):
            ...

        @abc.abstractmethod
        def _featurize_expr(self, expr):
            ...
"""


class TestFeaturizerSurfaceRPR104:
    def test_flags_incomplete_concrete_subclass(self):
        source = FEATURIZER_BASE + """
    class Broken(Featurizer):
        def feature_length(self):
            return 3
    """
        assert "RPR104" in codes(source)

    def test_accepts_complete_subclass(self):
        source = FEATURIZER_BASE + """
    class Good(Featurizer):
        def feature_length(self):
            return 3

        def _featurize_expr(self, expr):
            return expr
    """
        assert codes(source) == []

    def test_accepts_inherited_implementation(self):
        source = FEATURIZER_BASE + """
    class Good(Featurizer):
        def feature_length(self):
            return 3

        def _featurize_expr(self, expr):
            return expr

    class Derived(Good):
        pass
    """
        assert codes(source) == []

    def test_skips_abstract_intermediate_class(self):
        source = FEATURIZER_BASE + """
    import abc as _abc

    class Intermediate(Featurizer):
        @_abc.abstractmethod
        def extra(self):
            ...
    """
        assert codes(source) == []


class TestScalarFeaturizeLoopRPR105:
    def test_flags_featurize_loop_in_batch_method(self):
        source = """
    class Encoding:
        def featurize_batch(self, queries):
            return [self.featurize(q) for q in queries]
    """
        assert "RPR105" in codes(source,
                                 module_name="repro.featurize.custom")

    def test_flags_for_loop_variant(self):
        source = """
    class Encoding:
        def featurize_batch(self, queries):
            out = []
            for q in queries:
                out.append(self.featurize(q))
            return out
    """
        assert "RPR105" in codes(source,
                                 module_name="repro.featurize.custom")

    def test_accepts_compiled_pipeline_and_featurize_batch_calls(self):
        source = """
    class Encoding:
        def featurize_batch(self, queries):
            batch = self.compile_batch(queries)
            return self._featurize_compiled(batch)

    class Composite:
        def featurize_batch(self, queries):
            return [f.featurize_batch(queries) for f in self._parts]
    """
        assert codes(source, module_name="repro.featurize.custom") == []

    def test_only_applies_inside_featurize_package(self):
        source = """
    class Runner:
        def run_batch(self, queries):
            return [self.featurize(q) for q in queries]
    """
        assert codes(source, module_name="repro.experiments.helper") == []

    def test_scalar_featurize_outside_batch_method_is_fine(self):
        source = """
    class Encoding:
        def featurize(self, query):
            return self._encode(query)

        def describe(self, queries):
            return [self.featurize(q) for q in queries]
    """
        assert codes(source, module_name="repro.featurize.custom") == []


class TestGlobalNumpyRandomRPR201:
    def test_flags_np_random_seed(self):
        assert "RPR201" in codes(
            "import numpy as np\nnp.random.seed(0)\n")

    def test_flags_legacy_draw_and_from_import(self):
        assert "RPR201" in codes(
            "import numpy as np\nx = np.random.rand(3)\n")
        assert "RPR201" in codes("from numpy.random import randint\n")

    def test_accepts_generator_threading(self):
        assert codes(
            "import numpy as np\n"
            "def f(rng: np.random.Generator):\n"
            "    return rng.normal(size=3)\n") == []

    def test_accepts_seeded_default_rng(self):
        assert codes(
            "import numpy as np\nrng = np.random.default_rng(42)\n") == []


class TestUnseededGeneratorRPR202:
    def test_flags_argless_default_rng(self):
        assert "RPR202" in codes(
            "import numpy as np\nrng = np.random.default_rng()\n")

    def test_flags_bare_imported_name(self):
        assert "RPR202" in codes(
            "from numpy.random import default_rng\nrng = default_rng()\n")

    def test_accepts_any_seed_argument(self):
        assert codes(
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "rng2 = np.random.default_rng(seed=None)\n") == []


class TestImportLayeringRPR301:
    def test_flags_featurize_importing_models(self):
        assert "RPR301" in codes(
            "from repro.models import GradientBoostingRegressor\n",
            module_name="repro.featurize.evil")

    def test_flags_plain_import_and_submodule(self):
        assert "RPR301" in codes("import repro.estimators.learned\n",
                                 module_name="repro.sql.evil")

    def test_accepts_downward_import(self):
        assert codes("from repro.featurize import ConjunctiveEncoding\n",
                     module_name="repro.models.fine") == []

    def test_accepts_unlayered_module(self):
        assert codes("from repro.models import GradientBoostingRegressor\n",
                     module_name="repro.experiments.fine") == []


class TestServeLayeringRPR301:
    """The repo's own pyproject pins repro.serve above the pipeline:
    lower layers importing the serving subsystem must be flagged."""

    @staticmethod
    def _repo_config():
        from pathlib import Path

        from repro.lint.config import load_config

        return load_config(Path(__file__).resolve().parents[2] / "src")

    def test_flags_persistence_importing_serve(self):
        assert "RPR301" in codes("from repro.serve import ModelRegistry\n",
                                 module_name="repro.persistence",
                                 config=self._repo_config())

    def test_flags_estimators_importing_serve(self):
        assert "RPR301" in codes("import repro.serve.batcher\n",
                                 module_name="repro.estimators.evil",
                                 config=self._repo_config())

    def test_flags_obs_importing_serve(self):
        assert "RPR301" in codes("from repro.serve.cache import "
                                 "EstimateCache\n",
                                 module_name="repro.obs.evil",
                                 config=self._repo_config())

    def test_serve_may_import_the_layers_below(self):
        assert codes("from repro.estimators import LearnedEstimator\n"
                     "from repro.persistence import load_estimator\n"
                     "from repro import obs\n",
                     module_name="repro.serve.server",
                     config=self._repo_config()) == []


class TestPrintInLibraryRPR302:
    def test_flags_print_in_library_module(self):
        assert "RPR302" in codes("def f():\n    print('hi')\n",
                                 module_name="repro.featurize.noisy")

    def test_accepts_print_in_allowed_cli_module(self):
        assert codes("def f():\n    print('hi')\n",
                     module_name="repro.cli") == []

    def test_config_extends_the_allowlist(self):
        config = LintConfig(print_allowed=("mytool.cli",))
        assert codes("print('x')\n", module_name="mytool.cli.sub",
                     config=config) == []


class TestAdHocTimingRPR108:
    def test_flags_time_attribute_call(self):
        assert "RPR108" in codes(
            "import time\n\ndef f():\n    return time.perf_counter()\n",
            module_name="repro.featurize.base")

    def test_flags_aliased_module_and_from_import(self):
        assert "RPR108" in codes(
            "import time as t\n\ndef f():\n    return t.monotonic_ns()\n",
            module_name="repro.models.neural_net")
        assert "RPR108" in codes(
            "from time import perf_counter\n\n"
            "def f():\n    return perf_counter()\n",
            module_name="repro.experiments.runner")

    def test_accepts_non_clock_time_functions(self):
        assert codes(
            "import time\n\ndef f():\n    time.sleep(0.1)\n",
            module_name="repro.data.loader") == []

    def test_obs_and_bench_are_exempt(self):
        source = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert codes(source, module_name="repro.obs.trace") == []
        assert codes(source, module_name="repro.bench") == []

    def test_only_applies_inside_repro(self):
        assert codes(
            "import time\n\ndef f():\n    return time.time()\n",
            module_name="scripts.profile") == []

    def test_pragma_suppresses(self):
        source = ("import time\n\ndef f():\n"
                  "    return time.time()  # repro: ignore[RPR108]\n")
        result = lint_text(source, module_name="repro.metrics")
        assert result.findings == ()
        assert [f.code for f in result.suppressed] == ["RPR108"]


class TestPerTreePredictLoopRPR109:
    def test_flags_for_loop_over_trees(self):
        assert "RPR109" in codes(
            "def f(model, X):\n"
            "    total = 0.0\n"
            "    for tree in model.trees:\n"
            "        total += tree.predict(X)\n"
            "    return total\n",
            module_name="repro.estimators.learned")

    def test_flags_subscripted_tree_list_and_predict_binned(self):
        assert "RPR109" in codes(
            "def f(trees, codes_):\n"
            "    i = 0\n"
            "    while i < len(trees):\n"
            "        trees[i].predict_binned(codes_)\n"
            "        i += 1\n",
            module_name="repro.serve.registry")

    def test_accepts_single_predict_call_outside_loop(self):
        assert codes(
            "def f(tree, X):\n    return tree.predict(X)\n",
            module_name="repro.models.gradient_boosting") == []

    def test_accepts_non_tree_predict_loops(self):
        assert codes(
            "def f(models, X):\n"
            "    return [model.predict(X) for model in models]\n"
            "    \n",
            module_name="repro.experiments.runner") == []

    def test_legacy_tree_module_is_exempt(self):
        source = ("def f(trees, X):\n"
                  "    for tree in trees:\n"
                  "        tree.predict(X)\n")
        assert codes(source, module_name="repro.models.tree") == []
        assert "RPR109" in codes(source, module_name="repro.models.other")

    def test_pragma_suppresses(self):
        source = ("def f(model, X):\n"
                  "    for tree in model.trees:  # repro: ignore[RPR109]\n"
                  "        tree.predict(X)\n")
        result = lint_text(source, module_name="repro.bench")
        assert result.findings == ()
        assert [f.code for f in result.suppressed] == ["RPR109"]


class TestDunderAllRPR303:
    def test_flags_public_definition_missing_from_all(self):
        assert "RPR303" in codes(
            "__all__ = ['f']\n\ndef f():\n    return 1\n\n"
            "def g():\n    return 2\n")

    def test_flags_dangling_and_duplicate_names(self):
        found = codes("__all__ = ['ghost', 'ghost']\n")
        assert found.count("RPR303") >= 2

    def test_accepts_matching_all(self):
        assert codes(
            "__all__ = ['f', 'LIMIT']\n\nLIMIT = 3\n\n"
            "def f():\n    return LIMIT\n\ndef _private():\n    return 0\n"
        ) == []

    def test_init_requires_intra_package_reexports_only(self):
        source = ("from pathlib import Path\n"
                  "from repro.pkg.core import thing\n"
                  "__all__ = ['thing']\n")
        assert codes(source, module_name="repro.pkg",
                     path="repro/pkg/__init__.py") == []
        missing = codes("from repro.pkg.core import thing\n__all__ = []\n",
                        module_name="repro.pkg",
                        path="repro/pkg/__init__.py")
        assert "RPR303" in missing

    def test_module_without_all_is_not_checked(self):
        assert codes("def undeclared():\n    return 1\n") == []


class TestEngineBehaviour:
    def test_syntax_error_becomes_parse_finding(self):
        result = lint_text("def f(:\n")
        assert [f.code for f in result.findings] == ["RPR001"]

    def test_blanket_pragma_suppresses_all_codes_on_line(self):
        source = "def f(x=[]):  # repro: ignore\n    return x\n"
        result = lint_text(source)
        assert result.findings == ()
        assert [f.code for f in result.suppressed] == ["RPR101"]

    def test_pragma_for_other_code_does_not_suppress(self):
        source = "def f(x=[]):  # repro: ignore[RPR999]\n    return x\n"
        assert [f.code for f in lint_text(source).findings] == ["RPR101"]

    def test_ignore_config_disables_rule(self):
        config = LintConfig(ignore=frozenset({"RPR101"}))
        assert codes("def f(x=[]):\n    return x\n", config=config) == []

    def test_select_config_limits_rules(self):
        config = LintConfig(select=frozenset({"RPR102"}))
        source = "def f(x=[]):\n    return x == 1.0\n"
        assert codes(source, config=config) == ["RPR102"]

    def test_findings_are_sorted_and_located(self):
        result = lint_text("x = 1 == 2.0\ny = 3 == 4.0\n")
        lines = [f.line for f in result.findings]
        assert lines == sorted(lines) == [1, 2]
        assert all(f.path == "snippet.py" for f in result.findings)


class TestMetricNameDriftRPR110:
    def test_flags_fstring_metric_name(self):
        assert "RPR110" in codes(
            'def f(kind, registry):\n'
            '    registry.counter(f"serve.cache.{kind}").inc()\n',
            module_name="repro.serve.cache")

    def test_flags_concatenated_and_formatted_names(self):
        assert "RPR110" in codes(
            'def f(prefix, registry):\n'
            '    registry.histogram(prefix + ".seconds").record(1.0)\n',
            module_name="repro.serve.server")
        assert "RPR110" in codes(
            'def f(obs, kind):\n'
            '    with obs.span("serve.{}".format(kind)):\n'
            '        pass\n',
            module_name="repro.serve.server")

    def test_flags_non_dotted_lowercase_literal(self):
        assert "RPR110" in codes(
            'def f(registry):\n'
            '    registry.counter("Serve-Requests").inc()\n',
            module_name="repro.serve.server")
        assert "RPR110" in codes(
            'def f(obs):\n'
            '    with obs.span("serve.request.", metric="ok.name"):\n'
            '        pass\n',
            module_name="repro.serve.server")

    def test_flags_dynamic_metric_keyword(self):
        assert "RPR110" in codes(
            'def f(obs, stage):\n'
            '    with obs.span("serve.request", metric=f"{stage}.s"):\n'
            '        pass\n',
            module_name="repro.serve.server")

    def test_accepts_literals_and_preresolved_variables(self):
        assert codes(
            'def f(self, obs, registry):\n'
            '    registry.counter("serve.requests_total").inc()\n'
            '    registry.counter(self._hits_metric).inc()\n'
            '    with obs.span("serve.request",\n'
            '                  metric="serve.request.seconds"):\n'
            '        pass\n',
            module_name="repro.serve.server") == []

    def test_obs_layer_is_exempt(self):
        assert codes(
            'def f(self, name):\n'
            '    self.counter(name + "_total").inc()\n',
            module_name="repro.obs.prometheus") == []

    def test_only_applies_inside_repro(self):
        assert codes(
            'def f(registry, kind):\n'
            '    registry.counter(f"x.{kind}").inc()\n',
            module_name="scripts.dashboard") == []

    def test_pragma_suppresses(self):
        source = ('def f(registry, kind):\n'
                  '    registry.counter(f"c.{kind}").inc()'
                  '  # repro: ignore[RPR110]\n')
        result = lint_text(source, module_name="repro.serve.cache")
        assert result.findings == ()
        assert [f.code for f in result.suppressed] == ["RPR110"]


class TestSubprocessWithoutDrainRPR111:
    def test_flags_undrained_attribute_binding(self):
        assert "RPR111" in codes(
            'import subprocess\n'
            'class W:\n'
            '    def start(self):\n'
            '        self._proc = subprocess.Popen(["sleep", "1"])\n',
            module_name="repro.fleet.evil")

    def test_flags_undrained_local_and_unbound_spawn(self):
        assert "RPR111" in codes(
            'import subprocess\n'
            'def f():\n'
            '    proc = subprocess.Popen(["sleep", "1"])\n'
            '    return proc.pid\n',
            module_name="repro.serve.evil")
        assert "RPR111" in codes(
            'import subprocess\n'
            'def f():\n'
            '    subprocess.Popen(["sleep", "1"])\n',
            module_name="repro.fleet.evil")

    def test_accepts_direct_drain(self):
        assert "RPR111" not in codes(
            'import subprocess\n'
            'class W:\n'
            '    def start(self):\n'
            '        self._proc = subprocess.Popen(["sleep", "1"])\n'
            '    def stop(self):\n'
            '        self._proc.wait()\n',
            module_name="repro.fleet.ok")

    def test_accepts_drain_through_alias(self):
        assert "RPR111" not in codes(
            'import subprocess\n'
            'class W:\n'
            '    def start(self):\n'
            '        self._proc = subprocess.Popen(["sleep", "1"])\n'
            '    def stop(self):\n'
            '        proc = self._proc\n'
            '        proc.terminate()\n'
            '        proc.wait()\n',
            module_name="repro.fleet.ok")

    def test_flags_from_import_and_multiprocessing(self):
        assert "RPR111" in codes(
            'from subprocess import Popen\n'
            'def f():\n'
            '    worker = Popen(["sleep", "1"])\n'
            '    return worker\n',
            module_name="repro.fleet.evil")
        assert "RPR111" in codes(
            'import multiprocessing\n'
            'def f(target):\n'
            '    child = multiprocessing.Process(target=target)\n'
            '    child.start()\n',
            module_name="repro.fleet.evil")

    def test_subprocess_run_is_not_a_spawn(self):
        assert "RPR111" not in codes(
            'import subprocess\n'
            'def f():\n'
            '    return subprocess.run(["ls"], check=True)\n',
            module_name="repro.fleet.ok")

    def test_only_applies_to_serving_layers(self):
        assert "RPR111" not in codes(
            'import subprocess\n'
            'def f():\n'
            '    proc = subprocess.Popen(["sleep", "1"])\n'
            '    return proc.pid\n',
            module_name="repro.experiments.runner")

    def test_pragma_suppresses(self):
        source = ('import subprocess\n'
                  'def f():\n'
                  '    proc = subprocess.Popen(["ls"])'
                  '  # repro: ignore[RPR111]\n'
                  '    return proc\n')
        result = lint_text(source, module_name="repro.fleet.evil")
        assert "RPR111" not in [f.code for f in result.findings]
        assert "RPR111" in [f.code for f in result.suppressed]
