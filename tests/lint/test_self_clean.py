"""Tier-1 self-check: the shipped tree passes its own linter.

This is the gate the whole subsystem exists for — every featurization
and determinism contract in ``docs/lint_rules.md`` holds on ``src/``,
with no grandfathered findings hiding in the baseline.
"""

import json
from pathlib import Path

from repro.lint import lint_paths, load_config

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_src_tree_is_lint_clean():
    config = load_config(SRC)
    result = lint_paths([SRC], config)
    rendered = "\n".join(f.render() for f in result.findings)
    assert not result.findings, (
        f"src/ has non-baselined lint findings:\n{rendered}"
    )


def test_shipped_baseline_is_empty():
    """No grandfathered findings: the initial sweep fixed everything."""
    baseline = json.loads(
        (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8"))
    assert baseline["findings"] == []


def test_every_rule_actually_ran():
    """A rule silently dropping out of the run would make the self-check
    meaningless; pin the full catalogue."""
    config = load_config(SRC)
    result = lint_paths([SRC], config)
    assert set(result.rules_run) >= {
        "RPR101", "RPR102", "RPR103", "RPR104", "RPR105",
        "RPR106", "RPR107", "RPR108", "RPR109", "RPR110",
        "RPR201", "RPR202", "RPR203", "RPR204",
        "RPR301", "RPR302", "RPR303",
    }
    assert result.files_scanned > 80


def test_analysis_pragma_is_exercised():
    """The one legitimate vectorized float comparison is suppressed by
    pragma, not invisible to the linter."""
    config = load_config(SRC)
    result = lint_paths([SRC], config)
    suppressed = [f for f in result.suppressed if f.code == "RPR102"]
    assert any("featurize/analysis.py" in f.path for f in suppressed)
