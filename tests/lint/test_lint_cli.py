"""Tests for the lint command-line front end (``python -m repro.lint``)."""

import io
import json
import textwrap
from pathlib import Path

from repro.lint.cli import main

CLEAN = '__all__ = ["f"]\n\n\ndef f():\n    """Do nothing."""\n    return 1\n'
DIRTY = textwrap.dedent("""\
    import numpy as np

    __all__ = ["f"]


    def f(x=[]):
        \"\"\"Misbehave.\"\"\"
        np.random.seed(0)
        return x
    """)


def run_cli(args):
    stream = io.StringIO()
    code = main(args, stream=stream)
    return code, stream.getvalue()


def test_clean_file_exits_zero(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    code, out = run_cli([str(target), "--no-baseline"])
    assert code == 0
    assert "0 finding(s)" in out


def test_dirty_file_exits_one_with_text_report(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    code, out = run_cli([str(target), "--no-baseline"])
    assert code == 1
    assert "RPR101" in out and "RPR201" in out


def test_json_format(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    code, out = run_cli([str(target), "--format", "json", "--no-baseline"])
    assert code == 1
    payload = json.loads(out)
    codes = {f["code"] for f in payload["findings"]}
    assert {"RPR101", "RPR201"} <= codes
    assert payload["summary"]["exit_code"] == 1


def test_write_then_apply_baseline(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    baseline = tmp_path / "baseline.json"
    code, out = run_cli([str(target), "--baseline", str(baseline),
                         "--write-baseline"])
    assert code == 0 and baseline.exists()
    # Grandfathered findings no longer fail the run...
    code, out = run_cli([str(target), "--baseline", str(baseline)])
    assert code == 0
    assert "baselined" in out
    # ...but a fresh violation still does.
    target.write_text(DIRTY + "\n\nBAD = x == 1.0\n")
    code, out = run_cli([str(target), "--baseline", str(baseline)])
    assert code == 1


def test_malformed_baseline_is_a_usage_error(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    baseline = tmp_path / "broken.json"
    baseline.write_text("{")
    code, out = run_cli([str(target), "--baseline", str(baseline)])
    assert code == 2
    assert "error" in out


def test_missing_path_is_a_usage_error(tmp_path):
    code, out = run_cli([str(tmp_path / "nope")])
    assert code == 2
    assert "does not exist" in out


def test_list_rules(tmp_path):
    code, out = run_cli(["--list-rules"])
    assert code == 0
    for expected in ("RPR101", "RPR202", "RPR303"):
        assert expected in out


def test_explain_prints_rationale_and_examples():
    code, out = run_cli(["--explain", "RPR501"])
    assert code == 0
    assert "RPR501" in out and "silent-dtype-narrowing" in out
    assert "Bad:" in out and "Good:" in out
    assert "docs/lint_rules.md#rpr501" in out


def test_explain_normalises_case():
    code, out = run_cli(["--explain", "rpr101"])
    assert code == 0
    assert "RPR101" in out


def test_explain_covers_every_registered_rule():
    from repro.lint.registry import all_rule_classes

    for cls in all_rule_classes():
        code, out = run_cli(["--explain", cls.code])
        assert code == 0, cls.code
        assert cls.code in out and "Bad:" in out, cls.code


def test_explain_parse_error_code_is_documented():
    code, out = run_cli(["--explain", "RPR001"])
    assert code == 0
    assert "parse" in out.lower()


def test_explain_unknown_code_is_a_usage_error():
    code, out = run_cli(["--explain", "RPR999"])
    assert code == 2
    assert "unknown rule code" in out


def test_repo_src_via_cli_is_clean():
    """End to end: the shipped tree, real config, real baseline."""
    repo_root = Path(__file__).resolve().parents[2]
    code, out = run_cli([str(repo_root / "src")])
    assert code == 0, out


def test_sarif_format(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    code, out = run_cli([str(target), "--format", "sarif",
                         "--no-baseline", "--no-cache"])
    assert code == 1
    payload = json.loads(out)
    assert payload["version"] == "2.1.0"
    codes = {r["ruleId"] for r in payload["runs"][0]["results"]}
    assert {"RPR101", "RPR201"} <= codes


def test_update_baseline_flow(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    baseline = tmp_path / "baseline.json"
    run_cli([str(target), "--baseline", str(baseline),
             "--write-baseline", "--no-cache"])
    # Fix the mutable default; --update-baseline drops its entry.
    target.write_text(DIRTY.replace("def f(x=[]):", "def f(x=None):"))
    code, out = run_cli([str(target), "--baseline", str(baseline),
                         "--update-baseline", "--no-cache"])
    assert code == 0
    assert "removed 1" in out
    payload = json.loads(baseline.read_text())
    codes = {entry["code"] for entry in payload["findings"]}
    assert "RPR101" not in codes and "RPR201" in codes


def test_explicit_cache_speeds_warm_run(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    cache = tmp_path / "cache.json"
    code, _ = run_cli([str(target), "--no-baseline",
                       "--cache", str(cache)])
    assert code == 1 and cache.exists()
    # Warm run over an unchanged tree reports the same findings.
    code, out = run_cli([str(target), "--no-baseline",
                         "--cache", str(cache)])
    assert code == 1
    assert "RPR101" in out


def test_jobs_flag_matches_serial(tmp_path):
    for i in range(14):
        (tmp_path / f"mod{i:02d}.py").write_text(DIRTY)
    serial = run_cli([str(tmp_path), "--no-baseline", "--no-cache",
                      "--format", "json"])
    parallel = run_cli([str(tmp_path), "--no-baseline", "--no-cache",
                        "--format", "json", "--jobs", "2"])
    assert json.loads(serial[1]) == json.loads(parallel[1])
