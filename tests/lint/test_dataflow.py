"""Tests for the CFG/dataflow substrate under the RPR4xx band.

Covers the three layers directly: CFG shapes for every structured
statement ``build_cfg`` handles, the reaching-definitions fixed point
(including the loop case that needs more than one solver pass), and
the must-hold lock lattice (intersection join at merges).
"""

import ast
import textwrap

from repro.lint.dataflow import (
    LockModel,
    LockStateAnalysis,
    ReachingDefinitions,
    build_cfg,
    held_tokens,
    iter_op_states,
    solve,
)


def fn_cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(node for node in ast.walk(tree)
              if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)))
    return fn, build_cfg(fn)


def op_kinds(cfg):
    return [op.kind for block_id in cfg.rpo()
            for op in cfg.blocks[block_id].ops]


def block_of(cfg, kind, lineno):
    """The block holding the op of ``kind`` whose node starts at ``lineno``."""
    for block in cfg.blocks.values():
        for op in block.ops:
            if op.kind == kind and op.node.lineno == lineno:
                return block
    raise AssertionError(f"no {kind!r} op at line {lineno}")


class TestCfgShapes:
    def test_straight_line_is_one_block(self):
        _, cfg = fn_cfg("""\
            def f():
                a = 1
                b = a + 1
                return b
            """)
        entry = cfg.blocks[cfg.entry_id]
        assert [op.kind for op in entry.ops] == ["stmt"] * 3
        assert entry.succs == [cfg.exit_id]
        assert not any(block.ops for block_id, block in cfg.blocks.items()
                       if block_id != cfg.entry_id)

    def test_if_else_branches_and_join(self):
        _, cfg = fn_cfg("""\
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """)
        test_block = block_of(cfg, "test", 2)
        assert len(test_block.succs) == 2
        then_id, else_id = test_block.succs
        join = block_of(cfg, "stmt", 6)
        assert set(join.preds) == {then_id, else_id}

    def test_while_has_back_edge_and_exit_edge(self):
        _, cfg = fn_cfg("""\
            def f(x):
                while x:
                    x = x - 1
                return x
            """)
        head = block_of(cfg, "test", 2)
        body = block_of(cfg, "stmt", 3)
        after = block_of(cfg, "stmt", 4)
        assert set(head.succs) == {body.block_id, after.block_id}
        assert head.block_id in body.succs  # the back edge

    def test_for_loop_head_binds_target(self):
        _, cfg = fn_cfg("""\
            def f(items):
                for item in items:
                    use(item)
                done()
            """)
        head = block_of(cfg, "for", 2)
        body = block_of(cfg, "stmt", 3)
        after = block_of(cfg, "stmt", 4)
        assert set(head.succs) == {body.block_id, after.block_id}
        assert head.block_id in body.succs

    def test_break_jumps_past_the_loop(self):
        _, cfg = fn_cfg("""\
            def f(items):
                for item in items:
                    break
                done()
            """)
        after = block_of(cfg, "stmt", 4)
        head = block_of(cfg, "for", 2)
        # Both the loop head (exhaustion) and the break block reach it.
        assert len(after.preds) == 2
        assert head.block_id in after.preds

    def test_try_handler_reachable_from_body(self):
        _, cfg = fn_cfg("""\
            def f():
                try:
                    risky()
                except ValueError:
                    fallback()
                done()
            """)
        handler = block_of(cfg, "stmt", 5)
        after = block_of(cfg, "stmt", 6)
        assert handler.block_id in \
            {p for block in cfg.blocks.values() if block.succs
             for p in block.succs} or handler.preds
        assert handler.preds  # reachable via the dispatch block
        assert handler.block_id in after.preds or any(
            handler.block_id in cfg.blocks[p].preds for p in after.preds)

    def test_with_desugars_to_enter_and_exit(self):
        _, cfg = fn_cfg("""\
            def f(lock):
                with lock:
                    work()
                done()
            """)
        kinds = op_kinds(cfg)
        assert kinds.index("enter") < kinds.index("exit")
        assert kinds.count("enter") == kinds.count("exit") == 1

    def test_code_after_return_is_dropped(self):
        _, cfg = fn_cfg("""\
            def f():
                return 1
                unreachable()
            """)
        assert all(op.node.lineno != 3
                   for block in cfg.blocks.values() for op in block.ops)

    def test_while_else_lives_on_the_normal_exit_path(self):
        _, cfg = fn_cfg("""\
            def f(x):
                while x:
                    x = x - 1
                else:
                    cleanup()
                done()
            """)
        head = block_of(cfg, "test", 2)
        els = block_of(cfg, "stmt", 5)
        after = block_of(cfg, "stmt", 6)
        # The else body runs when the loop exhausts, i.e. straight off
        # the head's false edge, and flows on into the trailing code.
        assert els.block_id in head.succs
        assert after.block_id == els.block_id or \
            after.block_id in els.succs

    def test_try_finally_joins_body_and_handler(self):
        _, cfg = fn_cfg("""\
            def f():
                try:
                    risky()
                except ValueError:
                    fallback()
                finally:
                    close()
                done()
            """)
        final = block_of(cfg, "stmt", 7)
        body = block_of(cfg, "stmt", 3)
        handler = block_of(cfg, "stmt", 5)
        # Both the normal path and the handled path funnel into the
        # finally block before the trailing code.
        assert body.block_id in final.preds
        assert handler.block_id in final.preds

    def test_bare_try_finally_runs_on_the_propagation_path(self):
        _, cfg = fn_cfg("""\
            def f():
                try:
                    risky()
                finally:
                    close()
                done()
            """)
        final = block_of(cfg, "stmt", 5)
        # With no handler the exception still executes the finally
        # body on its way out, so the dispatch block reaches it too.
        assert len(final.preds) >= 2

    def test_rpo_starts_at_entry(self):
        _, cfg = fn_cfg("""\
            def f(x):
                if x:
                    a = 1
                return x
            """)
        order = cfg.rpo()
        assert order[0] == cfg.entry_id
        assert set(order) <= set(cfg.blocks)


class TestReachingDefinitions:
    def states_at(self, source):
        fn, cfg = fn_cfg(source)
        analysis = ReachingDefinitions(fn)
        solution = solve(cfg, analysis)
        return fn, cfg, analysis, solution

    def test_straight_line_resolves_unique_value(self):
        fn, cfg, analysis, solution = self.states_at("""\
            def f(self, key):
                handle = self._handles.get(key)
                return handle
            """)
        for op, state in iter_op_states(cfg, analysis, solution):
            if op.kind == "stmt" and isinstance(op.node, ast.Return):
                value = analysis.resolve(state, "handle")
                assert isinstance(value, ast.Call)
                break
        else:
            raise AssertionError("return op not reached")

    def test_loop_merge_is_ambiguous(self):
        # x has two reaching definitions after the loop (the init and
        # the body); convergence requires a second solver pass over the
        # back edge, and resolve() must refuse to pick one.
        fn, cfg, analysis, solution = self.states_at("""\
            def f(n):
                x = 0
                for i in range(n):
                    x = x + 1
                return x
            """)
        for op, state in iter_op_states(cfg, analysis, solution):
            if op.kind == "stmt" and isinstance(op.node, ast.Return):
                sites = {site for site in state if site[0] == "x"}
                assert {site[1] for site in sites} == {2, 4}
                assert analysis.resolve(state, "x") is None
                break
        else:
            raise AssertionError("return op not reached")

    def test_try_finally_join_merges_both_definitions(self):
        # x is redefined on the normal path (line 4) and the handled
        # path (line 6); the finally join must carry both sites, and
        # neither kills the other.
        fn, cfg, analysis, solution = self.states_at("""\
            def f():
                x = 0
                try:
                    x = risky()
                except ValueError:
                    x = -1
                finally:
                    log()
                return x
            """)
        for op, state in iter_op_states(cfg, analysis, solution):
            if op.kind == "stmt" and isinstance(op.node, ast.Return):
                sites = {site[1] for site in state if site[0] == "x"}
                assert {4, 6} <= sites
                assert analysis.resolve(state, "x") is None
                break
        else:
            raise AssertionError("return op not reached")

    def test_augmented_subscript_mutates_without_rebinding(self):
        # ``a[0] += 1`` mutates the object a names but does not rebind
        # ``a`` — its original definition must still resolve, while an
        # augmented assignment to the bare name kills it.
        fn, cfg, analysis, solution = self.states_at("""\
            def f(n):
                a = make(n)
                a[0] += 1
                return a
            """)
        for op, state in iter_op_states(cfg, analysis, solution):
            if op.kind == "stmt" and isinstance(op.node, ast.Return):
                value = analysis.resolve(state, "a")
                assert isinstance(value, ast.Call)
                break
        else:
            raise AssertionError("return op not reached")

    def test_augmented_name_assignment_kills_the_definition(self):
        fn, cfg, analysis, solution = self.states_at("""\
            def f(n):
                a = make(n)
                a += 1
                return a
            """)
        for op, state in iter_op_states(cfg, analysis, solution):
            if op.kind == "stmt" and isinstance(op.node, ast.Return):
                sites = {site[1] for site in state if site[0] == "a"}
                assert sites == {3}
                break
        else:
            raise AssertionError("return op not reached")

    def test_parameters_reach_entry(self):
        fn, cfg, analysis, solution = self.states_at("""\
            def f(a, b=1):
                return a
            """)
        entry_out = solution.block_in[cfg.rpo()[1]] \
            if len(cfg.rpo()) > 1 else analysis.initial()
        names = {site[0] for site in analysis.initial()}
        assert names == {"a", "b"}
        assert all(site[1] == 0 for site in analysis.initial())
        assert entry_out >= analysis.initial()


def held_at_line(source, lineno):
    """Held lock tokens immediately before the op starting at ``lineno``."""
    fn, cfg = fn_cfg(source)
    model = LockModel(self_locks={"_lock", "_a", "_b"}, global_locks=set())
    analysis = LockStateAnalysis(model)
    solution = solve(cfg, analysis)
    for op, state in iter_op_states(cfg, analysis, solution):
        if op.kind == "stmt" and op.node.lineno == lineno:
            return held_tokens(state)
    raise AssertionError(f"no stmt op at line {lineno}")


class TestLockLattice:
    def test_held_inside_with(self):
        assert held_at_line("""\
            def f(self):
                with self._lock:
                    work()
            """, 3) == ("self._lock",)

    def test_released_after_with(self):
        assert held_at_line("""\
            def f(self):
                with self._lock:
                    work()
                after()
            """, 4) == ()

    def test_one_sided_acquire_does_not_survive_the_join(self):
        # Must-analysis: held only if held on every path into the merge.
        assert held_at_line("""\
            def f(self, flag):
                if flag:
                    self._lock.acquire()
                after()
            """, 4) == ()

    def test_acquire_on_all_paths_with_same_region_survives(self):
        assert held_at_line("""\
            def f(self):
                self._lock.acquire()
                if probe():
                    work()
                after()
                self._lock.release()
            """, 5) == ("self._lock",)

    def test_nested_with_holds_both(self):
        assert held_at_line("""\
            def f(self):
                with self._a:
                    with self._b:
                        work()
            """, 4) == ("self._a", "self._b")

    def test_explicit_release_clears_the_token(self):
        assert held_at_line("""\
            def f(self):
                self._lock.acquire()
                self._lock.release()
                after()
            """, 4) == ()
