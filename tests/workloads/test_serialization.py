"""Tests for workload save/load round trips."""

import pytest

from repro.workloads.serialization import load_workload, save_workload


def test_round_trip_conjunctive(tmp_path, conjunctive_workload):
    path = tmp_path / "wl.tsv"
    save_workload(conjunctive_workload, path)
    loaded = load_workload(path)
    assert loaded.name == conjunctive_workload.name
    assert len(loaded) == len(conjunctive_workload)
    for original, restored in zip(conjunctive_workload, loaded):
        assert restored.cardinality == original.cardinality
        assert restored.num_attributes == original.num_attributes
        assert restored.num_predicates == original.num_predicates
        assert restored.query.to_sql() == original.query.to_sql()


def test_round_trip_mixed(tmp_path, mixed_workload):
    """Mixed queries (with OR and parentheses) survive the text format."""
    path = tmp_path / "mixed.tsv"
    save_workload(mixed_workload, path)
    loaded = load_workload(path)
    for original, restored in zip(mixed_workload, loaded):
        assert restored.query.compound_form() == original.query.compound_form()


def test_round_trip_joins(tmp_path, joblight_bench):
    path = tmp_path / "joins.tsv"
    save_workload(joblight_bench, path)
    loaded = load_workload(path)
    for original, restored in zip(joblight_bench, loaded):
        assert restored.query.joins == original.query.joins
        assert restored.query.tables == original.query.tables


def test_missing_header_rejected(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("10\t1\t1\tSELECT count(*) FROM t WHERE a > 1\n")
    with pytest.raises(ValueError, match="missing header"):
        load_workload(path)


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("# workload: w\n10\t1\tmissing-sql\n")
    with pytest.raises(ValueError, match="4 tab-separated"):
        load_workload(path)


def test_blank_lines_tolerated(tmp_path, conjunctive_workload):
    path = tmp_path / "wl.tsv"
    save_workload(conjunctive_workload, path)
    path.write_text(path.read_text() + "\n\n")
    assert len(load_workload(path)) == len(conjunctive_workload)
