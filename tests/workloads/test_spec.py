"""Tests for the workload value objects."""

import numpy as np
import pytest

from repro.sql.parser import parse_query
from repro.workloads.spec import LabeledQuery, Workload


def make_item(card=10, attrs=1, preds=2):
    return LabeledQuery(
        query=parse_query("SELECT count(*) FROM t WHERE a > 1"),
        cardinality=card, num_attributes=attrs, num_predicates=preds,
    )


def test_labeled_query_rejects_empty_results():
    with pytest.raises(ValueError, match="non-empty"):
        make_item(card=0)


def test_workload_accessors():
    workload = Workload([make_item(5), make_item(7)], "w")
    assert len(workload) == 2
    np.testing.assert_array_equal(workload.cardinalities, [5.0, 7.0])
    assert len(workload.queries) == 2
    assert workload[1].cardinality == 7


def test_empty_workload_rejected():
    with pytest.raises(ValueError, match="at least one"):
        Workload([], "w")


def test_split_disjoint():
    items = [make_item(i + 1) for i in range(10)]
    workload = Workload(items, "w")
    train, test = workload.split(7)
    assert len(train) == 7
    assert len(test) == 3
    assert train.name.endswith("-train")
    assert test.name.endswith("-test")


def test_split_bounds():
    workload = Workload([make_item(), make_item()], "w")
    with pytest.raises(ValueError):
        workload.split(0)
    with pytest.raises(ValueError):
        workload.split(2)


def test_filter():
    workload = Workload([make_item(card=1), make_item(card=100)], "w")
    big = workload.filter(lambda it: it.cardinality > 10)
    assert len(big) == 1
    with pytest.raises(ValueError, match="removed every"):
        workload.filter(lambda it: False)


def test_grouping_helpers():
    items = [make_item(attrs=1, preds=2), make_item(attrs=1, preds=3),
             make_item(attrs=3, preds=6)]
    workload = Workload(items, "w")
    by_attrs = workload.by_num_attributes()
    assert sorted(by_attrs) == [1, 3]
    assert len(by_attrs[1]) == 2
    by_preds = workload.by_num_predicates()
    assert sorted(by_preds) == [2, 3, 6]
