"""Tests for the conjunctive / mixed / JOB-light workload generators."""

import numpy as np
import pytest

from repro.sql.executor import cardinality, selection_mask
from repro.workloads import (
    drift_split,
    generate_conjunctive_workload,
    generate_joblight_benchmark,
    generate_mixed_workload,
)
from repro.workloads.joblight import (
    generate_balanced_training,
    generate_join_queries,
)


class TestConjunctiveWorkload:
    def test_all_results_non_empty(self, conjunctive_workload, small_forest):
        for item in list(conjunctive_workload)[:50]:
            assert item.cardinality >= 1

    def test_labels_are_true_cardinalities(self, conjunctive_workload,
                                           small_forest):
        for item in list(conjunctive_workload)[:30]:
            assert item.cardinality == cardinality(item.query, small_forest)

    def test_metadata_consistent(self, conjunctive_workload):
        for item in list(conjunctive_workload)[:30]:
            assert item.num_attributes == len(item.query.attributes)
            assert item.num_predicates == len(item.query.predicates)

    def test_all_queries_conjunctive(self, conjunctive_workload):
        assert all(item.query.is_conjunctive()
                   for item in conjunctive_workload)

    def test_attribute_bounds_respected(self, small_forest):
        workload = generate_conjunctive_workload(
            small_forest, 50, min_attributes=2, max_attributes=3, seed=9)
        counts = {item.num_attributes for item in workload}
        assert counts <= {2, 3}

    def test_deterministic_in_seed(self, small_forest):
        a = generate_conjunctive_workload(small_forest, 20, seed=42)
        b = generate_conjunctive_workload(small_forest, 20, seed=42)
        assert [i.query.to_sql() for i in a] == [i.query.to_sql() for i in b]

    def test_ranges_and_not_equals_shape(self, conjunctive_workload):
        """Each attribute gets one closed range (>= and <=) plus optional
        <> exclusions — the paper's generation recipe."""
        from repro.sql.ast import Op
        item = next(it for it in conjunctive_workload if it.num_predicates > 2)
        by_attr = {}
        for pred in item.query.predicates:
            by_attr.setdefault(pred.attribute, []).append(pred.op)
        for ops in by_attr.values():
            assert ops.count(Op.GE) == 1
            assert ops.count(Op.LE) == 1
            assert all(op in (Op.GE, Op.LE, Op.NE) for op in ops)

    def test_invalid_parameters(self, small_forest):
        with pytest.raises(ValueError):
            generate_conjunctive_workload(small_forest, 0)
        with pytest.raises(ValueError):
            generate_conjunctive_workload(small_forest, 5, min_attributes=0)
        with pytest.raises(ValueError):
            generate_conjunctive_workload(small_forest, 5, max_attributes=999)


class TestMixedWorkload:
    def test_contains_disjunctions(self, mixed_workload):
        assert any(not item.query.is_conjunctive() for item in mixed_workload)

    def test_all_are_valid_mixed_queries(self, mixed_workload):
        """Every query normalises under Definition 3.3."""
        for item in list(mixed_workload)[:50]:
            form = item.query.compound_form()
            assert len(form) == item.num_attributes

    def test_branch_limit_respected(self, small_forest):
        workload = generate_mixed_workload(small_forest, 40, max_branches=2,
                                           seed=13)
        for item in workload:
            for branches in item.query.compound_form().values():
                assert len(branches) <= 2

    def test_labels_are_true_cardinalities(self, mixed_workload, small_forest):
        for item in list(mixed_workload)[:30]:
            mask = selection_mask(item.query.where, small_forest)
            assert item.cardinality == int(mask.sum())

    def test_mean_cardinality_exceeds_conjunctive(self, conjunctive_workload,
                                                  mixed_workload):
        """Disjunctions only widen queries, so mixed results are larger on
        average (the paper reports 307k vs 175k)."""
        assert (mixed_workload.cardinalities.mean()
                > conjunctive_workload.cardinalities.mean())


class TestJoblightWorkloads:
    def test_benchmark_shape(self, joblight_bench):
        for item in joblight_bench:
            assert 3 <= len(item.query.tables) <= 6  # 2-5 joins + title
            assert item.query.tables[0] == "title"
            assert len(item.query.joins) == len(item.query.tables) - 1
            assert 1 <= item.num_attributes <= 4
            assert item.cardinality >= 10

    def test_benchmark_conjunctive_only(self, joblight_bench):
        assert all(item.query.is_conjunctive() for item in joblight_bench)

    def test_training_covers_all_star_subschemata(self, imdb_schema):
        train = generate_balanced_training(imdb_schema, 3, seed=33)
        table_sets = {frozenset(item.query.tables) for item in train}
        assert len(table_sets) == 31  # all non-empty child subsets + title

    def test_labels_are_true_cardinalities(self, joblight_bench, imdb_schema):
        for item in list(joblight_bench)[:10]:
            assert item.cardinality == cardinality(item.query, imdb_schema)

    def test_invalid_join_bounds(self, imdb_schema):
        with pytest.raises(ValueError, match="join bounds"):
            generate_join_queries(imdb_schema, 5, min_joins=0)
        with pytest.raises(ValueError, match="join bounds"):
            generate_join_queries(imdb_schema, 5, max_joins=99)

    def test_deterministic_in_seed(self, imdb_schema):
        a = generate_joblight_benchmark(imdb_schema, num_queries=5)
        b = generate_joblight_benchmark(imdb_schema, num_queries=5)
        assert [i.query.to_sql() for i in a] == [i.query.to_sql() for i in b]


class TestDriftSplit:
    def test_split_bounds(self, conjunctive_workload):
        train, test = drift_split(conjunctive_workload)
        assert all(item.num_attributes <= 2 for item in train)
        assert all(item.num_attributes >= 3 for item in test)

    def test_custom_bounds(self, conjunctive_workload):
        train, test = drift_split(conjunctive_workload,
                                  train_max_attributes=3,
                                  test_min_attributes=5)
        assert all(item.num_attributes <= 3 for item in train)
        assert all(item.num_attributes >= 5 for item in test)

    def test_overlapping_bounds_rejected(self, conjunctive_workload):
        with pytest.raises(ValueError, match="requires"):
            drift_split(conjunctive_workload, train_max_attributes=3,
                        test_min_attributes=3)

    def test_drifted_test_means_differ(self, conjunctive_workload):
        """High-dimensional queries have smaller result sizes — the drift
        the model must compensate (Section 5.5.1)."""
        train, test = drift_split(conjunctive_workload)
        assert test.cardinalities.mean() < train.cardinalities.mean()
