"""Tests for the SQL parser."""

import pytest

from repro.sql.ast import And, Op, Or, SimplePredicate, UnsupportedQueryError
from repro.sql.parser import (SqlSyntaxError, bind_template,
                              fingerprint_sql, make_template,
                              parse_query, parse_where)


class TestParseWhere:
    def test_single_comparison(self):
        expr = parse_where("A > 5")
        assert expr == SimplePredicate("A", Op.GT, 5.0)

    def test_all_operators(self):
        for symbol, op in (("=", Op.EQ), ("<>", Op.NE), ("!=", Op.NE),
                           ("<", Op.LT), ("<=", Op.LE), (">", Op.GT),
                           (">=", Op.GE)):
            expr = parse_where(f"A {symbol} 1")
            assert expr.op is op

    def test_negative_and_float_literals(self):
        assert parse_where("A > -5").value == -5.0
        assert parse_where("A <= 4.25").value == 4.25

    def test_and_precedence_over_or(self):
        expr = parse_where("A > 1 AND A < 5 OR A = 9")
        assert isinstance(expr, Or)
        assert isinstance(expr.children[0], And)

    def test_parentheses_override(self):
        expr = parse_where("A > 1 AND (A < 5 OR A = 9)")
        assert isinstance(expr, And)
        assert isinstance(expr.children[1], Or)

    def test_keywords_case_insensitive(self):
        expr = parse_where("A > 1 and A < 5 Or A = 9")
        assert isinstance(expr, Or)

    def test_rejects_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_where("A > 1 B")

    def test_rejects_join_in_where_helper(self):
        with pytest.raises(UnsupportedQueryError):
            parse_where("t1.a = t2.b")

    def test_rejects_literal_on_left(self):
        with pytest.raises(SqlSyntaxError):
            parse_where("5 > A")

    def test_rejects_unknown_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            parse_where("A > 5 ; DROP TABLE")


class TestParseQuery:
    def test_minimal_query(self):
        query = parse_query("SELECT count(*) FROM t")
        assert query.tables == ("t",)
        assert query.where is None

    def test_where_clause(self):
        query = parse_query("SELECT count(*) FROM t WHERE A >= 2 AND B <> 7")
        assert len(query.predicates) == 2

    def test_join_extraction(self):
        query = parse_query(
            "SELECT count(*) FROM a, b WHERE a.id = b.a_id AND a.v > 3"
        )
        assert len(query.joins) == 1
        assert query.joins[0].left_table == "a"
        assert query.joins[0].right_column == "a_id"
        assert query.predicates == (SimplePredicate("a.v", Op.GT, 3.0),)

    def test_join_only_query(self):
        query = parse_query("SELECT count(*) FROM a, b WHERE a.id = b.a_id")
        assert query.where is None
        assert len(query.joins) == 1

    def test_group_by(self):
        query = parse_query("SELECT count(*) FROM t GROUP BY A, B")
        assert query.group_by == ("A", "B")

    def test_trailing_semicolon_tolerated(self):
        query = parse_query("SELECT count(*) FROM t WHERE A = 1;")
        assert len(query.predicates) == 1

    def test_join_must_be_top_level(self):
        with pytest.raises(UnsupportedQueryError, match="top-level"):
            parse_query(
                "SELECT count(*) FROM a, b WHERE a.v > 1 OR a.id = b.a_id"
            )

    def test_join_requires_qualified_names(self):
        with pytest.raises(SqlSyntaxError, match="qualified"):
            parse_query("SELECT count(*) FROM a, b WHERE id = a_id")

    def test_non_equi_join_rejected(self):
        with pytest.raises(SqlSyntaxError, match="equi-join"):
            parse_query("SELECT count(*) FROM a, b WHERE a.id < b.a_id")

    def test_paper_example_query(self):
        """The Section 5 example query parses into the expected shape."""
        query = parse_query(
            "SELECT count(*) FROM forest "
            "WHERE A7 >= 160 AND A7 <= 225 AND "
            "A8 >= 45 AND A8 <= 237 AND A8 <> 220 AND A8 <> 186"
        )
        assert query.tables == ("forest",)
        assert len(query.predicates) == 6
        assert query.is_conjunctive()

    def test_paper_mixed_example_structure(self):
        """The Definition 3.3 example (integer-encoded) parses as a mixed query."""
        query = parse_query(
            "SELECT count(*) FROM orders WHERE "
            "(o_orderdate >= 19940101 AND o_orderdate <= 19941231 "
            " AND o_orderdate <> 19940704 "
            " OR o_orderdate >= 19960101 AND o_orderdate <= 19961231 "
            " AND o_orderdate <> 19960704) "
            "AND (o_orderstatus = 2 OR o_orderstatus = 1) "
            "AND (o_totalprice > 1000 AND o_totalprice < 2000)"
        )
        form = query.compound_form()
        assert set(form) == {"o_orderdate", "o_orderstatus", "o_totalprice"}
        assert len(form["o_orderdate"]) == 2
        assert len(form["o_orderstatus"]) == 2
        assert len(form["o_totalprice"]) == 1


class TestRoundTrip:
    def test_sql_round_trip_preserves_structure(self):
        sql = ("SELECT count(*) FROM t WHERE (A >= 1 AND A <= 9 AND A <> 5 "
               "OR A = 42) AND B < 7")
        query = parse_query(sql)
        reparsed = parse_query(query.to_sql())
        assert reparsed.compound_form() == query.compound_form()

    def test_join_query_round_trip(self):
        sql = ("SELECT count(*) FROM a, b WHERE a.id = b.a_id AND a.v > 3 "
               "AND b.w <= 9")
        query = parse_query(sql)
        reparsed = parse_query(query.to_sql())
        assert reparsed.joins == query.joins
        assert reparsed.predicates == query.predicates


class TestStatementTemplates:
    """fingerprint_sql / make_template / bind_template — the textual
    prepared-statement layer the serve parse cache stands on."""

    def test_fingerprint_masks_numeric_literals_in_order(self):
        key, literals = fingerprint_sql(
            "SELECT count(*) FROM t WHERE A1 > 5 AND A2 <= -3.5 OR A1 = 40")
        assert key == ("SELECT count(*) FROM t WHERE A1 > ? "
                       "AND A2 <= ? OR A1 = ?")
        assert literals == (5.0, -3.5, 40.0)

    def test_fingerprint_keeps_identifier_digits_and_strings(self):
        key, literals = fingerprint_sql(
            "SELECT count(*) FROM t WHERE name = 'oak 42' AND A1 > 7")
        assert "'oak 42'" in key  # string shape survives, number masked
        assert "A1" in key
        assert literals == (7.0,)

    def test_instances_of_one_statement_share_a_fingerprint(self):
        a, lits_a = fingerprint_sql("SELECT count(*) FROM t WHERE A > 1")
        b, lits_b = fingerprint_sql("SELECT count(*) FROM t WHERE A > 250")
        assert a == b
        assert (lits_a, lits_b) == ((1.0,), (250.0,))

    def test_template_rebinds_to_any_instance(self):
        sql = ("SELECT count(*) FROM t WHERE (A >= 1 AND A <= 9 OR B = 4) "
               "AND C <> -2.5")
        _, literals = fingerprint_sql(sql)
        template = make_template(parse_query(sql), literals)
        assert template is not None
        fresh = (42.0, 77.5, -1.0, 0.0)
        expected_sql = ("SELECT count(*) FROM t WHERE (A >= 42 AND A <= 77.5 "
                        "OR B = -1) AND C <> 0")
        assert bind_template(template, fresh) == parse_query(expected_sql)

    def test_template_round_trips_string_predicates(self):
        sql = "SELECT count(*) FROM t WHERE name = 'oak' AND A1 > 5"
        query = parse_query(sql)
        _, literals = fingerprint_sql(sql)
        template = make_template(query, literals)
        assert template is not None
        assert bind_template(template, literals) == query

    def test_literal_count_mismatch_is_uncacheable(self):
        query = parse_query("SELECT count(*) FROM t WHERE A > 1 AND B < 2")
        assert make_template(query, (1.0,)) is None
        assert make_template(query, (1.0, 2.0, 3.0)) is None

    def test_predicate_free_statement(self):
        sql = "SELECT count(*) FROM t"
        query = parse_query(sql)
        template = make_template(query, ())
        assert template is not None
        assert bind_template(template, ()) == query
