"""Property-based executor tests: vectorised masks vs row-by-row evaluation.

The executor evaluates boolean expressions with numpy; these tests pit
it against a direct per-row Python evaluation on random tables and
random boolean trees (including arbitrary nesting the workloads never
produce), so broadcasting or operator-mapping bugs cannot hide.
"""

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import Table
from repro.sql.ast import And, Op, Or, SimplePredicate
from repro.sql.executor import selection_mask

_PY_OPS = {
    Op.EQ: operator.eq, Op.NE: operator.ne, Op.LT: operator.lt,
    Op.LE: operator.le, Op.GT: operator.gt, Op.GE: operator.ge,
}


def evaluate_row(expr, row: dict) -> bool:
    """Reference semantics: evaluate an expression on one row."""
    if isinstance(expr, SimplePredicate):
        return _PY_OPS[expr.op](row[expr.attribute], expr.value)
    if isinstance(expr, And):
        return all(evaluate_row(c, row) for c in expr.children)
    if isinstance(expr, Or):
        return any(evaluate_row(c, row) for c in expr.children)
    raise TypeError(type(expr))


tables = st.integers(min_value=1, max_value=40).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(min_value=-5, max_value=5),
                 min_size=n, max_size=n),
        st.lists(st.integers(min_value=-5, max_value=5),
                 min_size=n, max_size=n),
    )
).map(lambda cols: Table("t", {
    "x": np.asarray(cols[0], dtype=float),
    "y": np.asarray(cols[1], dtype=float),
}))

predicates = st.builds(
    SimplePredicate,
    attribute=st.sampled_from(["x", "y"]),
    op=st.sampled_from(list(Op)),
    value=st.integers(min_value=-6, max_value=6).map(float),
)


def expressions(depth: int):
    if depth <= 0:
        return predicates
    sub = expressions(depth - 1)
    return st.one_of(
        predicates,
        st.lists(sub, min_size=1, max_size=3).map(And),
        st.lists(sub, min_size=1, max_size=3).map(Or),
    )


class TestMaskAgainstRowEvaluation:
    @given(tables, expressions(depth=3))
    @settings(max_examples=200, deadline=None)
    def test_masks_match_reference(self, table, expr):
        mask = selection_mask(expr, table)
        x = table.column("x").values
        y = table.column("y").values
        expected = [evaluate_row(expr, {"x": x[i], "y": y[i]})
                    for i in range(table.row_count)]
        np.testing.assert_array_equal(mask, expected)

    @given(tables, expressions(depth=2), expressions(depth=2))
    @settings(max_examples=100, deadline=None)
    def test_de_morgan_consistency(self, table, left, right):
        """AND/OR masks satisfy set algebra: |A ∧ B| + |A ∨ B| = |A| + |B|."""
        a = selection_mask(left, table)
        b = selection_mask(right, table)
        both = selection_mask(And([left, right]), table)
        either = selection_mask(Or([left, right]), table)
        assert both.sum() + either.sum() == a.sum() + b.sum()
