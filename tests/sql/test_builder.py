"""Tests for the fluent query builder."""

import numpy as np
import pytest

from repro.sql.ast import And, Op, Or
from repro.sql.builder import col, query
from repro.sql.executor import cardinality, selection_mask
from repro.sql.parser import parse_query


class TestColumnOperators:
    def test_all_comparisons(self):
        for expr, op in ((col("A") == 5, Op.EQ), (col("A") != 5, Op.NE),
                         (col("A") < 5, Op.LT), (col("A") <= 5, Op.LE),
                         (col("A") > 5, Op.GT), (col("A") >= 5, Op.GE)):
            assert expr.node.op is op
            assert expr.node.attribute == "A"
            assert expr.node.value == 5.0

    def test_between(self):
        expr = col("A").between(3, 9)
        assert expr.to_sql() == "A >= 3 AND A <= 9"

    def test_and_or_composition(self):
        expr = (col("A") > 1) & (col("A") < 9) | (col("A") == 42)
        assert isinstance(expr.node, Or)
        assert isinstance(expr.node.children[0], And)

    def test_column_not_hashable(self):
        with pytest.raises(TypeError):
            {col("A"): 1}


class TestQueryBuilder:
    def test_single_table_query(self, tiny_table):
        built = (query("tiny")
                 .where(col("x").between(3, 8))
                 .where(col("y") != 2)
                 .build())
        parsed = parse_query(
            "SELECT count(*) FROM tiny WHERE x >= 3 AND x <= 8 AND y <> 2")
        np.testing.assert_array_equal(
            selection_mask(built.where, tiny_table),
            selection_mask(parsed.where, tiny_table),
        )

    def test_mixed_query_matches_paper_form(self, tiny_table):
        built = (query("tiny")
                 .where((col("x") <= 3) | (col("x") >= 8))
                 .where(col("z") == 5)
                 .build())
        form = built.compound_form()
        assert set(form) == {"x", "z"}
        assert len(form["x"]) == 2

    def test_join_query(self, imdb_schema):
        built = (query("title", "cast_info")
                 .join("cast_info.movie_id", "title.id")
                 .where(col("title.production_year") > 2000)
                 .build())
        parsed = parse_query(
            "SELECT count(*) FROM title, cast_info WHERE "
            "cast_info.movie_id = title.id AND title.production_year > 2000")
        assert cardinality(built, imdb_schema) == cardinality(parsed,
                                                              imdb_schema)

    def test_group_by(self):
        built = query("t").where(col("a") > 1).group_by("b", "c").build()
        assert built.group_by == ("b", "c")

    def test_no_conditions(self):
        built = query("t").build()
        assert built.where is None

    def test_requires_tables(self):
        with pytest.raises(ValueError, match="at least one table"):
            query()

    def test_join_requires_qualified_names(self):
        with pytest.raises(ValueError, match="qualified"):
            query("a", "b").join("x", "b.y")

    def test_where_rejects_non_expr(self):
        with pytest.raises(TypeError, match="col\\(\\)"):
            query("t").where("a > 1")

    def test_sql_round_trip(self, tiny_table):
        built = (query("tiny")
                 .where((col("x") > 2) & (col("x") < 9) | (col("x") == 1))
                 .build())
        reparsed = parse_query(built.to_sql())
        np.testing.assert_array_equal(
            selection_mask(built.where, tiny_table),
            selection_mask(reparsed.where, tiny_table),
        )
