"""Tests for string predicates end to end (Section 6 made real).

Dictionary-encoded columns + string/LIKE predicates in the AST and
parser + desugaring to numeric code predicates + direct executor
support.
"""

import numpy as np
import pytest

from repro.data.column import Column
from repro.data.table import Table
from repro.featurize import ConjunctiveEncoding
from repro.sql.ast import (
    LikePredicate,
    Op,
    Query,
    StringPredicate,
    UnsupportedQueryError,
    iter_simple_predicates,
)
from repro.sql.executor import cardinality, selection_mask
from repro.sql.parser import SqlSyntaxError, parse_query, parse_where
from repro.sql.strings import desugar_strings

NAMES = ["alice", "alicia", "bob", "carol", "carlos", "dave",
         "erin", "frank", "alice", "bob", "bob", "carol"]


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(9)
    return Table("users", [
        Column.from_strings("name", NAMES),
        Column("age", rng.integers(18, 65, len(NAMES)).astype(float)),
    ])


class TestDictionaryColumn:
    def test_from_strings_builds_sorted_dictionary(self, table):
        column = table.column("name")
        assert column.dictionary == tuple(sorted(set(NAMES)))
        # Codes decode back to the original values.
        decoded = [column.dictionary[int(c)] for c in column.values]
        assert decoded == NAMES

    def test_encode(self, table):
        column = table.column("name")
        assert column.dictionary[column.encode("bob")] == "bob"
        with pytest.raises(KeyError):
            column.encode("zoe")

    def test_prefix_code_range(self, table):
        column = table.column("name")
        lo, hi = column.prefix_code_range("ali")
        assert [column.dictionary[i] for i in range(lo, hi)] == \
            ["alice", "alicia"]
        assert column.prefix_code_range("zz") == \
            (len(column.dictionary), len(column.dictionary))
        assert column.prefix_code_range("") == (0, len(column.dictionary))

    def test_numeric_column_rejects_string_api(self, table):
        with pytest.raises(TypeError, match="not dictionary-encoded"):
            table.column("age").encode("x")

    def test_dictionary_validation(self):
        with pytest.raises(ValueError, match="sorted"):
            Column("c", np.asarray([0.0, 1.0]), dictionary=["b", "a"])
        with pytest.raises(ValueError, match="duplicates"):
            Column("c", np.asarray([0.0]), dictionary=["a", "a"])
        with pytest.raises(ValueError, match="integer codes"):
            Column("c", np.asarray([0.5]), dictionary=["a", "b"])
        with pytest.raises(ValueError, match="range"):
            Column("c", np.asarray([5.0]), dictionary=["a", "b"])
        with pytest.raises(ValueError, match="empty"):
            Column("c", np.asarray([0.0]), dictionary=[])


class TestParserStrings:
    def test_string_equality(self):
        expr = parse_where("name = 'bob'")
        assert expr == StringPredicate("name", Op.EQ, "bob")

    def test_string_inequality(self):
        expr = parse_where("name <> 'bob'")
        assert expr.op is Op.NE

    def test_like_prefix(self):
        expr = parse_where("name LIKE 'ali%'")
        assert expr == LikePredicate("name", "ali")

    def test_like_without_wildcard_is_equality(self):
        expr = parse_where("name LIKE 'bob'")
        assert expr == StringPredicate("name", Op.EQ, "bob")

    def test_unsupported_patterns_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="prefix"):
            parse_where("name LIKE '%bob'")
        with pytest.raises(UnsupportedQueryError, match="prefix"):
            parse_where("name LIKE 'a%b%'")

    def test_string_with_range_operator_rejected(self):
        with pytest.raises(SqlSyntaxError, match="string literals"):
            parse_where("name > 'bob'")

    def test_like_requires_quoted_pattern(self):
        with pytest.raises(SqlSyntaxError, match="quoted"):
            parse_where("name LIKE bob")

    def test_round_trip_sql(self):
        sql = "SELECT count(*) FROM users WHERE name LIKE 'ali%' AND age > 30"
        assert parse_query(sql).to_sql() == sql


class TestExecutorStrings:
    def count(self, table, sql):
        return cardinality(parse_query(sql), table)

    def test_equality_mask(self, table):
        assert self.count(
            table, "SELECT count(*) FROM users WHERE name = 'bob'") == 3

    def test_inequality_mask(self, table):
        assert self.count(
            table, "SELECT count(*) FROM users WHERE name <> 'bob'") == 9

    def test_like_mask(self, table):
        assert self.count(
            table, "SELECT count(*) FROM users WHERE name LIKE 'ali%'") == 3
        assert self.count(
            table, "SELECT count(*) FROM users WHERE name LIKE 'car%'") == 3

    def test_absent_value(self, table):
        assert self.count(
            table, "SELECT count(*) FROM users WHERE name = 'zoe'") == 0
        assert self.count(
            table, "SELECT count(*) FROM users WHERE name <> 'zoe'") == 12

    def test_mixed_string_numeric_query(self, table):
        sql = ("SELECT count(*) FROM users WHERE "
               "(name LIKE 'ali%' OR name = 'bob') AND age >= 18")
        assert self.count(table, sql) == 6

    def test_string_predicate_on_numeric_column_rejected(self, table):
        with pytest.raises(TypeError, match="dictionary-encoded"):
            self.count(table, "SELECT count(*) FROM users WHERE age = 'x'")


class TestDesugaring:
    def test_desugared_query_has_same_result(self, table):
        for sql in (
            "SELECT count(*) FROM users WHERE name = 'bob'",
            "SELECT count(*) FROM users WHERE name <> 'carol' AND age > 25",
            "SELECT count(*) FROM users WHERE name LIKE 'ali%' OR name LIKE 'c%'",
            "SELECT count(*) FROM users WHERE name = 'zoe'",
            "SELECT count(*) FROM users WHERE name LIKE 'zz%'",
        ):
            query = parse_query(sql)
            desugared = desugar_strings(query, table)
            assert cardinality(desugared, table) == cardinality(query, table)
            # And the result contains only numeric predicates.
            if desugared.where is not None:
                list(iter_simple_predicates(desugared.where))

    def test_single_value_prefix_becomes_equality(self, table):
        query = parse_query(
            "SELECT count(*) FROM users WHERE name LIKE 'bob%'")
        desugared = desugar_strings(query, table)
        assert desugared.where.op is Op.EQ

    def test_featurizers_reject_undesugared_strings(self, table):
        enc = ConjunctiveEncoding(table, max_partitions=8)
        query = parse_query("SELECT count(*) FROM users WHERE name = 'bob'")
        with pytest.raises(UnsupportedQueryError, match="desugar"):
            enc.featurize(query)

    def test_featurizers_accept_desugared_strings(self, table):
        enc = ConjunctiveEncoding(table, max_partitions=8,
                                  attr_selectivity=False)
        query = parse_query(
            "SELECT count(*) FROM users WHERE name LIKE 'ali%'")
        vector = enc.featurize(desugar_strings(query, table))
        # The name column is exact (8 distinct values): the two 'ali'
        # codes are 1, the rest 0.
        slices = enc.attribute_slices()
        segment = vector[slices["name"]]
        assert segment.sum() == 2.0

    def test_compound_form_works_after_desugar(self, table):
        query = parse_query(
            "SELECT count(*) FROM users WHERE "
            "(name LIKE 'ali%' OR name = 'frank') AND age < 60")
        desugared = desugar_strings(query, table)
        form = desugared.compound_form()
        assert set(form) == {"name", "age"}
        assert len(form["name"]) == 2


class TestEndToEndLearned:
    def test_train_and_estimate_with_string_predicates(self, table):
        """The full Section 6 story: a learned estimator answers LIKE
        queries after desugaring."""
        from repro.estimators import LearnedEstimator
        from repro.models import GradientBoostingRegressor

        rng = np.random.default_rng(10)
        # Bigger table for training signal.
        names = [NAMES[i] for i in rng.integers(0, len(NAMES), 3_000)]
        big = Table("users", [
            Column.from_strings("name", names),
            Column("age", rng.integers(18, 65, 3_000).astype(float)),
        ])
        from repro.workloads import generate_conjunctive_workload
        workload = generate_conjunctive_workload(big, 400, max_attributes=2,
                                                 seed=12)
        estimator = LearnedEstimator(
            ConjunctiveEncoding(big, max_partitions=16),
            GradientBoostingRegressor(n_estimators=40),
        ).fit(workload.queries, workload.cardinalities)

        query = parse_query(
            "SELECT count(*) FROM users WHERE name LIKE 'ali%' AND age < 40")
        desugared = desugar_strings(query, big)
        estimate = estimator.estimate(desugared)
        truth = cardinality(query, big)
        assert truth > 0
        assert max(estimate / truth, truth / estimate) < 5.0
