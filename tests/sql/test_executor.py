"""Tests for the counting executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import ForeignKey, Schema
from repro.data.table import Table
from repro.sql.ast import (
    And,
    JoinPredicate,
    Op,
    Or,
    Query,
    SimplePredicate,
    UnsupportedQueryError,
)
from repro.sql.executor import (
    cardinality,
    group_count,
    per_table_selections,
    selection_mask,
)
from repro.sql.parser import parse_query, parse_where


def p(attr, op, val):
    return SimplePredicate(attr, Op.from_symbol(op), val)


class TestSelectionMask:
    def test_none_selects_all(self, tiny_table):
        assert selection_mask(None, tiny_table).sum() == 10

    def test_each_operator(self, tiny_table):
        x = tiny_table.column("x").values
        cases = {
            "=": x == 5, "<>": x != 5, "<": x < 5,
            "<=": x <= 5, ">": x > 5, ">=": x >= 5,
        }
        for symbol, expected in cases.items():
            mask = selection_mask(p("x", symbol, 5), tiny_table)
            np.testing.assert_array_equal(mask, expected)

    def test_and_or_combination(self, tiny_table):
        expr = And([p("x", ">", 2), Or([p("y", "=", 1), p("z", "=", 7)])])
        mask = selection_mask(expr, tiny_table)
        x = tiny_table.column("x").values
        y = tiny_table.column("y").values
        z = tiny_table.column("z").values
        np.testing.assert_array_equal(mask, (x > 2) & ((y == 1) | (z == 7)))

    def test_qualified_attribute(self, tiny_table):
        mask = selection_mask(p("tiny.x", ">", 8), tiny_table)
        assert mask.sum() == 2

    def test_wrong_table_prefix_rejected(self, tiny_table):
        with pytest.raises(KeyError, match="does not belong"):
            selection_mask(p("other.x", ">", 8), tiny_table)


class TestSingleTableCardinality:
    def test_matches_mask_sum(self, tiny_table):
        query = Query.single_table("tiny", p("y", "=", 3))
        assert cardinality(query, tiny_table) == 4

    def test_join_query_rejected_on_table(self, tiny_table):
        query = Query(tables=("tiny", "other"),
                      joins=(JoinPredicate("tiny", "x", "other", "x"),))
        with pytest.raises(UnsupportedQueryError):
            cardinality(query, tiny_table)

    @given(st.integers(min_value=0, max_value=11),
           st.integers(min_value=0, max_value=11))
    @settings(max_examples=30, deadline=None)
    def test_range_cardinality_formula(self, tiny_table, lo, hi):
        query = Query.single_table(
            "tiny", And([p("x", ">=", lo), p("x", "<=", hi)])
        )
        x = tiny_table.column("x").values
        assert cardinality(query, tiny_table) == int(((x >= lo) & (x <= hi)).sum())


def brute_force_star_count(schema, query) -> int:
    """Nested-loop join count for validation (star joins around the hub)."""
    selections = per_table_selections(query, schema)
    hub = query.tables[0]
    hub_table = schema.table(hub)
    hub_mask = selection_mask(selections[hub], hub_table)
    total = 0
    hub_keys = hub_table.column("id").values
    child_data = []
    for join in query.joins:
        child = join.left_table if join.right_table == hub else join.right_table
        child_table = schema.table(child)
        child_mask = selection_mask(selections.get(child), child_table)
        child_data.append((child_table.column("movie_id").values, child_mask))
    for i in range(hub_table.row_count):
        if not hub_mask[i]:
            continue
        product = 1
        for keys, mask in child_data:
            product *= int(((keys == hub_keys[i]) & mask).sum())
            if product == 0:
                break
        total += product
    return total


class TestJoinCardinality:
    def make_schema(self):
        hub = Table("title", {
            "id": np.arange(1.0, 9.0),
            "year": np.asarray([1990, 1995, 2000, 2005, 2010, 2015, 2020, 2021],
                               dtype=np.float64),
        })
        a = Table("a", {
            "movie_id": np.asarray([1, 1, 2, 3, 3, 3, 8], dtype=np.float64),
            "v": np.asarray([1, 2, 1, 2, 3, 1, 9], dtype=np.float64),
        })
        b = Table("b", {
            "movie_id": np.asarray([1, 2, 2, 5, 8, 8], dtype=np.float64),
            "w": np.asarray([4, 4, 5, 6, 4, 5], dtype=np.float64),
        })
        return Schema([hub, a, b], [ForeignKey("a", "movie_id", "title", "id"),
                                    ForeignKey("b", "movie_id", "title", "id")])

    def test_two_way_join_no_filter(self):
        schema = self.make_schema()
        query = parse_query(
            "SELECT count(*) FROM title, a WHERE a.movie_id = title.id")
        assert cardinality(query, schema) == 7

    def test_three_way_star_join(self):
        schema = self.make_schema()
        query = parse_query(
            "SELECT count(*) FROM title, a, b "
            "WHERE a.movie_id = title.id AND b.movie_id = title.id")
        # title 1: 2*1, title 2: 1*2, title 8: 1*2 -> 6.
        assert cardinality(query, schema) == 6

    def test_star_join_with_filters(self):
        schema = self.make_schema()
        query = parse_query(
            "SELECT count(*) FROM title, a, b "
            "WHERE a.movie_id = title.id AND b.movie_id = title.id "
            "AND a.v = 1 AND b.w = 4")
        assert cardinality(query, schema) == brute_force_star_count(schema, query)

    def test_against_brute_force_on_generated_schema(self, imdb_schema):
        query = parse_query(
            "SELECT count(*) FROM title, cast_info, movie_keyword "
            "WHERE cast_info.movie_id = title.id "
            "AND movie_keyword.movie_id = title.id "
            "AND title.production_year > 2000 AND cast_info.role_id <= 3")
        assert cardinality(query, imdb_schema) == brute_force_star_count(
            imdb_schema, query)

    def test_cyclic_join_graph_rejected(self):
        schema = self.make_schema()
        query = Query(
            tables=("title", "a"),
            joins=(JoinPredicate("a", "movie_id", "title", "id"),
                   JoinPredicate("a", "v", "title", "year")),
        )
        with pytest.raises(UnsupportedQueryError, match="tree"):
            cardinality(query, schema)

    def test_disconnected_join_graph_rejected(self):
        schema = self.make_schema()
        query = Query(tables=("title", "a", "b"),
                      joins=(JoinPredicate("a", "movie_id", "title", "id"),))
        with pytest.raises(UnsupportedQueryError, match="tree"):
            cardinality(query, schema)

    def test_cross_table_selection_term_rejected(self):
        schema = self.make_schema()
        query = Query(
            tables=("title", "a"),
            joins=(JoinPredicate("a", "movie_id", "title", "id"),),
            where=Or([p("title.year", ">", 2000), p("a.v", "=", 1)]),
        )
        with pytest.raises(UnsupportedQueryError, match="spans tables"):
            cardinality(query, schema)


class TestPerTableSelections:
    def test_split_by_owner(self):
        schema = TestJoinCardinality().make_schema()
        query = parse_query(
            "SELECT count(*) FROM title, a WHERE a.movie_id = title.id "
            "AND title.year > 2000 AND a.v = 1 AND a.v <> 3")
        selections = per_table_selections(query, schema)
        assert selections["title"].to_sql() == "title.year > 2000"
        assert "a.v" in selections["a"].to_sql()

    def test_unqualified_attribute_resolved_by_uniqueness(self):
        schema = TestJoinCardinality().make_schema()
        query = Query(
            tables=("title", "a"),
            joins=(JoinPredicate("a", "movie_id", "title", "id"),),
            where=p("year", ">", 2000),
        )
        selections = per_table_selections(query, schema)
        assert selections["title"] is not None

    def test_ambiguous_attribute_rejected(self):
        schema = TestJoinCardinality().make_schema()
        query = Query(
            tables=("title", "a", "b"),
            joins=(JoinPredicate("a", "movie_id", "title", "id"),
                   JoinPredicate("b", "movie_id", "title", "id")),
            where=p("movie_id", ">", 1),
        )
        with pytest.raises(KeyError, match="ambiguous"):
            per_table_selections(query, schema)


class TestGroupCount:
    def test_counts_distinct_groups(self, tiny_table):
        query = Query.single_table("tiny", group_by=("y",))
        assert group_count(query, tiny_table) == 3

    def test_multi_attribute_groups(self, tiny_table):
        query = Query.single_table("tiny", group_by=("y", "z"))
        # (1,5) (2,5) (2,7) (3,7) -> 4 groups.
        assert group_count(query, tiny_table) == 4

    def test_with_filter(self, tiny_table):
        query = Query.single_table("tiny", where=parse_where("x > 6"),
                                   group_by=("y",))
        assert group_count(query, tiny_table) == 1

    def test_empty_selection(self, tiny_table):
        query = Query.single_table("tiny", where=parse_where("x > 99"),
                                   group_by=("y",))
        assert group_count(query, tiny_table) == 0

    def test_requires_group_by(self, tiny_table):
        with pytest.raises(ValueError, match="GROUP BY"):
            group_count(Query.single_table("tiny"), tiny_table)
