"""Fuzz tests: the parser fails *predictably* on malformed input.

Whatever garbage arrives, the contract is: either a parsed query or one
of the library's own error types (``SqlSyntaxError`` /
``UnsupportedQueryError``) — never an IndexError, RecursionError, or
other internal leak.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.ast import UnsupportedQueryError
from repro.sql.parser import SqlSyntaxError, parse_query, parse_where

EXPECTED = (SqlSyntaxError, UnsupportedQueryError)


class TestParserFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_never_leaks_internal_errors(self, text):
        try:
            parse_query(text)
        except EXPECTED:
            pass

    @given(st.text(alphabet="AB ()<>=!AND OR and or 0123456789.", max_size=80))
    @settings(max_examples=300, deadline=None)
    def test_sql_like_soup(self, soup):
        try:
            parse_where(soup)
        except EXPECTED:
            pass

    @given(st.lists(st.sampled_from(
        ["A", "B", ">", "<", "=", "<>", "AND", "OR", "(", ")", "5", "-3",
         "2.5"]), min_size=1, max_size=25).map(" ".join))
    @settings(max_examples=300, deadline=None)
    def test_token_shuffles(self, text):
        try:
            parse_where(text)
        except EXPECTED:
            pass

    def test_deeply_nested_parentheses(self):
        depth = 200
        sql = "(" * depth + "A > 1" + ")" * depth
        expr = parse_where(sql)
        assert expr.to_sql() == "A > 1"

    def test_very_long_conjunction(self):
        sql = " AND ".join(f"A <> {i}" for i in range(2_000))
        expr = parse_where(sql)
        assert len(list(expr.children)) == 2_000

    @pytest.mark.parametrize("bad", [
        "", "SELECT", "SELECT count(*)", "SELECT count(*) FROM",
        "SELECT count(*) FROM t WHERE", "SELECT count(*) FROM t WHERE A >",
        "SELECT count(*) FROM t WHERE A > 1 AND",
        "SELECT count(*) FROM t GROUP", "SELECT count(*) FROM t GROUP BY",
        "SELECT sum(*) FROM t",
    ])
    def test_truncated_statements(self, bad):
        with pytest.raises(EXPECTED):
            parse_query(bad)
