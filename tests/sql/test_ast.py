"""Tests for the query AST (repro.sql.ast)."""

import pytest

from repro.sql.ast import (
    And,
    JoinPredicate,
    Op,
    Or,
    Query,
    SimplePredicate,
    UnsupportedQueryError,
    attributes_of,
    is_conjunctive,
    iter_simple_predicates,
    to_compound_form,
)


def p(attr, op, val):
    return SimplePredicate(attr, Op.from_symbol(op), val)


class TestOp:
    def test_symbols_round_trip(self):
        for symbol in ("=", "<>", "<", "<=", ">", ">="):
            assert str(Op.from_symbol(symbol)) == symbol

    def test_bang_equals_alias(self):
        assert Op.from_symbol("!=") is Op.NE

    def test_unknown_symbol(self):
        with pytest.raises(ValueError, match="unknown"):
            Op.from_symbol("~")


class TestSimplePredicate:
    def test_to_sql_integer_literal(self):
        assert p("A", ">", 5).to_sql() == "A > 5"

    def test_to_sql_float_literal(self):
        assert p("A", "<=", 4.5).to_sql() == "A <= 4.5"

    def test_rejects_empty_attribute(self):
        with pytest.raises(ValueError):
            SimplePredicate("", Op.EQ, 1.0)

    def test_rejects_non_op(self):
        with pytest.raises(TypeError):
            SimplePredicate("A", ">", 1.0)  # string op, not Op


class TestBooleanNodes:
    def test_and_flattens_nested_ands(self):
        expr = And([And([p("A", ">", 1), p("A", "<", 5)]), p("B", "=", 2)])
        assert len(expr.children) == 3

    def test_or_flattens_nested_ors(self):
        expr = Or([Or([p("A", "=", 1), p("A", "=", 2)]), p("A", "=", 3)])
        assert len(expr.children) == 3

    def test_and_does_not_flatten_or(self):
        expr = And([Or([p("A", "=", 1), p("A", "=", 2)]), p("B", "=", 3)])
        assert len(expr.children) == 2

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            And([])
        with pytest.raises(ValueError):
            Or([])

    def test_sql_rendering_parenthesises_or_inside_and(self):
        expr = And([Or([p("A", "=", 1), p("A", "=", 2)]), p("B", "=", 3)])
        assert expr.to_sql() == "(A = 1 OR A = 2) AND B = 3"

    def test_iter_simple_predicates_order(self):
        expr = And([p("A", ">", 1), Or([p("B", "=", 2), p("B", "=", 3)])])
        values = [q.value for q in iter_simple_predicates(expr)]
        assert values == [1, 2, 3]

    def test_attributes_of_first_seen_order(self):
        expr = And([p("B", ">", 1), p("A", "<", 5), p("B", "<", 9)])
        assert attributes_of(expr) == ("B", "A")

    def test_is_conjunctive(self):
        assert is_conjunctive(And([p("A", ">", 1), p("B", "<", 2)]))
        assert not is_conjunctive(Or([p("A", ">", 1), p("A", "<", 2)]))
        assert is_conjunctive(p("A", ">", 1))


class TestCompoundForm:
    def test_single_predicate(self):
        form = to_compound_form(p("A", ">", 1))
        assert form == {"A": (((p("A", ">", 1)),),)} or \
            form["A"] == ((p("A", ">", 1),),)

    def test_conjunction_groups_by_attribute(self):
        expr = And([p("A", ">", 1), p("B", "=", 2), p("A", "<", 9)])
        form = to_compound_form(expr)
        assert set(form) == {"A", "B"}
        # A's compound is one conjunction branch with both predicates.
        assert len(form["A"]) == 1
        assert len(form["A"][0]) == 2

    def test_per_attribute_disjunction(self):
        expr = And([
            Or([And([p("A", ">", 1), p("A", "<", 5)]), p("A", "=", 9)]),
            p("B", ">=", 3),
        ])
        form = to_compound_form(expr)
        assert len(form["A"]) == 2  # two OR branches
        assert len(form["A"][0]) == 2
        assert len(form["A"][1]) == 1

    def test_and_inside_or_distributes(self):
        # (A=1 OR A=2) AND (A<5 OR A>7): a single-attribute tree in
        # non-DNF shape; the DNF has 4 branches.
        expr = And([
            Or([p("A", "=", 1), p("A", "=", 2)]),
            Or([p("A", "<", 5), p("A", ">", 7)]),
        ])
        form = to_compound_form(expr)
        assert len(form["A"]) == 4

    def test_cross_attribute_disjunction_rejected(self):
        expr = Or([p("A", ">", 1), p("B", "<", 5)])
        with pytest.raises(UnsupportedQueryError, match="Definition 3.3"):
            to_compound_form(expr)


class TestQuery:
    def test_single_table_constructor(self):
        query = Query.single_table("t", p("A", ">", 1))
        assert query.tables == ("t",)
        assert query.predicates == (p("A", ">", 1),)

    def test_requires_tables(self):
        with pytest.raises(ValueError, match="at least one table"):
            Query(tables=())

    def test_rejects_duplicate_tables(self):
        with pytest.raises(ValueError, match="duplicate"):
            Query(tables=("t", "t"))

    def test_join_must_reference_from_tables(self):
        join = JoinPredicate("a", "x", "ghost", "y")
        with pytest.raises(ValueError, match="missing"):
            Query(tables=("a", "b"), joins=(join,))

    def test_to_sql_round_shape(self):
        query = Query(
            tables=("a", "b"),
            joins=(JoinPredicate("a", "id", "b", "a_id"),),
            where=p("a.v", ">", 3),
        )
        sql = query.to_sql()
        assert sql.startswith("SELECT count(*) FROM a, b WHERE")
        assert "a.id = b.a_id" in sql
        assert "a.v > 3" in sql

    def test_group_by_rendering(self):
        query = Query.single_table("t", group_by=("A", "B"))
        assert query.to_sql().endswith("GROUP BY A, B")

    def test_no_predicates_properties(self):
        query = Query.single_table("t")
        assert query.predicates == ()
        assert query.attributes == ()
        assert query.is_conjunctive()
        assert query.compound_form() == {}
