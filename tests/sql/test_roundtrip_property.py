"""Property-based round-trip tests: AST -> SQL -> AST.

The invariant: rendering any supported query to SQL and re-parsing it
yields a query with the same semantics — identical selection masks on a
concrete table, and an identical Definition 3.3 normal form.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import Table
from repro.sql.ast import And, Op, Or, Query, SimplePredicate
from repro.sql.executor import selection_mask
from repro.sql.parser import parse_query

ATTRS = ("A", "B", "C")


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(12)
    return Table("t", {a: rng.integers(0, 30, 200).astype(float)
                       for a in ATTRS})


def predicates_on(attr):
    return st.builds(
        SimplePredicate,
        attribute=st.just(attr),
        op=st.sampled_from(list(Op)),
        value=st.integers(min_value=-3, max_value=33).map(float),
    )


def compound_on(attr):
    """A per-attribute compound predicate: OR of small conjunctions."""
    conjunction = st.lists(predicates_on(attr), min_size=1, max_size=3).map(
        lambda ps: And(ps) if len(ps) > 1 else ps[0]
    )
    return st.lists(conjunction, min_size=1, max_size=3).map(
        lambda branches: Or(branches) if len(branches) > 1 else branches[0]
    )


mixed_queries = st.lists(
    st.sampled_from(ATTRS), min_size=1, max_size=3, unique=True
).flatmap(
    lambda attrs: st.tuples(*(compound_on(a) for a in attrs)).map(
        lambda compounds: Query.single_table(
            "t", And(list(compounds)) if len(compounds) > 1 else compounds[0]
        )
    )
)


class TestSqlRoundTrip:
    @given(mixed_queries)
    @settings(max_examples=200, deadline=None)
    def test_masks_identical_after_round_trip(self, table, query):
        reparsed = parse_query(query.to_sql())
        np.testing.assert_array_equal(
            selection_mask(query.where, table),
            selection_mask(reparsed.where, table),
        )

    @given(mixed_queries)
    @settings(max_examples=200, deadline=None)
    def test_compound_form_identical_after_round_trip(self, table, query):
        reparsed = parse_query(query.to_sql())
        assert reparsed.compound_form() == query.compound_form()

    @given(mixed_queries)
    @settings(max_examples=100, deadline=None)
    def test_double_round_trip_is_stable(self, table, query):
        once = parse_query(query.to_sql())
        twice = parse_query(once.to_sql())
        assert once.to_sql() == twice.to_sql()
