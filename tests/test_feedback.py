"""Tests for query-feedback drift detection and self-tuning (Section 5.5.2)."""

import numpy as np
import pytest

from repro.data.forest import generate_forest
from repro.estimators import LearnedEstimator
from repro.featurize import ConjunctiveEncoding
from repro.feedback import QueryFeedbackMonitor, SelfTuningEstimator
from repro.metrics import qerror
from repro.models import GradientBoostingRegressor
from repro.workloads import generate_conjunctive_workload


class TestQueryFeedbackMonitor:
    def test_no_decision_before_min_observations(self):
        monitor = QueryFeedbackMonitor(min_observations=10, threshold=2.0)
        for _ in range(9):
            monitor.record(100, 1)  # q-error 100
        assert not monitor.drift_detected()
        monitor.record(100, 1)
        assert monitor.drift_detected()

    def test_accurate_feedback_never_triggers(self):
        monitor = QueryFeedbackMonitor(min_observations=5, threshold=10.0)
        for _ in range(50):
            monitor.record(100, 110)
        assert not monitor.drift_detected()

    def test_quantile_semantics(self):
        """With quantile 0.9, a 5% tail of bad errors must not trigger."""
        monitor = QueryFeedbackMonitor(window=100, min_observations=100,
                                       threshold=10.0, quantile=0.9)
        for i in range(100):
            monitor.record(1000, 1000 if i % 20 else 1)
        assert not monitor.drift_detected()

    def test_window_evicts_old_errors(self):
        monitor = QueryFeedbackMonitor(window=10, min_observations=5,
                                       threshold=5.0)
        for _ in range(10):
            monitor.record(100, 1)
        assert monitor.drift_detected()
        for _ in range(10):
            monitor.record(100, 100)
        assert not monitor.drift_detected()

    def test_reset_clears_window(self):
        monitor = QueryFeedbackMonitor(window=10, min_observations=5,
                                       threshold=5.0)
        for _ in range(10):
            monitor.record(100, 1)
        monitor.reset()
        assert not monitor.drift_detected()
        assert monitor.current_quantile_error() == 1.0
        assert monitor.observation_count == 10

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QueryFeedbackMonitor(window=0)
        with pytest.raises(ValueError):
            QueryFeedbackMonitor(threshold=0.5)
        with pytest.raises(ValueError):
            QueryFeedbackMonitor(quantile=0.0)
        with pytest.raises(ValueError):
            QueryFeedbackMonitor(min_observations=0)


class TestSelfTuningEstimator:
    @staticmethod
    def _builder_for(table):
        def build():
            workload = generate_conjunctive_workload(table, 250,
                                                     max_attributes=2, seed=71)
            return LearnedEstimator(
                ConjunctiveEncoding(table, max_partitions=8),
                GradientBoostingRegressor(n_estimators=40),
            ).fit(workload.queries, workload.cardinalities)
        return build

    def test_data_drift_triggers_rebuild_and_recovers(self):
        """Train on yesterday's table; feed queries labelled against a
        drifted table; the estimator must rebuild and improve."""
        old_table = generate_forest(rows=4_000, seed=50)
        # Data drift: "the data stored [...] may change abruptly and
        # drastically" (Section 5.5) — two thirds of the rows (the low
        # elevations) are deleted, so every learned cardinality is stale.
        elevation = old_table.column("A1").values
        new_table = old_table.subset(
            elevation > np.quantile(elevation, 0.67))

        # The live table changes underneath: the builder closure always
        # trains against the *current* table.
        live = {"table": old_table}

        def build():
            return self._builder_for(live["table"])()

        tuning = SelfTuningEstimator(
            build,
            QueryFeedbackMonitor(window=80, min_observations=40,
                                 threshold=15.0, quantile=0.9),
        )
        assert tuning.rebuild_count == 0

        live["table"] = new_table
        drifted = generate_conjunctive_workload(new_table, 120,
                                                max_attributes=2, seed=72)
        rebuilt = False
        for item in drifted:
            rebuilt |= tuning.feedback(item.query, item.cardinality)
        assert rebuilt
        assert tuning.rebuild_count >= 1

        # After rebuilding, the estimator is trained on the new data: it
        # must beat the stale pre-drift model on the new distribution.
        stale = self._builder_for(old_table)()
        check = generate_conjunctive_workload(new_table, 100,
                                              max_attributes=2, seed=73)
        rebuilt_mean = np.mean(qerror(
            check.cardinalities, tuning.estimate_batch(check.queries)))
        stale_mean = np.mean(qerror(
            check.cardinalities, stale.estimate_batch(check.queries)))
        assert rebuilt_mean < stale_mean

    def test_no_rebuild_without_drift(self, small_forest):
        tuning = SelfTuningEstimator(
            self._builder_for(small_forest),
            QueryFeedbackMonitor(window=80, min_observations=40,
                                 threshold=50.0, quantile=0.9),
        )
        workload = generate_conjunctive_workload(small_forest, 100,
                                                 max_attributes=2, seed=74)
        for item in workload:
            tuning.feedback(item.query, item.cardinality)
        assert tuning.rebuild_count == 0

    def test_estimates_delegate_to_current_model(self, small_forest):
        tuning = SelfTuningEstimator(self._builder_for(small_forest))
        workload = generate_conjunctive_workload(small_forest, 5, seed=75)
        single = tuning.estimate(workload.queries[0])
        underlying = tuning.current_estimator.estimate(workload.queries[0])
        assert single == pytest.approx(underlying)
