"""Tests for the EXPERIMENTS.md assembler script."""

import importlib.util
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "assemble_experiments.py"


def load_assembler():
    spec = importlib.util.spec_from_file_location("assemble_experiments",
                                                  _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def assembler(tmp_path, monkeypatch):
    module = load_assembler()
    monkeypatch.setattr(module, "RESULTS", tmp_path / "results")
    monkeypatch.setattr(module, "OUTPUT", tmp_path / "EXPERIMENTS.md")
    return module


def test_every_ordered_experiment_has_a_verdict(assembler):
    missing = [key for key in assembler.ORDER if key not in assembler.VERDICTS]
    assert not missing


def test_missing_results_reported(assembler):
    (assembler.RESULTS).mkdir()
    with pytest.raises(SystemExit, match="missing results"):
        assembler.main()


def test_assembles_all_sections(assembler):
    assembler.RESULTS.mkdir()
    for key in assembler.ORDER:
        (assembler.RESULTS / f"{key}.md").write_text(
            f"### {key} — stub\n\n| a |\n|---|\n| 1 |\n")
    assert assembler.main() == 0
    text = assembler.OUTPUT.read_text()
    for key in assembler.ORDER:
        assert f"### {key} — stub" in text
    assert text.count("**Paper's claim.**") == len(assembler.ORDER)
    assert text.count("**Verdict.**") == len(assembler.ORDER)


def test_verdicts_are_substantive(assembler):
    for key, (claim, verdict) in assembler.VERDICTS.items():
        assert len(claim) > 40, key
        assert len(verdict) > 40, key
        assert verdict.split(" ")[0].isupper(), (
            f"{key}: verdicts lead with an ALL-CAPS judgement"
        )
