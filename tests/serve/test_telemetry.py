"""Accuracy-aware serving telemetry, end to end.

Covers the PR's acceptance path: a traced client → server → batcher run
stitching into one Chrome trace, a windowed per-model q-error p95 that
shifts within two logical ticks of an injected estimate-quality
degradation, the worst-q-error exemplar retaining the offending SQL,
and a Prometheus scrape that round-trips through the strict validator —
byte-for-byte identical across two identical runs once the event-log
clock is injected (wall time is the only nondeterministic input).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import export
from repro.obs.events import EventLog
from repro.obs.prometheus import parse_exposition
from repro.serve import EstimationServer, EstimationService, ServeClient


@pytest.fixture(autouse=True)
def fresh_obs():
    """Telemetry tests own the global obs state; leave it clean."""
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture()
def sqls(conjunctive_workload):
    return [q.to_sql() for q in conjunctive_workload.queries[:12]]


def stepping_clock(step_ns: int = 1_000_000):
    """A clock_ns advancing a fixed step per call — latencies become a
    pure function of the request sequence, not of wall time."""
    state = {"now": 0}

    def clock() -> int:
        state["now"] += step_ns
        return state["now"]

    return clock


def qerror_labels(estimator, model_version: str) -> dict:
    """The label tuple the service stamps on serve.qerror.window."""
    featurizer = estimator.featurizer
    return {"model": model_version, "table": featurizer.table_name,
            "qft": type(featurizer).__name__}


class TestWindowedDegradation:
    def test_qerror_p95_shifts_within_two_ticks(self, serve_estimator,
                                                sqls):
        service = EstimationService(serve_estimator, model_version="gb-a")
        labels = qerror_labels(serve_estimator, "gb-a")
        windows = obs.get_windows()
        window = windows.histogram("serve.qerror.window",
                                   label_names=("model", "table", "qft"))
        try:
            for sql in sqls[:8]:
                service.feedback(sql, true_cardinality=50.0, estimate=50.0)
            windows.advance_all()
            healthy = window.quantile(0.95, **labels)
            assert healthy == pytest.approx(1.0)

            tick_at_injection = windows.tick
            for sql in sqls[:4]:  # estimates suddenly off by 400x
                service.feedback(sql, true_cardinality=400.0, estimate=1.0)
            windows.advance_all()
            degraded = window.quantile(0.95, **labels)
            assert windows.tick - tick_at_injection <= 2
            assert degraded >= 100 * healthy
        finally:
            service.close()

    def test_qerror_slo_burns_after_degradation(self, serve_estimator,
                                                sqls):
        service = EstimationService(serve_estimator, model_version="gb-a",
                                    qerror_slo=10.0, slo_objective=0.99)
        slo = obs.get_windows().slo("serve.qerror.slo")
        try:
            for sql in sqls[:8]:
                service.feedback(sql, true_cardinality=50.0, estimate=50.0)
            assert slo.burn_rate("short") == 0.0
            for sql in sqls[:4]:
                service.feedback(sql, true_cardinality=400.0, estimate=1.0)
            # 4 of 12 observations blown at a 1% budget: burning hard.
            assert slo.burn_rate("short") > 10.0
        finally:
            service.close()

    def test_tick_every_advances_windows_automatically(self,
                                                       serve_estimator,
                                                       sqls):
        service = EstimationService(serve_estimator, model_version="gb-a",
                                    tick_every=2)
        try:
            for sql in sqls[:4]:
                service.feedback(sql, true_cardinality=10.0, estimate=10.0)
            assert obs.get_windows().tick == 2
        finally:
            service.close()

    def test_latency_window_partitions_by_cache_outcome(self,
                                                        serve_estimator,
                                                        sqls):
        service = EstimationService(serve_estimator, model_version="gb-a",
                                    max_wait_ms=0.0, cache_size=32)
        window = obs.get_windows().histogram(
            "serve.request.seconds.window",
            label_names=("model", "cache"))
        try:
            query = service.parse(sqls[0])
            service.estimate(query, sql=sqls[0])   # miss
            service.estimate(query, sql=sqls[0])   # hit
            assert window.window_count(model="gb-a", cache="miss") == 1
            assert window.window_count(model="gb-a", cache="hit") == 1
        finally:
            service.close()


class TestExemplars:
    def test_worst_qerror_sql_is_retained(self, serve_estimator, sqls):
        service = EstimationService(serve_estimator, model_version="gb-a")
        try:
            service.feedback(sqls[0], true_cardinality=10.0, estimate=10.0)
            service.feedback(sqls[1], true_cardinality=900.0, estimate=3.0)
            service.feedback(sqls[2], true_cardinality=60.0, estimate=3.0)
        finally:
            service.close()
        worst = obs.get_event_log().exemplars.worst()
        assert worst is not None
        assert worst["sql"] == sqls[1]
        assert worst["qerror"] == pytest.approx(300.0)


class TestTracedRoundTrip:
    def test_client_server_spans_stitch_into_one_trace(self,
                                                       serve_estimator,
                                                       sqls):
        obs.enable()
        service = EstimationService(serve_estimator, model_version="gb-a",
                                    max_wait_ms=0.0, cache_size=32)
        with EstimationServer(service) as server:
            client = ServeClient(server.url)
            client.estimate(sqls[0])
            client.estimate_batch(sqls[:3])
            client.feedback(sqls[0], true_cardinality=25.0, estimate=5.0)

        spans = export.span_records(obs.get_tracer().finished())
        client_spans = [s for s in spans
                        if s["name"].startswith("serve.client.")]
        server_spans = [s for s in spans
                        if not s["name"].startswith("serve.client.")]
        assert client_spans and server_spans

        events = export.stitch_chrome_trace([("client", client_spans),
                                             ("server", server_spans)])
        processes = {e["args"]["name"] for e in events
                     if e.get("ph") == "M" and e["name"] == "process_name"}
        assert processes == {"client", "server"}
        flows = [e for e in events if e.get("cat") == "trace"]
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        finishes = {e["id"] for e in flows if e["ph"] == "f"}
        assert starts and starts == finishes
        # Causality arrows run from the client process into the server.
        assert {e["pid"] for e in flows if e["ph"] == "s"} == {0}
        assert {e["pid"] for e in flows if e["ph"] == "f"} == {1}

        # The wide events carry the same client-minted trace ids.
        event_ids = {e["trace_id"] for e in obs.get_event_log().events()}
        assert event_ids and event_ids <= starts

    def test_stitched_trace_writes_one_json_document(self, serve_estimator,
                                                     sqls, tmp_path):
        obs.enable()
        service = EstimationService(serve_estimator, model_version="gb-a",
                                    max_wait_ms=0.0)
        with EstimationServer(service) as server:
            ServeClient(server.url).estimate(sqls[0])
        spans = export.span_records(obs.get_tracer().finished())
        client_spans = [s for s in spans
                        if s["name"].startswith("serve.client.")]
        server_spans = [s for s in spans
                        if not s["name"].startswith("serve.client.")]
        out = tmp_path / "stitched.json"
        count = export.write_stitched_chrome_trace(
            [("client", client_spans), ("server", server_spans)], out)
        assert count > 0
        import json
        document = json.loads(out.read_text(encoding="utf-8"))
        assert len(document["traceEvents"]) == count


class TestPrometheusScrape:
    def _run_once(self, serve_estimator, sqls) -> str:
        obs.reset()
        obs.set_event_log(EventLog(clock_ns=stepping_clock()))
        service = EstimationService(serve_estimator, model_version="gb-a",
                                    max_wait_ms=0.0, cache_size=64,
                                    tick_every=4)
        with EstimationServer(service) as server:
            client = ServeClient(server.url)
            for sql in sqls[:4]:
                client.estimate(sql)
            client.estimate(sqls[0])   # one cache hit
            for sql in sqls[:3]:
                client.feedback(sql, true_cardinality=100.0, estimate=4.0)
            return client.metrics_prometheus()

    def test_scrape_round_trips_through_the_validator(self,
                                                      serve_estimator,
                                                      sqls):
        families = parse_exposition(self._run_once(serve_estimator, sqls))
        assert families["serve_requests_total"]["type"] == "counter"
        assert families["serve_feedback_qerror"]["type"] == "histogram"
        assert families["serve_qerror_window"]["type"] == "summary"
        labels = [label_set for _, label_set, _ in
                  families["serve_qerror_window"]["samples"]]
        assert any(label_set.get("model") == "gb-a"
                   for label_set in labels)
        burn = {label_set["window"]: value for _, label_set, value in
                families["serve_qerror_slo_burn_rate"]["samples"]}
        assert set(burn) == {"short", "long"}
        assert burn["short"] > 1.0   # 3 bad feedbacks at a 1% budget

    def test_identical_runs_scrape_identical_bytes(self, serve_estimator,
                                                   sqls):
        first = self._run_once(serve_estimator, sqls)
        second = self._run_once(serve_estimator, sqls)
        assert first == second
        assert "serve_request_seconds_window" in first
