"""The fused serving path and its SQL-direct planned leg.

Covers eligibility (``try_build`` bypasses estimators without a
featurizer), bitwise equivalence of every leg against the legacy
``estimate_batch``, statement planning in the parse cache, the planned
leg's cache interplay, and error-contract parity.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.serve.fused import FusedEstimatePath, PlannedStatement
from repro.serve.server import EstimationService
from repro.sql.ast import And, Or, SimplePredicate


def perturb(query, delta):
    """A same-shape instance of ``query`` with shifted literals."""

    def rebind(expr):
        if isinstance(expr, SimplePredicate):
            return SimplePredicate(expr.attribute, expr.op,
                                   expr.value + delta)
        if isinstance(expr, And):
            return And([rebind(child) for child in expr.children])
        if isinstance(expr, Or):
            return Or([rebind(child) for child in expr.children])
        return expr

    if query.where is None:
        return query
    return replace(query, where=rebind(query.where))


@pytest.fixture()
def instances(conjunctive_workload):
    """Templates plus literal-shifted instances: repeating shapes."""
    templates = conjunctive_workload.queries[:8]
    out = []
    for delta in (0.0, 1.0, 2.0):
        out.extend(perturb(q, delta) for q in templates)
    return out


@pytest.fixture()
def uncached_service(serve_estimator):
    """Planned-leg configuration: estimate cache off, parse cache on."""
    service = EstimationService(serve_estimator, cache_size=0)
    yield service
    service.close()


class TestEligibility:
    def test_learned_estimator_gets_fused_path(self, uncached_service):
        assert isinstance(uncached_service.fused, FusedEstimatePath)
        assert uncached_service.fused.supports_planned_statements

    def test_estimator_without_featurizer_bypasses(self):
        class Opaque:
            name = "opaque"

            def estimate_batch(self, queries):
                return np.zeros(len(queries))

        service = EstimationService(Opaque(), cache_size=0)
        try:
            assert service.fused is None
        finally:
            service.close()


class TestFusedEquivalence:
    def test_estimate_batch_bitwise_identical(self, uncached_service,
                                              serve_estimator, instances):
        fused = uncached_service.fused
        np.testing.assert_array_equal(
            fused.estimate_batch(instances),
            serve_estimator.estimate_batch(instances))

    def test_plan_cache_hits_on_repeated_shapes(self, uncached_service,
                                                instances):
        fused = uncached_service.fused
        fused.estimate_batch(instances)
        stats = uncached_service.plan_cache.stats()
        # 8 shapes compiled once (repeats within one batch dedup
        # through the batch-local map, not the cache) …
        assert stats["misses"] == 8
        fused.estimate_batch(instances)
        # … and the next batch resolves all 8 shapes from the cache.
        assert uncached_service.plan_cache.stats()["hits"] >= 8
        assert uncached_service.plan_cache.stats()["misses"] == 8


class TestPlannedLeg:
    def test_sql_batch_bitwise_identical_to_parse_path(
            self, uncached_service, serve_estimator, instances):
        sqls = [q.to_sql() for q in instances]
        first = uncached_service.estimate_many_sql(sqls)
        # Second call: every statement is cached and planned.
        second = uncached_service.estimate_many_sql(sqls)
        direct = serve_estimator.estimate_batch(instances)
        np.testing.assert_array_equal(np.asarray(first), direct)
        np.testing.assert_array_equal(np.asarray(second), direct)

    def test_statements_are_planned_in_parse_cache(self, uncached_service,
                                                   instances):
        sqls = [q.to_sql() for q in instances]
        uncached_service.estimate_many_sql(sqls)
        from repro.sql.parser import fingerprint_sql
        fingerprint, _ = fingerprint_sql(sqls[0])
        statement = uncached_service.parse_cache.lookup(fingerprint)
        assert statement is not None
        assert isinstance(statement.planned, PlannedStatement)
        assert statement.planned.perm.dtype == np.int64

    def test_planned_instances_skip_reparsing(self, uncached_service,
                                              instances):
        sqls = [q.to_sql() for q in instances]
        uncached_service.estimate_many_sql(sqls)
        before = uncached_service.parse_cache.stats()
        uncached_service.estimate_many_sql(sqls)
        after = uncached_service.parse_cache.stats()
        assert after["hits"] - before["hits"] == len(sqls)
        assert after["misses"] == before["misses"]

    def test_estimate_cache_enabled_falls_back_and_hits(
            self, serve_estimator, instances):
        service = EstimationService(serve_estimator, cache_size=128)
        try:
            sqls = [q.to_sql() for q in instances]
            first = service.estimate_many_sql(sqls)
            hits_before = service.cache.stats()["hits"]
            second = service.estimate_many_sql(sqls)
            assert first == second
            assert (service.cache.stats()["hits"]
                    >= hits_before + len(sqls))
        finally:
            service.close()

    def test_parse_cache_disabled_still_correct(self, serve_estimator,
                                                instances):
        service = EstimationService(serve_estimator, cache_size=0,
                                    parse_cache_size=0)
        try:
            sqls = [q.to_sql() for q in instances]
            np.testing.assert_array_equal(
                np.asarray(service.estimate_many_sql(sqls)),
                serve_estimator.estimate_batch(instances))
        finally:
            service.close()

    def test_first_seen_and_planned_mix_in_one_batch(
            self, uncached_service, serve_estimator, conjunctive_workload,
            instances):
        # Warm the first 8 statements, then mix in 4 never-seen ones.
        warm = [q.to_sql() for q in instances]
        uncached_service.estimate_many_sql(warm)
        fresh = conjunctive_workload.queries[8:12]
        mixed = instances[:8] + list(fresh)
        got = uncached_service.estimate_many_sql(
            [q.to_sql() for q in mixed])
        np.testing.assert_array_equal(
            np.asarray(got), serve_estimator.estimate_batch(mixed))

    def test_unknown_attribute_raises_like_parse_path(self,
                                                      uncached_service):
        bad = "SELECT count(*) FROM forest WHERE no_such_column > 3"
        with pytest.raises(KeyError):
            uncached_service.estimate_many_sql([bad])
        # The statement is cached but unplanned; the retry raises too.
        with pytest.raises(KeyError):
            uncached_service.estimate_many_sql([bad])

    def test_wrong_table_raises_value_error(self, uncached_service):
        bad = "SELECT count(*) FROM elsewhere WHERE A > 3"
        with pytest.raises(ValueError):
            uncached_service.estimate_many_sql([bad])

    def test_empty_batch(self, uncached_service):
        assert uncached_service.estimate_many_sql([]) == []
