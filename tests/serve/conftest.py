"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators import LearnedEstimator
from repro.featurize import ConjunctiveEncoding
from repro.models import GradientBoostingRegressor


@pytest.fixture(scope="session")
def serve_estimator(small_forest, conjunctive_workload):
    """A small fitted GB estimator the serving tests share.

    Gradient boosting predicts row-by-row (a tree walk plus scalar
    adds), so batch estimates are bitwise-identical to sequential ones —
    the property the batcher stress test asserts.
    """
    items = list(conjunctive_workload)[:200]
    return LearnedEstimator(
        ConjunctiveEncoding(small_forest, max_partitions=8),
        GradientBoostingRegressor(n_estimators=10),
    ).fit([item.query for item in items],
          np.asarray([item.cardinality for item in items], dtype=float))
