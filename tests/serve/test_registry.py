"""Tests for the versioned on-disk model registry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.persistence import save_estimator
from repro.serve import ModelRegistry, RegistryError
from repro.serve.registry import ARTIFACT_FILENAME, MANIFEST_FILENAME


class TestPublish:
    def test_publish_estimator_writes_artifact_and_manifest(
            self, tmp_path, serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        published = registry.publish(serve_estimator, "forest-gb")
        assert published.version == 1
        assert published.directory.name == "v0001"
        assert (published.directory / ARTIFACT_FILENAME).is_file()
        manifest = json.loads(
            (published.directory / MANIFEST_FILENAME).read_text())
        assert manifest["name"] == "forest-gb"
        assert manifest["version"] == 1
        assert manifest["estimator_name"] == serve_estimator.name
        assert manifest["size_bytes"] == (
            published.artifact_path.stat().st_size)
        assert len(manifest["checksum_sha256"]) == 64

    def test_publish_increments_version(self, tmp_path, serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        assert registry.publish(serve_estimator, "m").version == 1
        assert registry.publish(serve_estimator, "m").version == 2
        assert registry.versions("m") == (1, 2)

    def test_publish_existing_artifact_file(self, tmp_path,
                                            serve_estimator):
        artifact = tmp_path / "standalone.npz"
        save_estimator(serve_estimator, artifact)
        registry = ModelRegistry(tmp_path / "registry")
        published = registry.publish(artifact, "imported")
        assert published.artifact_path.read_bytes() == artifact.read_bytes()
        assert registry.models() == ("imported",)

    def test_publish_rejects_unreadable_source(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"not an artifact")
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(ValueError):
            registry.publish(bogus, "bad")
        # Nothing half-published.
        assert registry.models() == ()

    def test_publish_rejects_bad_names(self, tmp_path, serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(RegistryError, match="invalid model name"):
                registry.publish(serve_estimator, bad)


class TestResolve:
    def test_latest_resolves_to_highest_version(self, tmp_path,
                                                serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(serve_estimator, "m")
        registry.publish(serve_estimator, "m")
        resolved = registry.resolve("m")
        assert resolved.version == 2
        assert registry.resolve("m", "latest").version == 2
        assert registry.resolve("m", 1).version == 1
        assert registry.resolve("m", "v0001").version == 1

    def test_unknown_model_and_version(self, tmp_path, serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(RegistryError, match="no model named"):
            registry.resolve("ghost")
        registry.publish(serve_estimator, "m")
        with pytest.raises(RegistryError, match="no version 9"):
            registry.resolve("m", 9)
        with pytest.raises(RegistryError, match="invalid version"):
            registry.resolve("m", "banana")


class TestLoad:
    def test_load_round_trips_estimates(self, tmp_path, serve_estimator,
                                        conjunctive_workload):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(serve_estimator, "m")
        loaded = registry.load("m")
        queries = conjunctive_workload.queries[:20]
        np.testing.assert_allclose(loaded.estimate_batch(queries),
                                   serve_estimator.estimate_batch(queries))

    def test_handle_cache_returns_same_object(self, tmp_path,
                                              serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(serve_estimator, "m")
        assert registry.load("m") is registry.load("m", "latest")
        registry.evict("m")
        assert registry.load("m") is not None

    def test_checksum_mismatch_detected(self, tmp_path, serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        published = registry.publish(serve_estimator, "m")
        blob = bytearray(published.artifact_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        published.artifact_path.write_bytes(bytes(blob))
        with pytest.raises(RegistryError, match="checksum mismatch"):
            registry.load("m")

    def test_missing_artifact_detected(self, tmp_path, serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        published = registry.publish(serve_estimator, "m")
        published.artifact_path.unlink()
        with pytest.raises(RegistryError, match="artifact file missing"):
            registry.load("m")

    def test_unreadable_manifest_detected(self, tmp_path, serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        published = registry.publish(serve_estimator, "m")
        published.manifest_path.write_text("{not json")
        with pytest.raises(RegistryError, match="unreadable manifest"):
            registry.load("m")


class TestLatestPointer:
    def test_set_latest_pins_resolution(self, tmp_path, serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(serve_estimator, "m")
        registry.publish(serve_estimator, "m")
        pinned = registry.set_latest("m", 1)
        assert pinned.version == 1
        assert registry.resolve("m").version == 1
        assert registry.resolve("m", "latest").version == 1
        # Explicit versions still resolve past the pointer.
        assert registry.resolve("m", 2).version == 2

    def test_pointer_survives_a_newer_publish(self, tmp_path,
                                              serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(serve_estimator, "m")
        registry.set_latest("m", 1)
        registry.publish(serve_estimator, "m")  # v2 must NOT win
        assert registry.resolve("m").version == 1

    def test_damaged_pointer_degrades_to_highest_version(
            self, tmp_path, serve_estimator):
        from repro.serve.registry import LATEST_FILENAME

        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(serve_estimator, "m")
        registry.publish(serve_estimator, "m")
        registry.set_latest("m", 1)
        (registry.root / "m" / LATEST_FILENAME).write_text("{broken")
        assert registry.resolve("m").version == 2

    def test_set_latest_rejects_unknown_version(self, tmp_path,
                                                serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(serve_estimator, "m")
        with pytest.raises(RegistryError, match="no version 7"):
            registry.set_latest("m", 7)


class TestRepublishInvalidation:
    def test_stale_handle_dropped_when_artifact_changes(
            self, tmp_path, serve_estimator, small_forest,
            conjunctive_workload):
        from repro.estimators import LearnedEstimator
        from repro.featurize import ConjunctiveEncoding
        from repro.models import GradientBoostingRegressor
        from repro.serve.registry import _sha256

        registry = ModelRegistry(tmp_path / "registry")
        published = registry.publish(serve_estimator, "m")
        first = registry.load("m")
        assert registry.load("m") is first  # memoised handle

        # Republish in place: a different estimator lands at the same
        # (name, version) path, as a sync from another host would.
        items = list(conjunctive_workload)[:50]
        other = LearnedEstimator(
            ConjunctiveEncoding(small_forest, max_partitions=4),
            GradientBoostingRegressor(n_estimators=3),
        ).fit([item.query for item in items],
              np.asarray([item.cardinality for item in items],
                         dtype=float))
        save_estimator(other, published.artifact_path)
        manifest = json.loads(published.manifest_path.read_text())
        manifest["checksum_sha256"] = _sha256(published.artifact_path)
        published.manifest_path.write_text(json.dumps(manifest))

        reloaded = registry.load("m")
        assert reloaded is not first  # stale handle invalidated
        assert registry.load("m") is reloaded  # and re-memoised

    def test_unchanged_artifact_keeps_the_handle(self, tmp_path,
                                                 serve_estimator):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(serve_estimator, "m")
        first = registry.load("m")
        assert registry.load("m") is first
