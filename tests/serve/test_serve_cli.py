"""Tests for the ``repro serve`` CLI and the serving benchmark."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.bench import run_serve_bench
from repro.cli import build_parser, main
from repro.cli import _cmd_serve
from repro.persistence import save_estimator
from repro.serve import ModelRegistry, ServeClient


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_healthy(url: str, timeout: float = 10.0) -> ServeClient:
    client = ServeClient(url, timeout=5.0)
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.healthz()
            return client
        except Exception:  # noqa: BLE001 — retried until the deadline
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, serve_estimator):
    path = tmp_path_factory.mktemp("serve-cli") / "model.npz"
    save_estimator(serve_estimator, path)
    return path


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--artifact", "m.npz"])
        assert args.port == 8642
        assert args.max_batch_size == 64
        assert args.cache_size == 1024
        assert args.version == "latest"

    def _run_server(self, argv):
        args = build_parser().parse_args(argv)
        args.shutdown_event = threading.Event()
        result: dict = {}

        def target() -> None:
            result["code"] = _cmd_serve(args)

        thread = threading.Thread(target=target)
        thread.start()
        return args.shutdown_event, thread, result

    def test_serve_artifact_end_to_end(self, artifact, sqls_module):
        port = _free_port()
        stop, thread, result = self._run_server(
            ["serve", "--artifact", str(artifact), "--port", str(port)])
        try:
            client = _wait_healthy(f"http://127.0.0.1:{port}")
            response = client.estimate(sqls_module[0])
            assert response["estimate"] > 0
            assert client.estimate(sqls_module[0])["cached"] is True
        finally:
            stop.set()
            thread.join(timeout=30)
        assert result["code"] == 0
        assert not thread.is_alive()

    def test_serve_from_registry(self, tmp_path, serve_estimator,
                                 sqls_module):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(serve_estimator, "forest")
        port = _free_port()
        stop, thread, result = self._run_server(
            ["serve", "--registry", str(tmp_path / "registry"),
             "--artifact", "forest", "--port", str(port)])
        try:
            client = _wait_healthy(f"http://127.0.0.1:{port}")
            assert client.estimate(sqls_module[1])["estimate"] > 0
        finally:
            stop.set()
            thread.join(timeout=30)
        assert result["code"] == 0


@pytest.fixture(scope="module")
def sqls_module(conjunctive_workload):
    return [q.to_sql() for q in conjunctive_workload.queries[:8]]


class TestServeBench:
    def test_smoke_report_shape(self, artifact):
        report = run_serve_bench(artifact=artifact, queries=96, threads=4,
                                 smoke=True)
        assert report["benchmark"] == "serve"
        assert [case["batch_size"] for case in report["cases"]] == [1, 8, 64]
        for case in report["cases"]:
            assert case["queries"] == 96
            assert case["queries_per_second"] > 0
            assert case["p95_latency_ms"] >= case["p50_latency_ms"]
        assert report["speedup"] == (report["batched_qps"]
                                     / report["single_qps"])
        assert report["config"]["cache_size"] == 0
        assert report["config"]["artifact"] == str(artifact)

    def test_batch_sizes_must_include_one(self):
        with pytest.raises(ValueError, match="must include 1"):
            run_serve_bench(batch_sizes=(8, 64), smoke=True)

    def test_bench_cli_writes_report(self, artifact, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        code = main(["bench", "serve", "--quick", "--artifact",
                     str(artifact), "--queries", "96", "--threads", "4",
                     "--output", str(out), "--min-batch-speedup", "0.0"])
        assert code == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert "serve bench:" in printed
        assert "batched/single speedup" in printed
        import json

        report = json.loads(out.read_text())
        assert report["benchmark"] == "serve"
        assert report["config"]["smoke"] is True
