"""ServeClient transport behaviour against a scripted stub server.

The stub plays back a fixed sequence of responses, so these tests pin
the client's contract without a real estimation service: bounded
retries on ``503`` + ``Retry-After`` only, fail-fast on every other
error, and transparent replacement of stale keep-alive sockets.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve import ServeClient, ServeClientError


class StubServer:
    """Plays back scripted ``(status, headers, body)`` responses."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self.headers_seen = []
        self.lock = threading.Lock()
        stub = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                body = self.rfile.read(length) if length else b""
                with stub.lock:
                    stub.requests.append(body)
                    stub.headers_seen.append(dict(self.headers))
                    step = (stub.script.pop(0) if stub.script
                            else (200, {}, b'{"ok": true}'))
                status, headers, payload = step
                if status == "close":
                    # Drop the connection without a response (stale
                    # keep-alive socket simulation).
                    self.close_connection = True
                    self.connection.close()
                    return
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                for name, value in headers.items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(payload)

            do_GET = do_POST

            def log_message(self, format, *args):  # noqa: A002
                pass

        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.thread = threading.Thread(target=self.httpd.serve_forever,
                                       daemon=True)
        self.thread.start()
        self.url = f"http://127.0.0.1:{self.httpd.server_port}"

    def stop(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=5)


def run_stub(script):
    server = StubServer(script)
    return server


OK = (200, {}, json.dumps({"estimate": 1.0, "cached": False}).encode())
BUSY = (503, {"Retry-After": "0"},
        json.dumps({"error": "saturated"}).encode())
BUSY_NO_HINT = (503, {}, json.dumps({"error": "saturated"}).encode())


class TestRetryPolicy:
    def test_retries_503_with_retry_after_until_success(self):
        server = run_stub([BUSY, BUSY, OK])
        try:
            client = ServeClient(server.url, retries=2)
            assert client.estimate("q")["estimate"] == 1.0
            assert len(server.requests) == 3
        finally:
            server.stop()

    def test_fail_fast_without_retries(self):
        server = run_stub([BUSY, OK])
        try:
            client = ServeClient(server.url)
            with pytest.raises(ServeClientError) as excinfo:
                client.estimate("q")
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == 0
            assert len(server.requests) == 1
        finally:
            server.stop()

    def test_retry_budget_is_bounded(self):
        server = run_stub([BUSY] * 5)
        try:
            client = ServeClient(server.url, retries=2)
            with pytest.raises(ServeClientError) as excinfo:
                client.estimate("q")
            assert excinfo.value.status == 503
            assert len(server.requests) == 3  # initial + 2 retries
        finally:
            server.stop()

    def test_503_without_retry_after_is_not_retried(self):
        server = run_stub([BUSY_NO_HINT, OK])
        try:
            client = ServeClient(server.url, retries=3)
            with pytest.raises(ServeClientError) as excinfo:
                client.estimate("q")
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is None
            assert len(server.requests) == 1
        finally:
            server.stop()

    @pytest.mark.parametrize("status", [400, 404, 500])
    def test_other_errors_never_retried(self, status):
        error = (status, {}, json.dumps({"error": "nope"}).encode())
        server = run_stub([error, OK])
        try:
            client = ServeClient(server.url, retries=3)
            with pytest.raises(ServeClientError) as excinfo:
                client.estimate("q")
            assert excinfo.value.status == status
            assert len(server.requests) == 1
        finally:
            server.stop()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ServeClient("http://127.0.0.1:1", retries=-1)

    def test_bad_base_url_rejected(self):
        with pytest.raises(ValueError, match="base_url"):
            ServeClient("ftp://example.com")


class TestKeepAlive:
    def test_stale_connection_is_replaced_transparently(self):
        # Response 2 drops the reused socket before sending anything;
        # the client must re-send once on a fresh connection.
        server = run_stub([OK, ("close", {}, b""), OK])
        try:
            client = ServeClient(server.url, timeout=5.0)
            assert client.estimate("q")["estimate"] == 1.0
            assert client.estimate("q")["estimate"] == 1.0
            assert len(server.requests) == 3
        finally:
            server.stop()

    def test_context_manager_closes_connection(self):
        server = run_stub([OK])
        try:
            with ServeClient(server.url) as client:
                client.estimate("q")
                assert getattr(client._local, "conn", None) is not None
            assert getattr(client._local, "conn", None) is None
        finally:
            server.stop()


class TestTracePropagation:
    def test_explicit_trace_id_rides_the_header(self):
        from repro import obs

        server = run_stub([OK, OK])
        try:
            with ServeClient(server.url) as client:
                client.estimate("q", trace_id=12345)
                client.feedback("q", 10.0, trace_id=12345)
            headers = [h[obs.TRACE_HEADER] for h in server.headers_seen]
            assert headers == [obs.format_trace_header(12345)] * 2
        finally:
            server.stop()

    def test_trace_id_minted_when_absent(self):
        from repro import obs

        server = run_stub([OK])
        try:
            with ServeClient(server.url) as client:
                client.estimate("q")
            (headers,) = server.headers_seen
            minted = obs.parse_trace_header(headers.get(obs.TRACE_HEADER))
            assert isinstance(minted, int) and minted > 0
        finally:
            server.stop()


class TestTransportErrors:
    def test_refused_connection_is_a_transport_error(self):
        # Nothing listens on port 9 (discard); the raw socket error must
        # surface as a status-0 ServeClientError, never leak through —
        # the fleet router's failover dispatches on exactly this.
        with ServeClient("http://127.0.0.1:9", timeout=0.5) as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.estimate("q")
        assert excinfo.value.status == 0
        assert "cannot reach" in str(excinfo.value)


class TestDocumentHelpers:
    def test_batch_detail_and_get_json(self):
        detail = json.dumps({"estimates": [1.0, 2.0],
                             "workers": ["w0"]}).encode()
        status = json.dumps({"rollout": {"state": "idle"}}).encode()
        server = run_stub([(200, {}, detail), (200, {}, status)])
        try:
            with ServeClient(server.url) as client:
                document = client.estimate_batch_detail(["a", "b"])
                assert document == {"estimates": [1.0, 2.0],
                                    "workers": ["w0"]}
                assert client.get_json("/fleet/status") \
                    == {"rollout": {"state": "idle"}}
        finally:
            server.stop()
