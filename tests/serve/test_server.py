"""Tests for the HTTP serving front-end: endpoints, admission control,
graceful drain, and /metrics byte-stability."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.serve import (
    EstimationServer,
    EstimationService,
    ServeClient,
    ServeClientError,
)


class SlowEstimator:
    """Stub estimator whose batches take a configurable time."""

    name = "slow-stub"

    def __init__(self, delay: float) -> None:
        self._delay = delay

    def estimate_batch(self, queries):
        time.sleep(self._delay)
        return np.asarray([float(len(str(q))) for q in queries])

    def estimate(self, query):
        return float(self.estimate_batch([query])[0])


@pytest.fixture()
def running_server(serve_estimator):
    """A started server over the shared estimator; stopped afterwards."""
    service = EstimationService(serve_estimator, max_batch_size=8,
                                max_wait_ms=1.0, cache_size=128,
                                max_inflight=64)
    server = EstimationServer(service)
    server.start()
    yield server
    server.stop()


@pytest.fixture()
def sqls(conjunctive_workload):
    """A few parseable SQL strings matching the shared estimator."""
    return [q.to_sql() for q in conjunctive_workload.queries[:12]]


class TestEndpoints:
    def test_healthz(self, running_server):
        client = ServeClient(running_server.url)
        assert client.healthz() == {"status": "ok"}

    def test_estimate_and_cache_flag(self, running_server, sqls):
        client = ServeClient(running_server.url)
        first = client.estimate(sqls[0])
        second = client.estimate(sqls[0])
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["estimate"] == second["estimate"]
        assert first["estimate"] > 0

    def test_estimate_batch_matches_direct(self, running_server, sqls,
                                           serve_estimator,
                                           conjunctive_workload):
        client = ServeClient(running_server.url)
        estimates = client.estimate_batch(sqls)
        direct = serve_estimator.estimate_batch(
            conjunctive_workload.queries[:12])
        np.testing.assert_array_equal(np.asarray(estimates), direct)

    def test_single_and_batch_agree(self, running_server, sqls):
        client = ServeClient(running_server.url)
        singles = [client.estimate(sql)["estimate"] for sql in sqls[:5]]
        batch = client.estimate_batch(sqls[:5])
        assert singles == batch

    def test_metrics_endpoint_is_json(self, running_server, sqls):
        client = ServeClient(running_server.url)
        client.estimate(sqls[0])
        import json

        snapshot = json.loads(client.metrics())
        assert snapshot["serve.requests_total"]["value"] >= 1
        assert "serve.batch.size" in snapshot


class TestErrorMapping:
    def test_bad_sql_is_400(self, running_server):
        client = ServeClient(running_server.url)
        with pytest.raises(ServeClientError) as excinfo:
            client.estimate("SELECT nope FROM nowhere !!!")
        assert excinfo.value.status == 400

    def test_unknown_attribute_is_400(self, running_server):
        client = ServeClient(running_server.url)
        with pytest.raises(ServeClientError) as excinfo:
            client.estimate("SELECT count(*) FROM forest WHERE Ghost > 1")
        assert excinfo.value.status == 400
        assert "unknown attribute" in str(excinfo.value)

    def test_malformed_json_is_400(self, running_server):
        import urllib.request

        request = urllib.request.Request(
            running_server.url + "/v1/estimate", data=b"{broken",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_wrong_payload_shape_is_400(self, running_server):
        client = ServeClient(running_server.url)
        with pytest.raises(ServeClientError) as excinfo:
            client._post("/v1/estimate_batch", {"sql": "not a list"})
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, running_server):
        client = ServeClient(running_server.url)
        with pytest.raises(ServeClientError) as excinfo:
            client._get("/v2/everything")
        assert excinfo.value.status == 404


class TestAdmissionControl:
    def test_saturated_service_returns_503_with_retry_after(self, sqls):
        service = EstimationService(SlowEstimator(delay=0.5),
                                    max_batch_size=1, max_wait_ms=0.0,
                                    cache_size=0, max_inflight=1)
        with EstimationServer(service) as server:
            client = ServeClient(server.url)
            results: list = []

            def occupy() -> None:
                results.append(client.estimate(sqls[0]))

            thread = threading.Thread(target=occupy)
            thread.start()
            deadline = time.monotonic() + 5
            while service._inflight < 1:
                if time.monotonic() > deadline:
                    raise AssertionError("first request never admitted")
                time.sleep(0.005)
            with pytest.raises(ServeClientError) as excinfo:
                client.estimate(sqls[1])
            thread.join()
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == 1
        assert len(results) == 1  # the occupying request still succeeded

    def test_rejections_counted(self, sqls):
        obs.reset()
        service = EstimationService(SlowEstimator(delay=0.3),
                                    max_batch_size=1, max_wait_ms=0.0,
                                    cache_size=0, max_inflight=1)
        with EstimationServer(service) as server:
            client = ServeClient(server.url)
            thread = threading.Thread(
                target=lambda: client.estimate(sqls[0]))
            thread.start()
            deadline = time.monotonic() + 5
            while service._inflight < 1:
                if time.monotonic() > deadline:
                    raise AssertionError("first request never admitted")
                time.sleep(0.005)
            with pytest.raises(ServeClientError):
                client.estimate(sqls[1])
            thread.join()
        snapshot = obs.get_registry().snapshot()
        assert snapshot["serve.rejected_total"]["value"] == 1


class TestGracefulDrain:
    def test_accepted_requests_survive_stop(self, sqls):
        n_requests = 6
        service = EstimationService(SlowEstimator(delay=0.1),
                                    max_batch_size=1, max_wait_ms=0.0,
                                    cache_size=0, max_inflight=64)
        server = EstimationServer(service).start()
        client = ServeClient(server.url, timeout=30)
        results: list = []
        errors: list = []
        lock = threading.Lock()

        def fire(i: int) -> None:
            try:
                value = client.estimate(sqls[i])
            except Exception as exc:  # noqa: BLE001 — recorded for assert
                with lock:
                    errors.append(exc)
            else:
                with lock:
                    results.append(value)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(n_requests)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10
        while service._inflight < n_requests:
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"only {service._inflight}/{n_requests} admitted")
            time.sleep(0.005)
        # Stop while every request is still in flight: the drain must
        # complete them all before the server lets go.
        server.stop(drain=True)
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(results) == n_requests
        assert all(r["estimate"] > 0 for r in results)

    def test_requests_after_stop_are_refused(self, serve_estimator, sqls):
        service = EstimationService(serve_estimator)
        server = EstimationServer(service).start()
        client = ServeClient(server.url)
        client.estimate(sqls[0])
        server.stop()
        with pytest.raises(ServeClientError):
            client.estimate(sqls[1])


class TestMetricsByteStability:
    def test_identical_runs_identical_bytes(self, serve_estimator, sqls):
        def run_once() -> str:
            obs.reset()
            service = EstimationService(serve_estimator, max_batch_size=8,
                                        max_wait_ms=0.0, cache_size=64,
                                        max_inflight=32)
            with EstimationServer(service) as server:
                client = ServeClient(server.url)
                for sql in sqls[:4]:
                    client.estimate(sql)
                client.estimate(sqls[0])  # one cache hit
                client.estimate_batch(sqls[:6])
                return client.metrics()

        assert run_once() == run_once()
