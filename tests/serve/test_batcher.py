"""Tests for the micro-batching executor, including the concurrency
stress test (bitwise batch-vs-sequential identity)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import BatcherClosedError, MicroBatcher
from repro.serve.server import EstimationService


class RecordingBackend:
    """An estimate_batch stub that records every dispatched batch."""

    def __init__(self, delay: float = 0.0, fail: bool = False):
        self.batches: list[int] = []
        self._delay = delay
        self._fail = fail
        self._lock = threading.Lock()

    def estimate_batch(self, queries):
        with self._lock:
            self.batches.append(len(queries))
        if self._delay:
            import time

            time.sleep(self._delay)
        if self._fail:
            raise RuntimeError("backend exploded")
        return np.asarray([float(len(str(q))) for q in queries])


class TestBasics:
    def test_single_request_resolves(self, serve_estimator,
                                     conjunctive_workload):
        query = conjunctive_workload.queries[0]
        with MicroBatcher(serve_estimator.estimate_batch,
                          max_batch_size=4, max_wait_ms=1.0) as batcher:
            result = batcher.submit(query).result(timeout=10)
        assert result == serve_estimator.estimate(query)

    def test_validates_config(self, serve_estimator):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(serve_estimator.estimate_batch, max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(serve_estimator.estimate_batch, max_wait_ms=-1)

    def test_requests_actually_batch(self):
        backend = RecordingBackend()
        with MicroBatcher(backend.estimate_batch, max_batch_size=8,
                          max_wait_ms=50.0) as batcher:
            futures = [batcher.submit(f"q{i}") for i in range(8)]
            for future in futures:
                future.result(timeout=10)
        # A 50ms window and instant submissions: the first dispatch
        # collects everything (the full batch triggers early dispatch).
        assert max(backend.batches) > 1
        assert sum(backend.batches) == 8

    def test_backend_error_propagates_to_all_futures(self):
        backend = RecordingBackend(fail=True)
        with MicroBatcher(backend.estimate_batch, max_batch_size=4,
                          max_wait_ms=20.0) as batcher:
            futures = [batcher.submit(f"q{i}") for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="backend exploded"):
                    future.result(timeout=10)


class TestShutdown:
    def test_submit_after_close_raises(self, serve_estimator):
        batcher = MicroBatcher(serve_estimator.estimate_batch)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit(object())

    def test_close_is_idempotent(self, serve_estimator):
        batcher = MicroBatcher(serve_estimator.estimate_batch)
        batcher.close()
        batcher.close()

    def test_close_drains_accepted_requests(self):
        backend = RecordingBackend(delay=0.02)
        batcher = MicroBatcher(backend.estimate_batch, max_batch_size=2,
                               max_wait_ms=0.0)
        futures = [batcher.submit(f"q{i}") for i in range(20)]
        batcher.close(drain=True)
        # Every request accepted before close resolves with a value.
        results = [future.result(timeout=10) for future in futures]
        assert len(results) == 20
        assert sum(backend.batches) == 20

    def test_close_without_drain_cancels_pending(self):
        import time

        release = threading.Event()
        started = threading.Event()

        def blocking_backend(queries):
            started.set()
            release.wait(timeout=10)
            return np.zeros(len(queries))

        batcher = MicroBatcher(blocking_backend, max_batch_size=1,
                               max_wait_ms=0.0)
        futures = [batcher.submit(f"q{i}") for i in range(10)]
        assert started.wait(timeout=10)
        closer = threading.Thread(target=lambda: batcher.close(drain=False))
        closer.start()
        time.sleep(0.05)  # let close() mark the batcher closed
        release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        # The batch already executing completes; everything still queued
        # is cancelled rather than silently dropped.
        assert futures[0].result(timeout=1) == 0.0
        assert all(f.done() for f in futures)
        assert all(f.cancelled() for f in futures[1:])


class TestConcurrencyStress:
    """ISSUE satellite: >= 200 interleaved requests from >= 8 threads,
    resolved results bitwise-identical to sequential estimates, cache
    counters consistent."""

    N_THREADS = 8
    PER_THREAD = 30  # 240 requests total

    def test_batcher_matches_sequential_bitwise(self, serve_estimator,
                                                conjunctive_workload):
        queries = conjunctive_workload.queries[:60]
        expected = {id(q): serve_estimator.estimate(q) for q in queries}
        results: dict[tuple[int, int], tuple[int, float]] = {}
        lock = threading.Lock()
        start = threading.Barrier(self.N_THREADS)

        with MicroBatcher(serve_estimator.estimate_batch, max_batch_size=16,
                          max_wait_ms=2.0) as batcher:
            def worker(worker_id: int) -> None:
                start.wait()
                rng = np.random.default_rng(worker_id)
                picks = rng.integers(0, len(queries), self.PER_THREAD)
                futures = [(int(p), batcher.submit(queries[p]))
                           for p in picks]
                local = {}
                for i, (pick, future) in enumerate(futures):
                    local[(worker_id, i)] = (pick, future.result(timeout=30))
                with lock:
                    results.update(local)

            threads = [threading.Thread(target=worker, args=(t,))
                       for t in range(self.N_THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert len(results) == self.N_THREADS * self.PER_THREAD
        for pick, value in results.values():
            # Bitwise equality: the batch a request rode in must not
            # influence its estimate.
            assert value == expected[id(queries[pick])]

    def test_service_stress_with_cache_counters(self, serve_estimator,
                                                conjunctive_workload):
        queries = conjunctive_workload.queries[:40]
        expected = {id(q): serve_estimator.estimate(q) for q in queries}
        service = EstimationService(serve_estimator, max_batch_size=16,
                                    max_wait_ms=2.0, cache_size=1024,
                                    max_inflight=512)
        failures: list[str] = []
        lock = threading.Lock()
        start = threading.Barrier(self.N_THREADS)

        def worker(worker_id: int) -> None:
            start.wait()
            rng = np.random.default_rng(100 + worker_id)
            for pick in rng.integers(0, len(queries), self.PER_THREAD):
                value, _ = service.estimate(queries[pick])
                if value != expected[id(queries[pick])]:
                    with lock:
                        failures.append(
                            f"query {pick}: {value} != "
                            f"{expected[id(queries[pick])]}")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.close()

        assert failures == []
        stats = service.cache.stats()
        total = self.N_THREADS * self.PER_THREAD
        # Every request either hit or missed, nothing lost or counted
        # twice; at least one hit per distinct query after warm-up.
        assert stats["hits"] + stats["misses"] == total
        # Each distinct query must miss at least once before it can be
        # cached, and with 240 requests over 40 queries hits dominate.
        assert stats["misses"] >= stats["size"]
        assert stats["hits"] > 0
        assert stats["size"] <= len(queries)
