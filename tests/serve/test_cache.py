"""Tests for the thread-safe LRU estimate cache."""

from __future__ import annotations

import threading

from repro import obs
from repro.serve import EstimateCache, query_cache_key
from repro.workloads.serialization import canonical_query_text


class TestLookupStore:
    def test_miss_then_hit(self):
        cache = EstimateCache(max_size=4)
        assert cache.lookup("k1") is None
        cache.store("k1", 42.0)
        assert cache.lookup("k1") == 42.0
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = EstimateCache(max_size=2)
        cache.store("a", 1.0)
        cache.store("b", 2.0)
        assert cache.lookup("a") == 1.0  # refresh a; b is now LRU
        cache.store("c", 3.0)            # evicts b
        assert cache.lookup("b") is None
        assert cache.lookup("a") == 1.0
        assert cache.lookup("c") == 3.0
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_store_refreshes_existing_key(self):
        cache = EstimateCache(max_size=2)
        cache.store("a", 1.0)
        cache.store("b", 2.0)
        cache.store("a", 10.0)  # refresh, not insert
        cache.store("c", 3.0)   # evicts b (a was refreshed)
        assert cache.lookup("a") == 10.0
        assert cache.lookup("b") is None

    def test_clear_keeps_counters(self):
        cache = EstimateCache(max_size=4)
        cache.store("a", 1.0)
        cache.lookup("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup("a") is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1


class TestDisabledCache:
    def test_zero_capacity_disables_everything(self):
        cache = EstimateCache(max_size=0)
        assert not cache.enabled
        cache.store("a", 1.0)
        assert cache.lookup("a") is None
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0


class TestGlobalCounters:
    def test_hits_and_misses_mirrored_to_registry(self):
        obs.reset()
        cache = EstimateCache(max_size=2)
        cache.lookup("a")
        cache.store("a", 1.0)
        cache.lookup("a")
        cache.store("b", 1.0)
        cache.store("c", 1.0)  # evicts
        snapshot = obs.get_registry().snapshot()
        assert snapshot["serve.cache.misses"]["value"] == 1
        assert snapshot["serve.cache.hits"]["value"] == 1
        assert snapshot["serve.cache.evictions"]["value"] == 1


class TestCacheKey:
    def test_key_is_canonical_serialized_form(self, conjunctive_workload):
        query = conjunctive_workload.queries[0]
        assert query_cache_key(query) == canonical_query_text(query)

    def test_distinct_queries_distinct_keys(self, conjunctive_workload):
        queries = conjunctive_workload.queries[:50]
        keys = {query_cache_key(q) for q in queries}
        texts = {q.to_sql() for q in queries}
        assert len(keys) == len(texts)


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = EstimateCache(max_size=32)

        def worker(base: int) -> None:
            for i in range(300):
                key = f"k{(base + i) % 64}"
                if cache.lookup(key) is None:
                    cache.store(key, float(i))

        threads = [threading.Thread(target=worker, args=(t * 7,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 300
