"""Tests for equi-depth partitioned Universal Conjunction Encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.stats import TableStats
from repro.data.table import Table
from repro.featurize import ConjunctiveEncoding
from repro.featurize.equidepth import EquiDepthConjunctiveEncoding
from repro.sql.ast import And, Op, SimplePredicate
from repro.sql.executor import selection_mask
from repro.sql.parser import parse_where


@pytest.fixture(scope="module")
def skewed_table():
    """A heavily skewed column: 90% of rows in 1% of the domain."""
    rng = np.random.default_rng(4)
    head = rng.integers(0, 10, 9_000)
    tail = rng.integers(10, 1_000, 1_000)
    return Table("s", {
        "A": np.concatenate([head, tail]).astype(float),
        "B": rng.integers(0, 50, 10_000).astype(float),
    })


@pytest.fixture(scope="module")
def enc(skewed_table):
    return EquiDepthConjunctiveEncoding(skewed_table, max_partitions=16,
                                        attr_selectivity=False)


class TestGeometry:
    def test_boundaries_follow_the_data(self, enc, skewed_table):
        """Equi-depth spends most partitions on the dense head."""
        head_partitions = {enc.partition_index("A", v) for v in range(0, 10)}
        tail_partitions = {enc.partition_index("A", v)
                           for v in range(10, 1_000, 10)}
        assert len(head_partitions) > len(tail_partitions)

    def test_equal_width_wastes_partitions_on_the_tail(self, skewed_table):
        equal_width = ConjunctiveEncoding(skewed_table, max_partitions=16,
                                          attr_selectivity=False)
        head_partitions = {equal_width.partition_index("A", v)
                           for v in range(0, 10)}
        assert len(head_partitions) == 1  # the whole head in one bucket

    def test_partition_index_monotone(self, enc):
        indices = [enc.partition_index("A", v) for v in range(0, 1000, 7)]
        assert indices == sorted(indices)

    def test_out_of_domain_virtual_indices(self, enc):
        assert enc.partition_index("A", -5) == -1
        assert enc.partition_index("A", 5_000) == enc.partitions("A")

    def test_small_domain_is_exact(self, skewed_table):
        enc = EquiDepthConjunctiveEncoding(skewed_table, max_partitions=64,
                                           attr_selectivity=False)
        assert enc.is_exact("B")
        assert not enc.is_exact("A")

    def test_rejects_stats_snapshot(self, skewed_table):
        snapshot = TableStats.from_table(skewed_table)
        with pytest.raises(TypeError, match="column values"):
            EquiDepthConjunctiveEncoding(snapshot)

    def test_config_records_partitioning(self, enc):
        assert enc.get_config()["partitioning"] == "equi-depth"


class TestSemantics:
    def test_alphabet(self, enc):
        vector = enc.featurize(parse_where("A >= 3 AND A <= 500 AND B <> 7"))
        assert set(np.unique(vector)) <= {0.0, 0.5, 1.0}

    def test_conjunction_only_lowers(self, enc):
        base = enc.featurize(parse_where("A >= 3"))
        more = enc.featurize(parse_where("A >= 3 AND A <= 500"))
        assert np.all(more <= base + 1e-12)

    def test_exact_attribute_decodes(self, skewed_table):
        """On the exact attribute the encoding at full resolution is the
        qualifying-set indicator (Lemma 3.2), same as equal-width."""
        enc = EquiDepthConjunctiveEncoding(skewed_table, max_partitions=64,
                                           attr_selectivity=False)
        slices = enc.attribute_slices()
        expr = parse_where("B >= 10 AND B <= 20 AND B <> 13")
        vector = enc.featurize(expr)[slices["B"]]
        uniques = np.unique(skewed_table.column("B").values)
        qualifying = {float(u) for u in uniques
                      if 10 <= u <= 20 and u != 13}
        decoded = {float(uniques[i]) for i in np.nonzero(vector == 1.0)[0]}
        assert decoded == qualifying

    predicates = st.lists(
        st.builds(SimplePredicate,
                  attribute=st.just("B"),
                  op=st.sampled_from(list(Op)),
                  value=st.integers(min_value=-2, max_value=52).map(float)),
        min_size=1, max_size=4,
    )

    @given(predicates)
    @settings(max_examples=150, deadline=None)
    def test_exact_partitions_track_reality(self, skewed_table, preds):
        """Every partition marked 1 contains only qualifying rows; every
        partition marked 0 contains none."""
        enc = EquiDepthConjunctiveEncoding(skewed_table, max_partitions=64,
                                           attr_selectivity=False)
        expr = And(preds) if len(preds) > 1 else preds[0]
        slices = enc.attribute_slices()
        vector = enc.featurize(expr)[slices["B"]]
        values = skewed_table.column("B").values
        mask = selection_mask(expr, skewed_table)
        uniques = np.unique(values)
        for i, unique in enumerate(uniques):
            rows = values == unique
            if vector[i] == 1.0:
                assert mask[rows].all()
            elif vector[i] == 0.0:
                assert not mask[rows].any()


class TestAccuracyOnSkew:
    def test_fewer_collisions_than_equal_width_on_skew(self, skewed_table):
        """The point of the extension: at the same budget, equi-depth
        distinguishes more queries on skewed data."""
        from repro.featurize.analysis import collision_report
        from repro.workloads import generate_conjunctive_workload

        workload = generate_conjunctive_workload(
            skewed_table, 300, max_attributes=1, attributes=["A"], seed=6)
        equal_width = ConjunctiveEncoding(skewed_table, max_partitions=8,
                                          attr_selectivity=False)
        equi_depth = EquiDepthConjunctiveEncoding(
            skewed_table, max_partitions=8, attr_selectivity=False)
        ew = collision_report(equal_width, workload)
        ed = collision_report(equi_depth, workload)
        assert ed.distinct_vectors >= ew.distinct_vectors
