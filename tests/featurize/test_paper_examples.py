"""The worked featurization examples from the paper, reproduced exactly.

Section 3.2's example: a table with numeric attributes A, B, C where
min(A) = -9, max(A) = 50, min(B) = 0, max(B) = 115 and C only contains
values in {1, 2}; n = 12 per-attribute entries.  Section 3.3's example
uses the same table.  These tests pin our Algorithm 1/2 implementations
to the paper's published vectors entry by entry.
"""

import numpy as np
import pytest

from repro.featurize import ConjunctiveEncoding, DisjunctionEncoding
from repro.sql.parser import parse_where

H = 0.5


@pytest.fixture(scope="module")
def conj(paper_table):
    return ConjunctiveEncoding(paper_table, max_partitions=12,
                               attr_selectivity=False)


@pytest.fixture(scope="module")
def disj(paper_table):
    return DisjunctionEncoding(paper_table, max_partitions=12,
                               attr_selectivity=False)


class TestPartitionGeometry:
    def test_partition_counts(self, conj):
        # A spans 60 values, B spans 116 -> both capped at n = 12;
        # C spans 2 values -> exactly 2 partitions, one per value.
        assert conj.partitions("A") == 12
        assert conj.partitions("B") == 12
        assert conj.partitions("C") == 2

    def test_exactness(self, conj):
        assert not conj.is_exact("A")
        assert not conj.is_exact("B")
        assert conj.is_exact("C")

    def test_index_formula_from_paper(self, conj):
        # "7 maps to the fourth entry in the vector of A since
        # floor((7-(-9))/(50-(-9)+1) * 12) = 3".
        assert conj.partition_index("A", 7) == 3

    def test_out_of_domain_indices(self, conj):
        assert conj.partition_index("A", -100) == -1
        assert conj.partition_index("A", 100) == 12


class TestSection32Example:
    """A < 7 AND B >= 30 AND B <= 100 AND B <> 66 with n = 12."""

    def test_full_vector(self, conj):
        expr = parse_where("A < 7 AND B >= 30 AND B <= 100 AND B <> 66")
        vector = conj.featurize(expr)
        expected_a = [1, 1, 1, H, 0, 0, 0, 0, 0, 0, 0, 0]
        expected_b = [0, 0, 0, H, 1, 1, H, 1, 1, 1, H, 0]
        expected_c = [1, 1]
        np.testing.assert_array_equal(
            vector, np.asarray(expected_a + expected_b + expected_c)
        )

    def test_no_predicate_attribute_is_all_one(self, conj):
        vector = conj.featurize(parse_where("A < 7"))
        slices = conj.attribute_slices()
        np.testing.assert_array_equal(vector[slices["B"]], np.ones(12))
        np.testing.assert_array_equal(vector[slices["C"]], np.ones(2))

    def test_selectivity_appendix_values(self, paper_table):
        """With the gray lines on, each attribute gains one entry holding
        the uniformity-assumption selectivity of its conjunction."""
        featurizer = ConjunctiveEncoding(paper_table, max_partitions=12,
                                         attr_selectivity=True)
        expr = parse_where("A < 7 AND B >= 30 AND B <= 100 AND B <> 66")
        vector = featurizer.featurize(expr)
        slices = featurizer.attribute_slices()
        # A < 7 qualifies the 16 integers in [-9, 6] out of 60.
        assert vector[slices["A"]][-1] == pytest.approx(16 / 60)
        # 30 <= B <= 100 minus one excluded value: 70 of 116.
        assert vector[slices["B"]][-1] == pytest.approx(70 / 116)
        # No predicate on C.
        assert vector[slices["C"]][-1] == 1.0


class TestSection33Example:
    """(A > -2 AND A <= 30 AND A != 7 OR A >= 42) AND B >= 39.5."""

    def test_first_conjunction_branch(self, conj):
        vector = conj.featurize(parse_where("A > -2 AND A <= 30 AND A != 7"))
        slices = conj.attribute_slices()
        expected = [0, H, 1, H, 1, 1, 1, H, 0, 0, 0, 0]
        np.testing.assert_array_equal(vector[slices["A"]], expected)

    def test_second_conjunction_branch(self, conj):
        vector = conj.featurize(parse_where("A >= 42"))
        slices = conj.attribute_slices()
        expected = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, H, 1]
        np.testing.assert_array_equal(vector[slices["A"]], expected)

    def test_merged_disjunction(self, disj):
        expr = parse_where(
            "(A > -2 AND A <= 30 AND A != 7 OR A >= 42) AND B >= 39.5"
        )
        vector = disj.featurize(expr)
        slices = disj.attribute_slices()
        expected_a = [0, H, 1, H, 1, 1, 1, H, 0, 0, H, 1]
        expected_b = [0, 0, 0, 0, H, 1, 1, 1, 1, 1, 1, 1]
        expected_c = [1, 1]
        np.testing.assert_array_equal(vector[slices["A"]], expected_a)
        np.testing.assert_array_equal(vector[slices["B"]], expected_b)
        np.testing.assert_array_equal(vector[slices["C"]], expected_c)
