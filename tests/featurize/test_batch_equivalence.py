"""Batch featurization must be bitwise-identical to the scalar path.

The compile → encode pipeline (``compile_batch`` +
``_featurize_compiled``) re-implements every QFT's scalar ``featurize``
with columnar numpy kernels.  Its contract is exact equality — not
approximate: ``featurize_batch(queries)`` row ``i`` equals
``featurize(queries[i])`` to the last bit, for every QFT, on
conjunctive, mixed, and predicate-free queries alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    EquiDepthConjunctiveEncoding,
    GlobalJoinFeaturizer,
    LosslessnessError,
    RangeEncoding,
    SingularEncoding,
)
from repro.sql.ast import Query


def scalar_matrix(featurizer, queries):
    return np.stack([featurizer.featurize(q) for q in queries])


def featurizer_cases(table):
    """(label, featurizer) pairs covering every QFT and merge variant."""
    return [
        ("simple", SingularEncoding(table)),
        ("range", RangeEncoding(table)),
        ("conjunctive", ConjunctiveEncoding(table, max_partitions=16)),
        ("conjunctive-no-sel",
         ConjunctiveEncoding(table, max_partitions=16,
                             attr_selectivity=False)),
        ("equidepth",
         EquiDepthConjunctiveEncoding(table, max_partitions=16)),
        ("complex-max",
         DisjunctionEncoding(table, max_partitions=16, merge="max")),
        ("complex-sum",
         DisjunctionEncoding(table, max_partitions=16, merge="sum")),
    ]


class TestConjunctiveWorkloadEquivalence:
    def test_every_qft_matches_scalar(self, small_forest,
                                      conjunctive_workload):
        queries = conjunctive_workload.queries
        for label, featurizer in featurizer_cases(small_forest):
            batch = featurizer.featurize_batch(queries)
            expected = scalar_matrix(featurizer, queries)
            assert np.array_equal(batch, expected), (
                f"{label}: batch diverges from scalar on conjunctive queries"
            )

    def test_batch_shape_and_dtype(self, small_forest, conjunctive_workload):
        queries = conjunctive_workload.queries
        featurizer = ConjunctiveEncoding(small_forest, max_partitions=16)
        batch = featurizer.featurize_batch(queries)
        assert batch.shape == (len(queries), featurizer.feature_length)
        assert batch.dtype == np.float64


class TestMixedWorkloadEquivalence:
    @pytest.mark.parametrize("merge", ["max", "sum"])
    def test_disjunction_encoding_matches_scalar(self, small_forest,
                                                 mixed_workload, merge):
        queries = mixed_workload.queries
        featurizer = DisjunctionEncoding(small_forest, max_partitions=16,
                                         merge=merge)
        batch = featurizer.featurize_batch(queries)
        assert np.array_equal(batch, scalar_matrix(featurizer, queries))


class TestEdgeCases:
    def test_predicate_free_queries(self, small_forest):
        queries = [Query.single_table(small_forest.name)] * 3
        for label, featurizer in featurizer_cases(small_forest):
            batch = featurizer.featurize_batch(queries)
            expected = scalar_matrix(featurizer, queries)
            assert np.array_equal(batch, expected), (
                f"{label}: batch diverges from scalar on empty WHERE"
            )

    def test_empty_batch_contract(self, small_forest):
        for label, featurizer in featurizer_cases(small_forest):
            batch = featurizer.featurize_batch([])
            assert batch.shape == (0, featurizer.feature_length), label
            assert batch.dtype == np.float64, label

    def test_single_query_batch_equals_featurize(self, small_forest,
                                                 conjunctive_workload):
        query = conjunctive_workload.queries[0]
        for label, featurizer in featurizer_cases(small_forest):
            batch = featurizer.featurize_batch([query])
            assert np.array_equal(batch[0], featurizer.featurize(query)), label


class TestPlanEncodeEquivalence:
    """Shape plans are an exact re-packaging of the compile stage.

    ``compile_plan`` + ``encode_with_plan(s)`` must reproduce
    ``featurize_batch`` bitwise — same-shape binds, mixed-shape
    stitching, predicate-free queries — for every QFT.  This is the
    contract the serving layer's plan cache and SQL-direct planned
    leg stand on.
    """

    @staticmethod
    def plan_encode(featurizer, queries):
        from repro.featurize.batch import query_shape
        exprs = [featurizer.extract_expr(q) for q in queries]
        shaped = [query_shape(e) for e in exprs]
        plans: dict = {}
        per_query = []
        for (key, _), expr in zip(shaped, exprs):
            if key not in plans:
                plans[key] = featurizer.compile_plan(expr)
            per_query.append(plans[key])
        return featurizer.encode_with_plans(
            per_query, [literals for _, literals in shaped], exprs)

    def test_stitched_encode_matches_batch_every_qft(
            self, small_forest, conjunctive_workload):
        queries = [q for q in conjunctive_workload.queries[:64]]
        queries.append(Query.single_table(small_forest.name))
        for label, featurizer in featurizer_cases(small_forest):
            matrix = self.plan_encode(featurizer, queries)
            expected = featurizer.featurize_batch(queries)
            assert np.array_equal(matrix, expected), (
                f"{label}: stitched plan encode diverges from batch")

    def test_stitched_encode_matches_on_disjunctions(
            self, small_forest, mixed_workload):
        queries = mixed_workload.queries[:48]
        for merge in ("max", "sum"):
            featurizer = DisjunctionEncoding(small_forest,
                                             max_partitions=16, merge=merge)
            matrix = self.plan_encode(featurizer, queries)
            assert np.array_equal(matrix,
                                  featurizer.featurize_batch(queries)), merge

    def test_same_shape_bind_matches_batch(self, small_forest,
                                           conjunctive_workload):
        from repro.featurize.batch import query_shape
        query = conjunctive_workload.queries[0]
        featurizer = ConjunctiveEncoding(small_forest, max_partitions=16)
        expr = featurizer.extract_expr(query)
        key, literals = query_shape(expr)
        plan = featurizer.compile_plan(expr)
        rows = np.stack([literals, literals * 0.5, literals + 1.0])
        exprs = [expr] * 3  # encode ignores them; shape bookkeeping only
        matrix = featurizer.encode_with_plan(plan, rows, exprs)
        # Scalar cross-check on the first row (identical literals).
        assert np.array_equal(matrix[0], featurizer.featurize(query))

    def test_plan_validation_errors(self, small_forest,
                                    conjunctive_workload):
        from repro.featurize.batch import stitch_plans
        featurizer = ConjunctiveEncoding(small_forest, max_partitions=16)
        other = ConjunctiveEncoding(
            small_forest, attributes=featurizer.attributes[:1],
            max_partitions=16)
        plan = other.compile_plan(None)
        with pytest.raises(ValueError, match="different feature space"):
            featurizer.encode_with_plans([plan], [np.empty(0)], [None])
        with pytest.raises(ValueError, match="parallel"):
            stitch_plans([plan], [], [None])
        with pytest.raises(ValueError, match="empty batch"):
            stitch_plans([], [], [])


class TestLosslessnessParity:
    """featurize_batch rejects out-of-scope queries with the scalar
    path's exact error message."""

    @pytest.mark.parametrize("build", [
        SingularEncoding,
        lambda table: ConjunctiveEncoding(table, max_partitions=16),
    ])
    def test_disjunction_rejected_with_scalar_message(self, small_forest,
                                                      mixed_workload, build):
        featurizer = build(small_forest)
        disjunctive = next(
            q for q in mixed_workload.queries if not q.is_conjunctive()
        )
        with pytest.raises(LosslessnessError) as scalar_error:
            featurizer.featurize(disjunctive)
        with pytest.raises(LosslessnessError) as batch_error:
            featurizer.featurize_batch([disjunctive])
        assert str(batch_error.value) == str(scalar_error.value)


class TestGlobalJoinEquivalence:
    def test_global_featurizer_matches_scalar(self, imdb_schema,
                                              joblight_bench):
        def factory(table, attributes):
            return ConjunctiveEncoding(table, attributes, max_partitions=8)

        featurizer = GlobalJoinFeaturizer(imdb_schema, factory)
        queries = joblight_bench.queries
        batch = featurizer.featurize_batch(queries)
        assert np.array_equal(batch, scalar_matrix(featurizer, queries))
