"""Batch featurization must be bitwise-identical to the scalar path.

The compile → encode pipeline (``compile_batch`` +
``_featurize_compiled``) re-implements every QFT's scalar ``featurize``
with columnar numpy kernels.  Its contract is exact equality — not
approximate: ``featurize_batch(queries)`` row ``i`` equals
``featurize(queries[i])`` to the last bit, for every QFT, on
conjunctive, mixed, and predicate-free queries alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    EquiDepthConjunctiveEncoding,
    GlobalJoinFeaturizer,
    LosslessnessError,
    RangeEncoding,
    SingularEncoding,
)
from repro.sql.ast import Query


def scalar_matrix(featurizer, queries):
    return np.stack([featurizer.featurize(q) for q in queries])


def featurizer_cases(table):
    """(label, featurizer) pairs covering every QFT and merge variant."""
    return [
        ("simple", SingularEncoding(table)),
        ("range", RangeEncoding(table)),
        ("conjunctive", ConjunctiveEncoding(table, max_partitions=16)),
        ("conjunctive-no-sel",
         ConjunctiveEncoding(table, max_partitions=16,
                             attr_selectivity=False)),
        ("equidepth",
         EquiDepthConjunctiveEncoding(table, max_partitions=16)),
        ("complex-max",
         DisjunctionEncoding(table, max_partitions=16, merge="max")),
        ("complex-sum",
         DisjunctionEncoding(table, max_partitions=16, merge="sum")),
    ]


class TestConjunctiveWorkloadEquivalence:
    def test_every_qft_matches_scalar(self, small_forest,
                                      conjunctive_workload):
        queries = conjunctive_workload.queries
        for label, featurizer in featurizer_cases(small_forest):
            batch = featurizer.featurize_batch(queries)
            expected = scalar_matrix(featurizer, queries)
            assert np.array_equal(batch, expected), (
                f"{label}: batch diverges from scalar on conjunctive queries"
            )

    def test_batch_shape_and_dtype(self, small_forest, conjunctive_workload):
        queries = conjunctive_workload.queries
        featurizer = ConjunctiveEncoding(small_forest, max_partitions=16)
        batch = featurizer.featurize_batch(queries)
        assert batch.shape == (len(queries), featurizer.feature_length)
        assert batch.dtype == np.float64


class TestMixedWorkloadEquivalence:
    @pytest.mark.parametrize("merge", ["max", "sum"])
    def test_disjunction_encoding_matches_scalar(self, small_forest,
                                                 mixed_workload, merge):
        queries = mixed_workload.queries
        featurizer = DisjunctionEncoding(small_forest, max_partitions=16,
                                         merge=merge)
        batch = featurizer.featurize_batch(queries)
        assert np.array_equal(batch, scalar_matrix(featurizer, queries))


class TestEdgeCases:
    def test_predicate_free_queries(self, small_forest):
        queries = [Query.single_table(small_forest.name)] * 3
        for label, featurizer in featurizer_cases(small_forest):
            batch = featurizer.featurize_batch(queries)
            expected = scalar_matrix(featurizer, queries)
            assert np.array_equal(batch, expected), (
                f"{label}: batch diverges from scalar on empty WHERE"
            )

    def test_empty_batch_contract(self, small_forest):
        for label, featurizer in featurizer_cases(small_forest):
            batch = featurizer.featurize_batch([])
            assert batch.shape == (0, featurizer.feature_length), label
            assert batch.dtype == np.float64, label

    def test_single_query_batch_equals_featurize(self, small_forest,
                                                 conjunctive_workload):
        query = conjunctive_workload.queries[0]
        for label, featurizer in featurizer_cases(small_forest):
            batch = featurizer.featurize_batch([query])
            assert np.array_equal(batch[0], featurizer.featurize(query)), label


class TestLosslessnessParity:
    """featurize_batch rejects out-of-scope queries with the scalar
    path's exact error message."""

    @pytest.mark.parametrize("build", [
        SingularEncoding,
        lambda table: ConjunctiveEncoding(table, max_partitions=16),
    ])
    def test_disjunction_rejected_with_scalar_message(self, small_forest,
                                                      mixed_workload, build):
        featurizer = build(small_forest)
        disjunctive = next(
            q for q in mixed_workload.queries if not q.is_conjunctive()
        )
        with pytest.raises(LosslessnessError) as scalar_error:
            featurizer.featurize(disjunctive)
        with pytest.raises(LosslessnessError) as batch_error:
            featurizer.featurize_batch([disjunctive])
        assert str(batch_error.value) == str(scalar_error.value)


class TestGlobalJoinEquivalence:
    def test_global_featurizer_matches_scalar(self, imdb_schema,
                                              joblight_bench):
        def factory(table, attributes):
            return ConjunctiveEncoding(table, attributes, max_partitions=8)

        featurizer = GlobalJoinFeaturizer(imdb_schema, factory)
        queries = joblight_bench.queries
        batch = featurizer.featurize_batch(queries)
        assert np.array_equal(batch, scalar_matrix(featurizer, queries))
