"""Tests for the GROUP BY featurization extension (Section 6)."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.featurize.groupby import GroupByVector
from repro.sql.ast import Query


@pytest.fixture(scope="module")
def table():
    return Table("t", {f"A{i}": np.asarray([1.0, 2.0]) for i in range(1, 6)})


def test_paper_example(table):
    """'01010 exactly corresponds to the clause GROUP BY A2, A4'."""
    vector = GroupByVector(table).featurize(["A2", "A4"])
    np.testing.assert_array_equal(vector, [0, 1, 0, 1, 0])


def test_from_query_object(table):
    query = Query.single_table("t", group_by=("A1", "A5"))
    vector = GroupByVector(table).featurize(query)
    np.testing.assert_array_equal(vector, [1, 0, 0, 0, 1])


def test_empty_group_by(table):
    vector = GroupByVector(table).featurize([])
    np.testing.assert_array_equal(vector, np.zeros(5))


def test_qualified_names_stripped(table):
    vector = GroupByVector(table).featurize(["t.A3"])
    np.testing.assert_array_equal(vector, [0, 0, 1, 0, 0])


def test_unknown_attribute_rejected(table):
    with pytest.raises(KeyError, match="grouping attribute"):
        GroupByVector(table).featurize(["A99"])


def test_attribute_subset(table):
    builder = GroupByVector(table, attributes=["A1", "A2"])
    assert builder.feature_length == 2
    with pytest.raises(KeyError):
        builder.featurize(["A3"])


def test_unknown_attribute_in_constructor(table):
    with pytest.raises(KeyError, match="not in table"):
        GroupByVector(table, attributes=["A99"])
