"""Tests for Universal Conjunction Encoding (Algorithm 1)."""

import numpy as np
import pytest

from repro.featurize import ConjunctiveEncoding
from repro.featurize.base import LosslessnessError
from repro.sql.parser import parse_where

H = 0.5


@pytest.fixture(scope="module")
def enc(paper_table):
    return ConjunctiveEncoding(paper_table, max_partitions=12,
                               attr_selectivity=False)


class TestGeometry:
    def test_feature_length_sums_partitions(self, paper_table):
        enc = ConjunctiveEncoding(paper_table, max_partitions=12,
                                  attr_selectivity=False)
        assert enc.feature_length == 12 + 12 + 2
        with_sel = ConjunctiveEncoding(paper_table, max_partitions=12,
                                       attr_selectivity=True)
        assert with_sel.feature_length == 13 + 13 + 3

    def test_attribute_slices_cover_vector(self, enc):
        slices = enc.attribute_slices()
        stops = [s.stop for s in slices.values()]
        starts = [s.start for s in slices.values()]
        assert starts[0] == 0
        assert stops[-1] == enc.feature_length
        for prev_stop, start in zip(stops, starts[1:]):
            assert prev_stop == start

    def test_invalid_max_partitions(self, paper_table):
        with pytest.raises(ValueError, match="max_partitions"):
            ConjunctiveEncoding(paper_table, max_partitions=0)


class TestOperators:
    def test_equality_inexact(self, enc):
        vector = enc.featurize(parse_where("A = 7"))[:12]
        expected = np.zeros(12)
        expected[3] = H
        np.testing.assert_array_equal(vector, expected)

    def test_equality_exact_partition(self, enc):
        vector = enc.featurize(parse_where("C = 2"))[-2:]
        np.testing.assert_array_equal(vector, [0, 1])

    def test_not_equal_exact_partition(self, enc):
        vector = enc.featurize(parse_where("C <> 2"))[-2:]
        np.testing.assert_array_equal(vector, [1, 0])

    def test_gt_vs_ge_exact_partition(self, paper_table):
        enc = ConjunctiveEncoding(paper_table, max_partitions=2,
                                  attr_selectivity=False)
        gt = enc.featurize(parse_where("C > 1"))
        ge = enc.featurize(parse_where("C >= 1"))
        slices = enc.attribute_slices()
        np.testing.assert_array_equal(gt[slices["C"]], [0, 1])
        np.testing.assert_array_equal(ge[slices["C"]], [1, 1])

    def test_lt_vs_le_exact_partition(self, paper_table):
        enc = ConjunctiveEncoding(paper_table, max_partitions=2,
                                  attr_selectivity=False)
        lt = enc.featurize(parse_where("C < 2"))
        le = enc.featurize(parse_where("C <= 2"))
        slices = enc.attribute_slices()
        np.testing.assert_array_equal(lt[slices["C"]], [1, 0])
        np.testing.assert_array_equal(le[slices["C"]], [1, 1])

    def test_out_of_domain_equality_zeroes_attribute(self, enc):
        vector = enc.featurize(parse_where("A = 999"))[:12]
        np.testing.assert_array_equal(vector, np.zeros(12))

    def test_out_of_domain_bounds(self, enc):
        # A > max: nothing qualifies.
        vector = enc.featurize(parse_where("A > 999"))[:12]
        np.testing.assert_array_equal(vector, np.zeros(12))
        # A < min: nothing qualifies.
        vector = enc.featurize(parse_where("A < -999"))[:12]
        np.testing.assert_array_equal(vector, np.zeros(12))
        # A <= max + 10: everything qualifies.
        vector = enc.featurize(parse_where("A <= 999"))[:12]
        np.testing.assert_array_equal(vector, np.ones(12))
        # A >= min - 10: everything qualifies.
        vector = enc.featurize(parse_where("A >= -999"))[:12]
        np.testing.assert_array_equal(vector, np.ones(12))


class TestConjunctionSemantics:
    def test_entries_only_decrease(self, enc):
        """Further predicates can only make a query more selective."""
        base = enc.featurize(parse_where("A >= 0 AND A <= 40"))
        extended = enc.featurize(
            parse_where("A >= 0 AND A <= 40 AND A <> 20 AND A > 5"))
        assert np.all(extended <= base + 1e-12)

    def test_many_predicates_per_attribute_supported(self, enc):
        expr = " AND ".join(f"A <> {v}" for v in range(-5, 40, 3))
        vector = enc.featurize(parse_where(expr))
        assert vector.shape == (enc.feature_length,)

    def test_contradiction_zeroes_attribute(self, enc):
        vector = enc.featurize(parse_where("A > 40 AND A < -5"))[:12]
        np.testing.assert_array_equal(vector, np.zeros(12))

    def test_disjunction_rejected(self, enc):
        with pytest.raises(LosslessnessError, match="conjunctions only"):
            enc.featurize(parse_where("A = 1 OR A = 2"))


class TestLosslessness:
    def test_exact_encoding_is_lossless_on_small_domain(self, paper_table):
        """Lemma 3.2: with one partition per value, distinct result sets
        produce distinct vectors (here: all conjunctions over C)."""
        enc = ConjunctiveEncoding(paper_table, max_partitions=64,
                                  attr_selectivity=False)
        queries = ["C = 1", "C = 2", "C <> 1", "C <> 2", "C >= 1",
                   "C > 1", "C <= 1", "C < 2", "C >= 1 AND C <= 2"]
        by_result: dict[bytes, set] = {}
        c = paper_table.column("C").values
        from repro.sql.executor import selection_mask
        for sql in queries:
            expr = parse_where(sql)
            vector = enc.featurize(expr).tobytes()
            result = frozenset(np.nonzero(selection_mask(expr, paper_table))[0])
            by_result.setdefault(vector, set()).add(result)
        for results in by_result.values():
            assert len(results) == 1, "same vector, different result sets"

    def test_more_partitions_reduce_collisions(self, small_forest,
                                               conjunctive_workload):
        def collisions(entries: int) -> int:
            enc = ConjunctiveEncoding(small_forest, max_partitions=entries,
                                      attr_selectivity=False)
            buckets: dict[bytes, set[int]] = {}
            for item in conjunctive_workload:
                key = enc.featurize(item.query).tobytes()
                buckets.setdefault(key, set()).add(item.cardinality)
            return sum(1 for cards in buckets.values() if len(cards) > 1)

        coarse, fine = collisions(2), collisions(64)
        assert fine <= coarse
