"""Property-based tests of the featurization invariants (hypothesis).

These encode the semantic properties the paper's algorithms are designed
around:

* Algorithm 1 entries take values in {0, 1/2, 1} and a conjunction's
  entries are the entry-wise minimum over its predicates' entries
  (predicates only lower entries).
* Algorithm 2 is the entry-wise max over branch vectors, so adding a
  branch never lowers an entry, branch order is irrelevant, and merging
  is idempotent.
* Featurization is a pure function: equal queries yield equal vectors.
* Lemma 3.2 (losslessness at full resolution): with one partition per
  domain value, two conjunctions with different qualifying value sets
  get different vectors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import Table
from repro.featurize import ConjunctiveEncoding, DisjunctionEncoding
from repro.sql.ast import And, Op, Or, SimplePredicate

DOMAIN = 20  # values 0..19


@pytest.fixture(scope="module")
def table():
    values = np.arange(DOMAIN, dtype=np.float64)
    return Table("t", {"A": values, "B": values.copy()})


predicates = st.builds(
    SimplePredicate,
    attribute=st.just("A"),
    op=st.sampled_from(list(Op)),
    value=st.integers(min_value=-2, max_value=DOMAIN + 1).map(float),
)

conjunctions = st.lists(predicates, min_size=1, max_size=5)


def qualifying_values(preds) -> frozenset:
    """Brute-force qualifying integer set for a conjunction on A."""
    ops = {Op.EQ: np.equal, Op.NE: np.not_equal, Op.LT: np.less,
           Op.LE: np.less_equal, Op.GT: np.greater, Op.GE: np.greater_equal}
    domain = np.arange(DOMAIN)
    mask = np.ones(DOMAIN, dtype=bool)
    for pred in preds:
        mask &= ops[pred.op](domain, pred.value)
    return frozenset(domain[mask].tolist())


class TestConjunctiveProperties:
    @given(conjunctions)
    @settings(max_examples=200, deadline=None)
    def test_entries_in_categorical_alphabet(self, table, preds):
        enc = ConjunctiveEncoding(table, max_partitions=7,
                                  attr_selectivity=False)
        vector = enc.featurize(And(preds) if len(preds) > 1 else preds[0])
        assert set(np.unique(vector)) <= {0.0, 0.5, 1.0}

    @given(conjunctions, predicates)
    @settings(max_examples=200, deadline=None)
    def test_adding_predicate_never_raises_entries(self, table, preds, extra):
        enc = ConjunctiveEncoding(table, max_partitions=7,
                                  attr_selectivity=False)
        base = enc.featurize(And(preds) if len(preds) > 1 else preds[0])
        extended = enc.featurize(And([*preds, extra]))
        assert np.all(extended <= base + 1e-12)

    @given(conjunctions)
    @settings(max_examples=100, deadline=None)
    def test_determinism(self, table, preds):
        enc = ConjunctiveEncoding(table, max_partitions=7)
        expr = And(preds) if len(preds) > 1 else preds[0]
        np.testing.assert_array_equal(enc.featurize(expr), enc.featurize(expr))

    @given(conjunctions)
    @settings(max_examples=100, deadline=None)
    def test_predicate_order_irrelevant(self, table, preds):
        enc = ConjunctiveEncoding(table, max_partitions=7)
        forward = And(preds) if len(preds) > 1 else preds[0]
        backward = (And(list(reversed(preds))) if len(preds) > 1
                    else preds[0])
        np.testing.assert_array_equal(enc.featurize(forward),
                                      enc.featurize(backward))

    @given(conjunctions, conjunctions)
    @settings(max_examples=200, deadline=None)
    def test_lossless_at_full_resolution(self, table, left, right):
        """Lemma 3.2: at one partition per value, different qualifying
        sets imply different feature vectors."""
        enc = ConjunctiveEncoding(table, max_partitions=DOMAIN,
                                  attr_selectivity=False)
        if qualifying_values(left) == qualifying_values(right):
            return
        v_left = enc.featurize(And(left) if len(left) > 1 else left[0])
        v_right = enc.featurize(And(right) if len(right) > 1 else right[0])
        assert not np.array_equal(v_left, v_right)

    @given(conjunctions)
    @settings(max_examples=200, deadline=None)
    def test_exact_encoding_decodes_to_qualifying_set(self, table, preds):
        """At full resolution the vector IS the qualifying indicator."""
        enc = ConjunctiveEncoding(table, max_partitions=DOMAIN,
                                  attr_selectivity=False)
        vector = enc.featurize(And(preds) if len(preds) > 1 else preds[0])
        slices = enc.attribute_slices()
        decoded = frozenset(np.nonzero(vector[slices["A"]] == 1.0)[0].tolist())
        assert decoded == qualifying_values(preds)


class TestDisjunctionProperties:
    @given(st.lists(conjunctions, min_size=1, max_size=3))
    @settings(max_examples=150, deadline=None)
    def test_branch_order_irrelevant(self, table, branches):
        enc = DisjunctionEncoding(table, max_partitions=7,
                                  attr_selectivity=False)

        def expr(order):
            parts = [And(b) if len(b) > 1 else b[0] for b in order]
            return Or(parts) if len(parts) > 1 else parts[0]

        np.testing.assert_array_equal(
            enc.featurize(expr(branches)),
            enc.featurize(expr(list(reversed(branches)))),
        )

    @given(st.lists(conjunctions, min_size=1, max_size=3), conjunctions)
    @settings(max_examples=150, deadline=None)
    def test_adding_branch_never_lowers_entries(self, table, branches, extra):
        enc = DisjunctionEncoding(table, max_partitions=7,
                                  attr_selectivity=False)
        parts = [And(b) if len(b) > 1 else b[0] for b in branches]
        base = enc.featurize(Or(parts) if len(parts) > 1 else parts[0])
        widened = enc.featurize(Or([*parts, And(extra) if len(extra) > 1
                                    else extra[0]]))
        assert np.all(widened >= base - 1e-12)

    @given(conjunctions)
    @settings(max_examples=100, deadline=None)
    def test_self_union_idempotent(self, table, preds):
        enc = DisjunctionEncoding(table, max_partitions=7,
                                  attr_selectivity=False)
        branch = And(preds) if len(preds) > 1 else preds[0]
        np.testing.assert_array_equal(
            enc.featurize(branch),
            enc.featurize(Or([branch, branch])),
        )
