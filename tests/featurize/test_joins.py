"""Tests for join-query featurization composition."""

import numpy as np
import pytest

from repro.featurize import ConjunctiveEncoding, JoinQueryFeaturizer
from repro.featurize.joins import (
    GlobalJoinFeaturizer,
    TableSetVector,
    join_key_columns,
    predicate_columns,
)
from repro.sql.parser import parse_query


def conj_factory(table, attributes):
    return ConjunctiveEncoding(table, attributes, max_partitions=8)


class TestKeyColumns:
    def test_join_keys_identified(self, imdb_schema):
        keys = join_key_columns(imdb_schema)
        assert keys["title"] == {"id"}
        assert keys["cast_info"] == {"movie_id"}

    def test_predicate_columns_exclude_keys(self, imdb_schema):
        columns = predicate_columns(imdb_schema, "cast_info")
        assert "movie_id" not in columns
        assert "role_id" in columns


class TestJoinQueryFeaturizer:
    def test_feature_length_sums_tables(self, imdb_schema):
        single = JoinQueryFeaturizer(imdb_schema, ["title"], conj_factory)
        pair = JoinQueryFeaturizer(imdb_schema, ["title", "cast_info"],
                                   conj_factory)
        assert pair.feature_length > single.feature_length

    def test_routes_predicates_to_tables(self, imdb_schema):
        featurizer = JoinQueryFeaturizer(imdb_schema, ["title", "cast_info"],
                                         conj_factory)
        query = parse_query(
            "SELECT count(*) FROM title, cast_info "
            "WHERE cast_info.movie_id = title.id AND cast_info.role_id = 3")
        vector = featurizer.featurize(query)
        title_len = featurizer.featurizer_for("title").feature_length
        # Title has no predicates -> its conj segment is the no-predicate
        # encoding (all partitions 1).
        no_pred = featurizer.featurizer_for("title").featurize(None)
        np.testing.assert_array_equal(vector[:title_len], no_pred)
        # cast_info's segment differs from its no-predicate encoding.
        cast_no_pred = featurizer.featurizer_for("cast_info").featurize(None)
        assert not np.array_equal(vector[title_len:], cast_no_pred)

    def test_rejects_wrong_table_set(self, imdb_schema):
        featurizer = JoinQueryFeaturizer(imdb_schema, ["title", "cast_info"],
                                         conj_factory)
        query = parse_query(
            "SELECT count(*) FROM title, movie_keyword "
            "WHERE movie_keyword.movie_id = title.id")
        with pytest.raises(ValueError, match="covers"):
            featurizer.featurize(query)

    def test_rejects_disconnected_subschema(self, imdb_schema):
        with pytest.raises(ValueError, match="connected"):
            JoinQueryFeaturizer(imdb_schema, ["cast_info", "movie_keyword"],
                                conj_factory)

    def test_batch_shape(self, imdb_schema, joblight_bench):
        items = [it for it in joblight_bench
                 if set(it.query.tables) == {"title", "cast_info"}]
        featurizer = JoinQueryFeaturizer(imdb_schema, ["title", "cast_info"],
                                         conj_factory)
        if items:
            matrix = featurizer.featurize_batch([it.query for it in items])
            assert matrix.shape == (len(items), featurizer.feature_length)


class TestTableSetVector:
    def test_bitmap_semantics(self, imdb_schema):
        vector_builder = TableSetVector(imdb_schema)
        query = parse_query(
            "SELECT count(*) FROM title, cast_info "
            "WHERE cast_info.movie_id = title.id")
        bitmap = vector_builder.featurize(query)
        names = imdb_schema.table_names
        assert bitmap[names.index("title")] == 1.0
        assert bitmap[names.index("cast_info")] == 1.0
        assert bitmap.sum() == 2.0

    def test_unknown_table_rejected(self, imdb_schema):
        vector_builder = TableSetVector(imdb_schema)
        query = parse_query("SELECT count(*) FROM ghost")
        with pytest.raises(KeyError, match="ghost"):
            vector_builder.featurize(query)


class TestGlobalJoinFeaturizer:
    def test_bitmap_prefix_and_total_length(self, imdb_schema):
        featurizer = GlobalJoinFeaturizer(imdb_schema, conj_factory)
        query = parse_query(
            "SELECT count(*) FROM title, cast_info "
            "WHERE cast_info.movie_id = title.id AND title.kind_id = 1")
        vector = featurizer.featurize(query)
        assert vector.shape == (featurizer.feature_length,)
        n_tables = len(imdb_schema.table_names)
        assert vector[:n_tables].sum() == 2.0

    def test_absent_tables_get_default_encoding(self, imdb_schema):
        featurizer = GlobalJoinFeaturizer(imdb_schema, conj_factory)
        q1 = parse_query("SELECT count(*) FROM title WHERE kind_id = 1")
        q2 = parse_query(
            "SELECT count(*) FROM title, cast_info "
            "WHERE cast_info.movie_id = title.id AND title.kind_id = 1")
        v1, v2 = featurizer.featurize(q1), featurizer.featurize(q2)
        # Only the table bitmap distinguishes the two queries.
        n_tables = len(imdb_schema.table_names)
        assert not np.array_equal(v1[:n_tables], v2[:n_tables])
        np.testing.assert_array_equal(v1[n_tables:], v2[n_tables:])
