"""Tests for Singular Predicate Encoding."""

import numpy as np
import pytest

from repro.featurize import SingularEncoding
from repro.featurize.base import LosslessnessError
from repro.sql.ast import Query
from repro.sql.parser import parse_where


@pytest.fixture(scope="module")
def enc(paper_table):
    return SingularEncoding(paper_table)


def test_feature_length_is_4m(enc):
    assert enc.feature_length == 4 * 3


def test_empty_query_is_zero_vector(enc):
    np.testing.assert_array_equal(enc.featurize(None), np.zeros(12))


def test_paper_layout_example(enc, paper_table):
    """A > 5 AND B = 7: operator bits then normalised literal, per attribute."""
    vector = enc.featurize(parse_where("A > 5 AND B = 7"))
    # A: (=,>,<) = (0,1,0), literal (5+9)/59.
    np.testing.assert_allclose(vector[0:4], [0, 1, 0, 14 / 59])
    # B: (1,0,0), literal 7/115.
    np.testing.assert_allclose(vector[4:8], [1, 0, 0, 7 / 115])
    # C: no predicate -> all zero.
    np.testing.assert_array_equal(vector[8:12], np.zeros(4))


def test_compound_operator_bits(enc):
    vector = enc.featurize(parse_where("A >= 5"))
    np.testing.assert_array_equal(vector[0:3], [1, 1, 0])
    vector = enc.featurize(parse_where("A <> 5"))
    np.testing.assert_array_equal(vector[0:3], [0, 1, 1])
    vector = enc.featurize(parse_where("A <= 5"))
    np.testing.assert_array_equal(vector[0:3], [1, 0, 1])


def test_information_loss_multiple_predicates(enc):
    """k > 1 predicates on one attribute: only the first is kept — the
    defining failure mode Section 3 analyses."""
    one = enc.featurize(parse_where("A >= 5"))
    two = enc.featurize(parse_where("A >= 5 AND A <= 30"))
    np.testing.assert_array_equal(one, two)


def test_disjunctions_rejected(enc):
    with pytest.raises(LosslessnessError, match="disjunction"):
        enc.featurize(parse_where("A = 1 OR A = 2"))


def test_query_object_accepted(enc):
    query = Query.single_table("t", parse_where("A > 5"))
    vector = enc.featurize(query)
    assert vector[1] == 1.0


def test_wrong_table_rejected(enc):
    query = Query.single_table("other", parse_where("A > 5"))
    with pytest.raises(ValueError, match="fitted to"):
        enc.featurize(query)


def test_unknown_attribute_rejected(enc):
    with pytest.raises(KeyError, match="unknown attribute"):
        enc.featurize(parse_where("Z > 5"))


def test_attribute_subset(paper_table):
    enc = SingularEncoding(paper_table, attributes=["B"])
    assert enc.feature_length == 4
    with pytest.raises(KeyError):
        enc.featurize(parse_where("A > 5"))
