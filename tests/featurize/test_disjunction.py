"""Tests for Limited Disjunction Encoding (Algorithm 2)."""

import numpy as np
import pytest

from repro.featurize import ConjunctiveEncoding, DisjunctionEncoding
from repro.sql.ast import UnsupportedQueryError
from repro.sql.parser import parse_where

H = 0.5


@pytest.fixture(scope="module")
def enc(paper_table):
    return DisjunctionEncoding(paper_table, max_partitions=12,
                               attr_selectivity=False)


def test_equals_conjunctive_on_conjunctions(paper_table, enc):
    """On purely conjunctive queries both encodings coincide (the paper
    relies on this to omit 'complex' from Table 1)."""
    conj = ConjunctiveEncoding(paper_table, max_partitions=12,
                               attr_selectivity=False)
    for sql in ("A < 7", "A >= 0 AND A <= 40 AND B <> 50",
                "A = 3 AND B > 10 AND C = 1"):
        np.testing.assert_array_equal(
            enc.featurize(parse_where(sql)),
            conj.featurize(parse_where(sql)),
        )


def test_merge_is_entrywise_max(enc):
    left = enc.featurize(parse_where("A <= 10"))
    right = enc.featurize(parse_where("A >= 30"))
    union = enc.featurize(parse_where("A <= 10 OR A >= 30"))
    np.testing.assert_array_equal(union, np.maximum(left, right))


def test_disjunction_only_widens(enc):
    base = enc.featurize(parse_where("A <= 10"))
    widened = enc.featurize(parse_where("A <= 10 OR A = 30"))
    assert np.all(widened >= base - 1e-12)


def test_overlapping_branches_idempotent(enc):
    once = enc.featurize(parse_where("A <= 10"))
    repeated = enc.featurize(parse_where("A <= 10 OR A <= 10"))
    np.testing.assert_array_equal(once, repeated)


def test_selectivity_entry_merged_with_max(paper_table):
    enc = DisjunctionEncoding(paper_table, max_partitions=12,
                              attr_selectivity=True)
    slices = enc.attribute_slices()
    vector = enc.featurize(parse_where("A <= 10 OR A >= 30"))
    sel_left = enc.featurize(parse_where("A <= 10"))[slices["A"]][-1]
    sel_right = enc.featurize(parse_where("A >= 30"))[slices["A"]][-1]
    assert vector[slices["A"]][-1] == pytest.approx(max(sel_left, sel_right))


def test_cross_attribute_disjunction_rejected(enc):
    with pytest.raises(UnsupportedQueryError, match="Definition 3.3"):
        enc.featurize(parse_where("A > 5 OR B > 5"))


def test_sum_merge_ablation(paper_table):
    enc_sum = DisjunctionEncoding(paper_table, max_partitions=12,
                                  attr_selectivity=False, merge="sum")
    vector = enc_sum.featurize(parse_where("A <= 10 OR A >= 30"))
    # Sum merge is clipped at 1 and differs from max only where branches
    # overlap — here they don't, so it must equal the max merge.
    enc_max = DisjunctionEncoding(paper_table, max_partitions=12,
                                  attr_selectivity=False, merge="max")
    np.testing.assert_array_equal(
        vector, enc_max.featurize(parse_where("A <= 10 OR A >= 30")))


def test_sum_merge_clips_at_one(paper_table):
    enc_sum = DisjunctionEncoding(paper_table, max_partitions=12,
                                  attr_selectivity=False, merge="sum")
    vector = enc_sum.featurize(parse_where("A <= 40 OR A <= 41"))
    assert vector.max() <= 1.0


def test_invalid_merge_rejected(paper_table):
    with pytest.raises(ValueError, match="merge"):
        DisjunctionEncoding(paper_table, merge="avg")


def test_non_dnf_mixed_query_supported(enc):
    """Mixed queries need not be in CNF/DNF (Definition 3.3 remark)."""
    vector = enc.featurize(parse_where(
        "(A = 1 OR A = 2) AND (A < 40 OR A > 45) AND B >= 10"))
    assert vector.shape == (enc.feature_length,)
