"""Tests for Range Predicate Encoding."""

import numpy as np
import pytest

from repro.featurize import RangeEncoding
from repro.featurize.base import LosslessnessError
from repro.sql.parser import parse_where


@pytest.fixture(scope="module")
def enc(paper_table):
    return RangeEncoding(paper_table)


def test_feature_length_is_2m(enc):
    assert enc.feature_length == 2 * 3


def test_no_predicates_full_ranges(enc):
    np.testing.assert_array_equal(enc.featurize(None), [0, 1, 0, 1, 0, 1])


def test_equality_collapses_to_point(enc):
    vector = enc.featurize(parse_where("B = 23"))
    assert vector[2] == vector[3] == pytest.approx(23 / 115)


def test_closed_range_from_two_predicates(enc):
    vector = enc.featurize(parse_where("B >= 23 AND B <= 92"))
    assert vector[2] == pytest.approx(23 / 115)
    assert vector[3] == pytest.approx(92 / 115)


def test_strict_bounds_tighten_by_one_on_integers(enc):
    """A < 5 corresponds to [min(A), 4] on integer domains (Section 3.1)."""
    lt = enc.featurize(parse_where("A < 5"))
    le = enc.featurize(parse_where("A <= 4"))
    np.testing.assert_allclose(lt, le)


def test_intersection_of_multiple_ranges(enc):
    vector = enc.featurize(parse_where("B >= 10 AND B >= 30 AND B <= 80 AND B <= 90"))
    assert vector[2] == pytest.approx(30 / 115)
    assert vector[3] == pytest.approx(80 / 115)


def test_not_equal_dropped(enc):
    """<> has no range representation: Figure 3's 3-predicate spike."""
    with_ne = enc.featurize(parse_where("B >= 30 AND B <= 80 AND B <> 50"))
    without = enc.featurize(parse_where("B >= 30 AND B <= 80"))
    np.testing.assert_array_equal(with_ne, without)


def test_empty_intersection_encodes_inverted_range(enc):
    vector = enc.featurize(parse_where("B >= 90 AND B <= 10"))
    assert vector[2] == 1.0
    assert vector[3] == 0.0


def test_disjunctions_rejected(enc):
    with pytest.raises(LosslessnessError, match="disjunction"):
        enc.featurize(parse_where("B = 1 OR B = 2"))


def test_lossless_for_single_range_queries(enc):
    """Distinct single-range queries produce distinct vectors."""
    seen = set()
    for lo, hi in [(0, 115), (0, 50), (20, 50), (20, 115), (33, 34)]:
        key = enc.featurize(parse_where(f"B >= {lo} AND B <= {hi}")).tobytes()
        assert key not in seen
        seen.add(key)
