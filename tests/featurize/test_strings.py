"""Tests for the string-prefix featurization extension (Section 6)."""

import numpy as np
import pytest

from repro.featurize.strings import StringPrefixEncoding

WORDS = ["alpha", "apex", "bravo", "beta", "charlie", "delta", "dog",
         "echo", "ember", "fox", "golf", "hotel"]


@pytest.fixture(scope="module")
def enc():
    return StringPrefixEncoding(WORDS, buckets=6)


def test_dictionary_sorted_unique():
    enc = StringPrefixEncoding(["b", "a", "b", "c"], buckets=3)
    assert enc.dictionary == ["a", "b", "c"]


def test_feature_length(enc):
    assert enc.feature_length == 7  # 6 buckets + selectivity


def test_encode_value(enc):
    assert enc.encode_value("alpha") == 0
    with pytest.raises(KeyError):
        enc.encode_value("zulu")


def test_prefix_selectivity_fraction(enc):
    # 2 of 12 words start with 'b'.
    assert enc.prefix_selectivity("b") == pytest.approx(2 / 12)
    # 'd' matches delta and dog.
    assert enc.prefix_selectivity("d") == pytest.approx(2 / 12)
    assert enc.prefix_selectivity("zz") == 0.0


def test_longer_prefix_narrows(enc):
    assert enc.prefix_selectivity("de") <= enc.prefix_selectivity("d")


def test_no_predicate_is_all_ones(enc):
    vector = enc.featurize_no_predicate()
    np.testing.assert_array_equal(vector[:-1], np.ones(6))
    assert vector[-1] == 1.0


def test_equality_activates_one_region(enc):
    vector = enc.featurize_equals("charlie")
    assert 0 < np.count_nonzero(vector[:-1]) <= 2
    assert vector[-1] == pytest.approx(1 / 12)


def test_equality_of_absent_value(enc):
    vector = enc.featurize_equals("zulu")
    np.testing.assert_array_equal(vector[:-1], np.zeros(6))


def test_prefix_vector_alphabet(enc):
    vector = enc.featurize_prefix("a")[:-1]
    assert set(np.unique(vector)) <= {0.0, 0.5, 1.0}


def test_empty_prefix_rejected(enc):
    with pytest.raises(ValueError, match="non-empty"):
        enc.featurize_prefix("")


def test_rejects_empty_dictionary():
    with pytest.raises(ValueError):
        StringPrefixEncoding([], buckets=4)
    with pytest.raises(ValueError):
        StringPrefixEncoding(["", ""], buckets=4)


def test_without_selectivity_appendix():
    enc = StringPrefixEncoding(WORDS, buckets=4, attr_selectivity=False)
    assert enc.feature_length == 4
    assert enc.prefix_selectivity("a") == pytest.approx(2 / 12)
