"""Tests for the featurization-analysis tools (Definition 3.1 decoder)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import Table
from repro.featurize import ConjunctiveEncoding, DisjunctionEncoding, RangeEncoding
from repro.featurize.analysis import (
    CollisionReport,
    collision_report,
    decode,
    is_lossless_for,
)
from repro.sql.ast import And, Op, Query, SimplePredicate
from repro.sql.executor import selection_mask
from repro.sql.parser import parse_where
from repro.workloads.spec import LabeledQuery, Workload

DOMAIN = 15


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(8)
    return Table("t", {
        "A": rng.integers(0, DOMAIN, 300).astype(float),
        "B": rng.integers(0, DOMAIN, 300).astype(float),
    })


@pytest.fixture(scope="module")
def exact(table):
    # Each column may not span the full [0, DOMAIN) range; rely on the
    # encoder's per-attribute domain size (one partition per value).
    return ConjunctiveEncoding(table, max_partitions=64,
                               attr_selectivity=False)


class TestLosslessness:
    def test_exact_detection(self, table, exact):
        assert is_lossless_for(exact)
        coarse = ConjunctiveEncoding(table, max_partitions=4)
        assert not is_lossless_for(coarse)

    def test_decode_rejects_inexact(self, table):
        coarse = ConjunctiveEncoding(table, max_partitions=4,
                                     attr_selectivity=False)
        vector = coarse.featurize(parse_where("A > 3"))
        with pytest.raises(ValueError, match="exact resolution"):
            decode(coarse, vector)

    def test_decode_rejects_wrong_shape(self, exact):
        with pytest.raises(ValueError, match="shape"):
            decode(exact, np.ones(3))


class TestDecode:
    def check_round_trip(self, exact, table, expr):
        vector = exact.featurize(expr)
        reconstructed = decode(exact, vector)
        original_mask = selection_mask(expr, table)
        decoded_mask = selection_mask(reconstructed.where, table)
        np.testing.assert_array_equal(original_mask, decoded_mask)

    def test_simple_cases(self, exact, table):
        for sql in ("A = 7", "A > 3 AND A <= 10", "A <> 5",
                    "A >= 2 AND A <= 12 AND A <> 4 AND A <> 9 AND B < 6"):
            self.check_round_trip(exact, table, parse_where(sql))

    def test_no_predicate(self, exact, table):
        query = decode(exact, exact.featurize(None))
        assert query.where is None
        assert query.tables == ("t",)

    def test_unsatisfiable_query(self, exact, table):
        expr = parse_where("A > 5 AND A < 3")
        reconstructed = decode(exact, exact.featurize(expr))
        assert selection_mask(reconstructed.where, table).sum() == 0

    def test_disjunction_vectors_decode_too(self, table):
        """At exact resolution even Limited Disjunction Encoding vectors
        invert — the union becomes range + exclusions."""
        enc = DisjunctionEncoding(table, max_partitions=64,
                                  attr_selectivity=False)
        expr = parse_where("A <= 3 OR A >= 11")
        vector = enc.featurize(expr)
        reconstructed = decode(enc, vector)
        np.testing.assert_array_equal(
            selection_mask(expr, table),
            selection_mask(reconstructed.where, table),
        )

    predicates = st.lists(
        st.builds(SimplePredicate,
                  attribute=st.sampled_from(["A", "B"]),
                  op=st.sampled_from(list(Op)),
                  value=st.integers(min_value=-1, max_value=DOMAIN).map(float)),
        min_size=1, max_size=5,
    )

    @given(predicates)
    @settings(max_examples=150, deadline=None)
    def test_round_trip_property(self, table, exact, preds):
        """decode(featurize(Q)) always has exactly Q's result set —
        the constructive proof of Definition 3.1 at exact resolution."""
        expr = And(preds) if len(preds) > 1 else preds[0]
        self.check_round_trip(exact, table, expr)


class TestCollisionReport:
    def _workload(self, table, sqls):
        items = []
        for sql in sqls:
            expr = parse_where(sql)
            card = int(selection_mask(expr, table).sum())
            items.append(LabeledQuery(
                query=Query.single_table("t", expr),
                cardinality=max(card, 1), num_attributes=1, num_predicates=1,
            ))
        return Workload(items, "w")

    def test_lossy_featurizer_collides(self, table):
        """Range encoding drops <>: two different queries, one vector."""
        enc = RangeEncoding(table)
        workload = self._workload(table, [
            "A >= 2 AND A <= 12",
            "A >= 2 AND A <= 12 AND A <> 5",
        ])
        report = collision_report(enc, workload)
        assert report.colliding_queries == 2
        assert report.distinct_vectors == 1
        assert report.collision_rate == 1.0
        assert report.worst_spread > 1.0

    def test_exact_featurizer_does_not_collide(self, table, exact):
        workload = self._workload(table, [
            "A >= 2 AND A <= 12",
            "A >= 2 AND A <= 12 AND A <> 5",
            "A = 3",
        ])
        report = collision_report(exact, workload)
        assert report.colliding_queries == 0
        assert report.collision_rate == 0.0
        assert report.distinct_vectors == 3

    def test_report_dataclass(self):
        report = CollisionReport(total_queries=0, distinct_vectors=0,
                                 colliding_queries=0, worst_spread=1.0)
        assert report.collision_rate == 0.0


class TestErrorPaths:
    """Failure modes of the Definition-3.1 tooling, exercised explicitly."""

    def test_decode_error_names_the_inexact_attributes(self, table):
        """The ValueError tells the user *which* attributes block the
        inverse, so max_partitions can be raised surgically."""
        coarse = ConjunctiveEncoding(table, max_partitions=4,
                                     attr_selectivity=False)
        vector = coarse.featurize(parse_where("A > 3"))
        with pytest.raises(ValueError) as excinfo:
            decode(coarse, vector)
        message = str(excinfo.value)
        assert "exact resolution" in message
        assert "'A'" in message and "'B'" in message
        assert "max_partitions" in message

    def test_decode_rejects_vector_from_other_featurizer(self, table, exact):
        """A vector of the wrong geometry cannot silently decode."""
        other = RangeEncoding(table)
        vector = other.featurize(parse_where("A > 3"))
        assert vector.shape != (exact.feature_length,)
        with pytest.raises(ValueError, match="shape"):
            decode(exact, vector)

    def test_decode_rejects_transposed_batch(self, exact):
        """featurize_batch output (2-D) is not a single vector."""
        batch = exact.featurize_batch([None, None])
        with pytest.raises(ValueError, match="shape"):
            decode(exact, batch)

    def test_collision_report_on_known_colliding_workload(self, table):
        """Three <>-variants of one range collapse onto one Range-encoding
        vector with three different cardinalities: all three queries are
        Equation-4 violations and the spread is the max/min ratio."""
        enc = RangeEncoding(table)
        sqls = [
            "A >= 2 AND A <= 12",
            "A >= 2 AND A <= 12 AND A <> 5",
            "A >= 2 AND A <= 12 AND A <> 5 AND A <> 7",
        ]
        workload = TestCollisionReport._workload(self, table, sqls)
        cards = [item.cardinality for item in workload]
        report = collision_report(enc, workload)
        assert report.total_queries == 3
        assert report.distinct_vectors == 1
        assert report.colliding_queries == 3
        assert report.collision_rate == 1.0
        assert report.worst_spread == pytest.approx(max(cards) / min(cards))

    def test_collision_report_empty_workload(self, exact):
        """Workload objects refuse to be empty, but collision_report
        accepts any iterable of labeled queries; zero queries must not
        divide by zero in the rate."""
        report = collision_report(exact, [])
        assert report.total_queries == 0
        assert report.collision_rate == 0.0
        assert report.worst_spread == 1.0
