"""Tests for the interval folding + uniformity selectivity helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.stats import build_stats
from repro.featurize.selectivity import fold_conjunction, uniform_selectivity
from repro.sql.ast import Op, SimplePredicate


@pytest.fixture(scope="module")
def int_stats():
    return build_stats(np.arange(0.0, 100.0))  # domain [0, 99], size 100


def p(op, val):
    return SimplePredicate("A", Op.from_symbol(op), val)


class TestFolding:
    def test_point_and_range_folding(self, int_stats):
        interval = fold_conjunction([p("=", 5)], int_stats)
        assert (interval.lo, interval.hi) == (5, 5)

        interval = fold_conjunction([p("<=", 5)], int_stats)
        assert (interval.lo, interval.hi) == (0, 5)

        interval = fold_conjunction([p("<", 5)], int_stats)
        assert (interval.lo, interval.hi) == (0, 4)

        interval = fold_conjunction([p(">", 5)], int_stats)
        assert (interval.lo, interval.hi) == (6, 99)

    def test_intersection(self, int_stats):
        interval = fold_conjunction(
            [p(">=", 10), p("<=", 50), p(">=", 20), p("<", 40)], int_stats)
        assert (interval.lo, interval.hi) == (20, 39)

    def test_exclusions_recorded(self, int_stats):
        interval = fold_conjunction([p("<>", 5), p("<>", 7)], int_stats)
        assert interval.excluded == {5, 7}
        assert 5 not in interval
        assert 6 in interval

    def test_empty_interval(self, int_stats):
        interval = fold_conjunction([p(">", 50), p("<", 40)], int_stats)
        assert interval.is_empty

    def test_continuous_strict_bound_uses_small_step(self):
        stats = build_stats(np.asarray([0.0, 10.5]))
        interval = fold_conjunction([p("<", 5.0)], stats)
        assert 4.999 < interval.hi < 5.0


class TestUniformSelectivity:
    def test_full_domain(self, int_stats):
        interval = fold_conjunction([], int_stats)
        assert uniform_selectivity(interval, int_stats) == 1.0

    def test_point_on_integers(self, int_stats):
        interval = fold_conjunction([p("=", 5)], int_stats)
        assert uniform_selectivity(interval, int_stats) == pytest.approx(1 / 100)

    def test_range_with_exclusions(self, int_stats):
        interval = fold_conjunction(
            [p(">=", 10), p("<=", 19), p("<>", 12), p("<>", 99)], int_stats)
        # 10 values minus 1 excluded inside (99 lies outside the range).
        assert uniform_selectivity(interval, int_stats) == pytest.approx(9 / 100)

    def test_empty_interval_is_zero(self, int_stats):
        interval = fold_conjunction([p(">", 50), p("<", 40)], int_stats)
        assert uniform_selectivity(interval, int_stats) == 0.0

    def test_continuous_equality_uses_distinct_count(self):
        stats = build_stats(np.asarray([0.5, 1.5, 2.5, 3.5]))
        interval = fold_conjunction([p("=", 1.5)], stats)
        assert uniform_selectivity(interval, stats) == pytest.approx(1 / 4)

    @given(st.lists(
        st.tuples(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
                  st.integers(min_value=-10, max_value=110)),
        min_size=0, max_size=6,
    ))
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force_on_integer_domain(self, int_stats, spec):
        """The uniformity selectivity equals the exact qualifying fraction
        of the integer domain, for any conjunction of simple predicates."""
        predicates = [p(op, val) for op, val in spec]
        interval = fold_conjunction(predicates, int_stats)
        domain = np.arange(0, 100)
        mask = np.ones(100, dtype=bool)
        ops = {"=": np.equal, "<>": np.not_equal, "<": np.less,
               "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal}
        for op, val in spec:
            mask &= ops[op](domain, val)
        expected = mask.sum() / 100
        assert uniform_selectivity(interval, int_stats) == pytest.approx(expected)
