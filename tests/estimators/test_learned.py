"""Tests for the learned estimators (QFT + model, global, MSCN adapter)."""

import numpy as np
import pytest

from repro.estimators import GlobalLearnedEstimator, LearnedEstimator
from repro.estimators.learned import MSCNEstimator
from repro.featurize import ConjunctiveEncoding
from repro.metrics import qerror
from repro.models import GradientBoostingRegressor
from repro.models.mscn import MSCNInputBuilder, MSCNModel
from repro.sql.parser import parse_query


@pytest.fixture(scope="module")
def fitted(small_forest, conjunctive_workload):
    estimator = LearnedEstimator(
        ConjunctiveEncoding(small_forest, max_partitions=16),
        GradientBoostingRegressor(n_estimators=60),
    )
    train = list(conjunctive_workload)[:300]
    estimator.fit([it.query for it in train],
                  np.asarray([it.cardinality for it in train], dtype=float))
    return estimator


def test_beats_trivial_estimates(fitted, conjunctive_workload):
    """The model must beat the best constant estimator under the q-error
    (the geometric mean of the true cardinalities)."""
    test = list(conjunctive_workload)[300:]
    estimates = fitted.estimate_batch([it.query for it in test])
    truth = np.asarray([it.cardinality for it in test], dtype=float)
    model_err = np.median(qerror(truth, estimates))
    geo_mean = float(np.exp(np.log(truth).mean()))
    constant_err = np.median(qerror(truth, np.full(truth.size, geo_mean)))
    assert model_err < constant_err


def test_estimates_at_least_one(fitted, conjunctive_workload):
    estimates = fitted.estimate_batch(conjunctive_workload.queries[:50])
    assert (estimates >= 1.0).all()


def test_single_estimate_matches_batch(fitted, conjunctive_workload):
    query = conjunctive_workload.queries[0]
    single = fitted.estimate(query)
    batch = fitted.estimate_batch([query])[0]
    assert single == pytest.approx(batch)


def test_unfitted_estimator_rejected(small_forest):
    estimator = LearnedEstimator(
        ConjunctiveEncoding(small_forest, max_partitions=8),
        GradientBoostingRegressor(n_estimators=5),
    )
    with pytest.raises(RuntimeError, match="fitted"):
        estimator.estimate(parse_query("SELECT count(*) FROM forest"))


def test_memory_bytes(fitted):
    assert fitted.memory_bytes() > 0


def test_default_name_mentions_parts(small_forest):
    estimator = LearnedEstimator(
        ConjunctiveEncoding(small_forest, max_partitions=8),
        GradientBoostingRegressor(n_estimators=5),
    )
    assert "conjunctive" in estimator.name
    assert "GradientBoosting" in estimator.name


class TestGlobalLearnedEstimator:
    def test_fits_across_subschemata(self, imdb_schema, joblight_bench):
        estimator = GlobalLearnedEstimator(
            imdb_schema,
            lambda t, a: ConjunctiveEncoding(t, a, max_partitions=8),
            GradientBoostingRegressor(n_estimators=30),
        )
        estimator.fit(joblight_bench.queries, joblight_bench.cardinalities)
        estimates = estimator.estimate_batch(joblight_bench.queries)
        assert estimates.shape == (len(joblight_bench),)
        assert (estimates >= 1.0).all()


class TestMSCNEstimatorAdapter:
    def test_adapts_model_interface(self, imdb_schema, joblight_bench):
        model = MSCNModel(MSCNInputBuilder(imdb_schema, mode="basic"),
                          hidden=8, epochs=2)
        estimator = MSCNEstimator(model).fit(
            joblight_bench.queries, joblight_bench.cardinalities)
        assert estimator.estimate(joblight_bench.queries[0]) >= 1.0
        assert estimator.memory_bytes() > 0

    def test_estimate_before_fit_rejected(self, imdb_schema, joblight_bench):
        model = MSCNModel(MSCNInputBuilder(imdb_schema, mode="basic"),
                          hidden=8, epochs=2)
        estimator = MSCNEstimator(model)
        message = "estimator must be fitted before estimating"
        with pytest.raises(RuntimeError, match=message):
            estimator.estimate(joblight_bench.queries[0])
        with pytest.raises(RuntimeError, match=message):
            estimator.estimate_batch(joblight_bench.queries)
