"""Tests for the Selinger-style Postgres baseline estimator."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.estimators import PostgresEstimator
from repro.estimators.postgres import predicate_selectivity
from repro.sql.ast import Op, Query, SimplePredicate
from repro.sql.parser import parse_query, parse_where


@pytest.fixture(scope="module")
def uniform_table():
    """10k rows, two independent uniform integer columns."""
    rng = np.random.default_rng(0)
    return Table("u", {
        "a": rng.integers(0, 100, 10_000).astype(np.float64),
        "b": rng.integers(0, 100, 10_000).astype(np.float64),
    })


@pytest.fixture(scope="module")
def correlated_table():
    """Two perfectly correlated columns — independence must fail here."""
    rng = np.random.default_rng(1)
    a = rng.integers(0, 100, 10_000).astype(np.float64)
    return Table("c", {"a": a, "b": a.copy()})


class TestPredicateSelectivity:
    def test_equality_uses_mcv(self, uniform_table):
        stats = uniform_table.column("a").stats
        value = stats.mcv_values[0]
        sel = predicate_selectivity(
            stats, SimplePredicate("a", Op.EQ, value))
        assert sel == pytest.approx(stats.mcv_fractions[0])

    def test_range_selectivity_roughly_uniform(self, uniform_table):
        stats = uniform_table.column("a").stats
        sel = predicate_selectivity(stats, SimplePredicate("a", Op.LT, 50))
        assert 0.4 < sel < 0.6

    def test_bounds_clamped(self, uniform_table):
        stats = uniform_table.column("a").stats
        assert predicate_selectivity(
            stats, SimplePredicate("a", Op.LT, -5)) <= 1e-6
        assert predicate_selectivity(
            stats, SimplePredicate("a", Op.LE, 500)) == 1.0

    def test_ne_complements_eq(self, uniform_table):
        stats = uniform_table.column("a").stats
        eq = predicate_selectivity(stats, SimplePredicate("a", Op.EQ, 42))
        ne = predicate_selectivity(stats, SimplePredicate("a", Op.NE, 42))
        assert eq + ne == pytest.approx(1.0)

    def test_out_of_domain_equality_near_zero(self, uniform_table):
        stats = uniform_table.column("a").stats
        sel = predicate_selectivity(stats, SimplePredicate("a", Op.EQ, 12345))
        assert sel <= 1e-6


class TestSingleTableEstimates:
    def test_accurate_on_independent_uniform_data(self, uniform_table):
        estimator = PostgresEstimator(uniform_table)
        query = parse_query("SELECT count(*) FROM u WHERE a < 50 AND b >= 50")
        estimate = estimator.estimate(query)
        assert 0.7 * 2500 < estimate < 1.3 * 2500

    def test_independence_fails_on_correlated_data(self, correlated_table):
        """The motivating failure: a<10 AND b<10 is the same rows, but the
        product rule squares the selectivity."""
        estimator = PostgresEstimator(correlated_table)
        query = parse_query("SELECT count(*) FROM c WHERE a < 10 AND b < 10")
        true_count = int((correlated_table.column("a").values < 10).sum())
        estimate = estimator.estimate(query)
        assert estimate < 0.5 * true_count

    def test_disjunction_union_formula(self, uniform_table):
        estimator = PostgresEstimator(uniform_table)
        query = parse_query("SELECT count(*) FROM u WHERE a < 50 OR b < 50")
        # 1 - 0.5*0.5 = 0.75 of rows.
        assert 0.65 * 10_000 < estimator.estimate(query) < 0.85 * 10_000

    def test_no_predicates_returns_row_count(self, uniform_table):
        estimator = PostgresEstimator(uniform_table)
        assert estimator.estimate(parse_query("SELECT count(*) FROM u")) == 10_000

    def test_estimates_clamped_to_one(self, uniform_table):
        estimator = PostgresEstimator(uniform_table)
        expr = parse_where(" AND ".join(f"a = {i}" for i in range(4)))
        assert estimator.estimate(Query.single_table("u", expr)) >= 1.0


class TestJoinEstimates:
    def test_unfiltered_fk_join_close_to_child_size(self, imdb_schema):
        estimator = PostgresEstimator(imdb_schema)
        query = parse_query(
            "SELECT count(*) FROM title, cast_info "
            "WHERE cast_info.movie_id = title.id")
        child_rows = imdb_schema.table("cast_info").row_count
        estimate = estimator.estimate(query)
        # System-R: |title| * |cast| / max(ndv). All cast rows join, but
        # ndv(movie_id) < |title| (some titles have no cast), so the
        # estimate overshoots somewhat; it must stay in the right regime.
        assert 0.5 * child_rows < estimate < 3 * child_rows

    def test_correlated_filter_misestimates_join(self, imdb_schema):
        """Predicates on year select titles with atypical fan-outs; the
        independence estimate misses that (the Table 1 story)."""
        from repro.sql.executor import cardinality
        estimator = PostgresEstimator(imdb_schema)
        years = imdb_schema.table("title").column("production_year").values
        recent = float(np.quantile(years, 0.85))
        query = parse_query(
            "SELECT count(*) FROM title, cast_info "
            "WHERE cast_info.movie_id = title.id "
            f"AND title.production_year > {recent}")
        true_count = cardinality(query, imdb_schema)
        estimate = estimator.estimate(query)
        ratio = max(estimate / true_count, true_count / estimate)
        assert ratio > 1.5
