"""Tests for the Bernoulli sampling estimator."""

import numpy as np
import pytest

from repro.estimators import SamplingEstimator
from repro.sql.parser import parse_query


def test_unbiased_on_average(small_forest):
    estimator = SamplingEstimator(small_forest, fraction=0.1, seed=1)
    query = parse_query("SELECT count(*) FROM forest WHERE A1 >= 2800")
    true_count = int((small_forest.column("A1").values >= 2800).sum())
    estimates = [estimator.estimate(query) for _ in range(30)]
    assert np.mean(estimates) == pytest.approx(true_count, rel=0.25)


def test_selective_predicates_have_large_tail_errors(small_forest):
    """The paper's 'familiar phenomenon': selective predicates break
    sampling — a query matching few rows often sees zero sample hits."""
    x = small_forest.column("A1").values
    rare = float(np.sort(x)[5])  # ~6 qualifying rows
    estimator = SamplingEstimator(small_forest, fraction=0.01, seed=2)
    query = parse_query(f"SELECT count(*) FROM forest WHERE A1 <= {rare}")
    estimates = [estimator.estimate(query) for _ in range(20)]
    assert min(estimates) == 1.0  # zero sample hits clamp to 1


def test_per_query_resampling_varies(small_forest):
    estimator = SamplingEstimator(small_forest, fraction=0.05, seed=3)
    query = parse_query("SELECT count(*) FROM forest WHERE A1 >= 2800")
    estimates = {estimator.estimate(query) for _ in range(10)}
    assert len(estimates) > 1


def test_fixed_sample_is_deterministic(small_forest):
    estimator = SamplingEstimator(small_forest, fraction=0.05,
                                  per_query_sample=False, seed=4)
    query = parse_query("SELECT count(*) FROM forest WHERE A1 >= 2800")
    assert estimator.estimate(query) == estimator.estimate(query)


def test_fraction_validation(small_forest):
    with pytest.raises(ValueError, match="fraction"):
        SamplingEstimator(small_forest, fraction=0.0)
    with pytest.raises(ValueError, match="fraction"):
        SamplingEstimator(small_forest, fraction=1.5)


def test_sample_bytes_scales_with_fraction(small_forest):
    small = SamplingEstimator(small_forest, fraction=0.01, seed=5)
    large = SamplingEstimator(small_forest, fraction=0.10, seed=5)
    assert large.sample_bytes() > small.sample_bytes() > 0


def test_join_path_runs(imdb_schema, joblight_bench):
    estimator = SamplingEstimator(imdb_schema, fraction=0.05, seed=6)
    estimates = estimator.estimate_batch(joblight_bench.queries[:5])
    assert (estimates >= 1.0).all()
    assert np.isfinite(estimates).all()
