"""Tests for the hybrid estimator (learned base tables + System-R joins)."""

import numpy as np
import pytest

from repro.estimators import PostgresEstimator
from repro.estimators.hybrid import HybridEstimator
from repro.featurize import ConjunctiveEncoding
from repro.metrics import qerror
from repro.models import GradientBoostingRegressor
from repro.sql.ast import Query
from repro.sql.executor import cardinality, per_table_selections
from repro.sql.parser import parse_query


@pytest.fixture(scope="module")
def hybrid(imdb_schema):
    return HybridEstimator(
        imdb_schema,
        lambda t, a: ConjunctiveEncoding(t, a, max_partitions=16),
        lambda: GradientBoostingRegressor(n_estimators=40),
    ).fit_generated(queries_per_table=600, seed=41)


def test_one_model_per_table(hybrid, imdb_schema):
    assert sorted(hybrid.table_models) == sorted(imdb_schema.table_names)


def test_single_table_query_delegates_to_base_model(hybrid):
    query = parse_query(
        "SELECT count(*) FROM title WHERE production_year > 2000")
    model = hybrid.table_models["title"]
    assert hybrid.estimate(query) == pytest.approx(model.estimate(query))


def test_selection_estimates_are_learned(hybrid, imdb_schema):
    """Base-table estimates track true counts closely (they are learned
    from exact single-table labels)."""
    years = imdb_schema.table("title").column("production_year").values
    mid = float(np.quantile(years, 0.5))
    query = parse_query(
        f"SELECT count(*) FROM title WHERE production_year > {mid}")
    true_count = cardinality(query, imdb_schema.table("title"))
    assert float(qerror(true_count, hybrid.estimate(query))) < 2.0


def test_join_composition_uses_selinger_formula(hybrid, imdb_schema):
    """An unfiltered FK join estimate equals |L|*|R|/max(ndv)."""
    query = parse_query(
        "SELECT count(*) FROM title, cast_info "
        "WHERE cast_info.movie_id = title.id")
    title = imdb_schema.table("title")
    cast = imdb_schema.table("cast_info")
    ndv = max(title.column("id").stats.distinct_count,
              cast.column("movie_id").stats.distinct_count)
    expected = title.row_count * cast.row_count / ndv
    assert hybrid.estimate(query) == pytest.approx(expected, rel=1e-9)


def test_competitive_with_postgres_on_joins(hybrid, imdb_schema,
                                            joblight_bench):
    """[31]'s configuration: learned selections fix the intra-table
    errors, so the hybrid's median beats the pure histogram baseline."""
    postgres = PostgresEstimator(imdb_schema)
    truth = joblight_bench.cardinalities
    hybrid_median = np.median(qerror(
        truth, hybrid.estimate_batch(joblight_bench.queries)))
    postgres_median = np.median(qerror(
        truth, postgres.estimate_batch(joblight_bench.queries)))
    assert hybrid_median <= postgres_median * 1.2


def test_unfitted_rejected(imdb_schema):
    estimator = HybridEstimator(
        imdb_schema,
        lambda t, a: ConjunctiveEncoding(t, a, max_partitions=8),
        lambda: GradientBoostingRegressor(n_estimators=5),
    )
    with pytest.raises(RuntimeError, match="fitted"):
        estimator.estimate(parse_query("SELECT count(*) FROM title"))


def test_missing_table_model_rejected(imdb_schema, joblight_bench):
    estimator = HybridEstimator(
        imdb_schema,
        lambda t, a: ConjunctiveEncoding(t, a, max_partitions=8),
        lambda: GradientBoostingRegressor(n_estimators=5),
    )
    # Fit only the hub; join queries then miss their child models.
    from repro.workloads.conjunctive import generate_conjunctive_workload
    from repro.featurize.joins import predicate_columns
    title = imdb_schema.table("title")
    workload = generate_conjunctive_workload(
        title, 120, max_attributes=2,
        attributes=predicate_columns(imdb_schema, "title"), seed=43)
    estimator.fit({"title": workload})
    join_query = joblight_bench.queries[0]
    with pytest.raises(KeyError, match="no base-table model"):
        estimator.estimate(join_query)


def test_memory_is_sum_of_models(hybrid):
    assert hybrid.memory_bytes() == sum(
        m.memory_bytes() for m in hybrid.table_models.values()) > 0
