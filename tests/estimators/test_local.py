"""Tests for the local-model ensemble."""

import numpy as np
import pytest

from repro.estimators import LocalModelEnsemble
from repro.featurize import ConjunctiveEncoding
from repro.models import GradientBoostingRegressor
from repro.sql.parser import parse_query
from repro.workloads.joblight import generate_join_queries


@pytest.fixture(scope="module")
def training(imdb_schema):
    return generate_join_queries(imdb_schema, 220, min_joins=1, max_joins=2,
                                 seed=21)


@pytest.fixture(scope="module")
def ensemble(imdb_schema, training):
    return LocalModelEnsemble(
        imdb_schema,
        lambda t, a: ConjunctiveEncoding(t, a, max_partitions=8),
        lambda: GradientBoostingRegressor(n_estimators=30),
    ).fit(training.queries, training.cardinalities)


def test_one_model_per_subschema(ensemble, training):
    expected = {frozenset(q.tables) for q in training.queries}
    assert set(ensemble.subschemata) == expected


def test_routes_queries_to_matching_model(ensemble, training):
    query = training.queries[0]
    model = ensemble.model_for(query.tables)
    assert ensemble.estimate(query) == pytest.approx(model.estimate(query))


def test_unseen_subschema_rejected(ensemble, imdb_schema):
    query = parse_query(
        "SELECT count(*) FROM title, movie_companies, movie_info, "
        "movie_info_idx, movie_keyword, cast_info WHERE "
        "movie_companies.movie_id = title.id AND "
        "movie_info.movie_id = title.id AND "
        "movie_info_idx.movie_id = title.id AND "
        "movie_keyword.movie_id = title.id AND "
        "cast_info.movie_id = title.id")
    with pytest.raises(KeyError, match="no local model"):
        ensemble.estimate(query)


def test_batch_matches_single(ensemble, training):
    queries = training.queries[:20]
    batch = ensemble.estimate_batch(queries)
    singles = np.asarray([ensemble.estimate(q) for q in queries])
    np.testing.assert_allclose(batch, singles)


def test_fit_validates_alignment(imdb_schema, training):
    ensemble = LocalModelEnsemble(
        imdb_schema,
        lambda t, a: ConjunctiveEncoding(t, a, max_partitions=8),
        lambda: GradientBoostingRegressor(n_estimators=5),
    )
    with pytest.raises(ValueError, match="align"):
        ensemble.fit(training.queries, np.ones(3))


def test_memory_is_sum_of_models(ensemble):
    total = ensemble.memory_bytes()
    parts = sum(ensemble.model_for(s).memory_bytes()
                for s in ensemble.subschemata)
    assert total == parts > 0
