"""Tests for learned group-count estimation (Section 6 extension)."""

import numpy as np
import pytest

from repro.estimators.groupby import (
    GroupCountEstimator,
    generate_groupby_workload,
)
from repro.featurize import ConjunctiveEncoding
from repro.metrics import qerror
from repro.models import GradientBoostingRegressor
from repro.sql.executor import group_count
from repro.sql.parser import parse_query


@pytest.fixture(scope="module")
def workload(small_forest):
    return generate_groupby_workload(small_forest, 1_500, seed=31)


@pytest.fixture(scope="module")
def estimator(small_forest, workload):
    items = list(workload)[:1_200]
    est = GroupCountEstimator(
        ConjunctiveEncoding(small_forest, max_partitions=16),
        small_forest,
        GradientBoostingRegressor(n_estimators=120, min_samples_leaf=5),
    )
    return est.fit([it.query for it in items],
                   np.asarray([it.cardinality for it in items], dtype=float))


class TestWorkload:
    def test_labels_are_exact_group_counts(self, workload, small_forest):
        for item in list(workload)[:25]:
            assert item.cardinality == group_count(item.query, small_forest)

    def test_every_query_has_group_by(self, workload):
        assert all(item.query.group_by for item in workload)

    def test_deterministic(self, small_forest):
        a = generate_groupby_workload(small_forest, 20, seed=5)
        b = generate_groupby_workload(small_forest, 20, seed=5)
        assert [i.query.to_sql() for i in a] == [i.query.to_sql() for i in b]


class TestEstimator:
    def test_beats_constant_baseline(self, estimator, workload):
        test = list(workload)[1_200:]
        truth = np.asarray([it.cardinality for it in test], dtype=float)
        estimates = estimator.estimate_batch([it.query for it in test])
        geo = float(np.exp(np.log(truth).mean()))
        model_err = np.median(qerror(truth, estimates))
        const_err = np.median(qerror(truth, np.full(truth.size, geo)))
        assert model_err < const_err

    def test_grouping_vector_matters(self, estimator, small_forest):
        """Same selection, different GROUP BY -> different estimates.

        A55 has 7 distinct values while A15 is binary; a model that sees
        the grouping vector must estimate more groups for A55.
        """
        coarse = parse_query(
            "SELECT count(*) FROM forest WHERE A1 >= 2500 GROUP BY A15")
        fine = parse_query(
            "SELECT count(*) FROM forest WHERE A1 >= 2500 GROUP BY A55")
        assert estimator.estimate(fine) > estimator.estimate(coarse)

    def test_rejects_queries_without_group_by(self, estimator):
        query = parse_query("SELECT count(*) FROM forest WHERE A1 >= 2500")
        with pytest.raises(ValueError, match="GROUP BY"):
            estimator.estimate(query)

    def test_unfitted_rejected(self, small_forest):
        est = GroupCountEstimator(
            ConjunctiveEncoding(small_forest, max_partitions=8),
            small_forest, GradientBoostingRegressor(n_estimators=5),
        )
        with pytest.raises(RuntimeError, match="fitted"):
            est.estimate_batch([])

    def test_feature_length(self, estimator, small_forest):
        qft_len = estimator._featurizer.feature_length
        assert estimator.feature_length == qft_len + 55
