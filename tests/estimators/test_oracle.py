"""Tests for the oracle (true-cardinality) estimator."""

from repro.estimators import TrueCardinalityEstimator
from repro.sql.executor import cardinality
from repro.sql.parser import parse_query


def test_matches_executor(small_forest):
    oracle = TrueCardinalityEstimator(small_forest)
    query = parse_query("SELECT count(*) FROM forest WHERE A1 >= 2800")
    assert oracle.estimate(query) == cardinality(query, small_forest)
    assert oracle.true_cardinality(query) == cardinality(query, small_forest)


def test_clamps_empty_results(small_forest):
    oracle = TrueCardinalityEstimator(small_forest)
    query = parse_query("SELECT count(*) FROM forest WHERE A1 > 999999")
    assert oracle.true_cardinality(query) == 0
    assert oracle.estimate(query) == 1.0


def test_works_on_schemas(imdb_schema, joblight_bench):
    oracle = TrueCardinalityEstimator(imdb_schema)
    item = joblight_bench[0]
    assert oracle.estimate(item.query) == item.cardinality
