"""Tests for the experiment harness (scales, contexts, runner wiring)."""

import pytest

from repro.experiments import SMALL, FULL, ExperimentResult, Scale, get_context
from repro.experiments.common import gb_factory, nn_factory, qft_factory
from repro.experiments.runner import EXPERIMENTS, main
from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    RangeEncoding,
    SingularEncoding,
)


class TestScales:
    def test_predefined_scales(self):
        assert SMALL.name == "small"
        assert FULL.name == "full"
        assert FULL.train_queries > SMALL.train_queries

    def test_context_caches_per_scale(self):
        assert get_context(SMALL) is get_context(SMALL)

    def test_context_lazy_artifact_caching(self):
        tiny = Scale(name="harness-test", forest_rows=500, train_queries=20,
                     test_queries=10, imdb_title_rows=150,
                     queries_per_subschema=2, gb_trees=5, nn_epochs=2,
                     mscn_epochs=1)
        context = get_context(tiny)
        assert context.forest is context.forest
        train, test = context.conjunctive_workload()
        train2, test2 = context.conjunctive_workload()
        assert train is train2


class TestFactories:
    def test_qft_factory_labels(self, small_forest):
        assert isinstance(qft_factory("simple", small_forest),
                          SingularEncoding)
        assert isinstance(qft_factory("range", small_forest), RangeEncoding)
        conj = qft_factory("conjunctive", small_forest, partitions=8)
        assert isinstance(conj, ConjunctiveEncoding)
        assert conj.max_partitions == 8
        assert isinstance(qft_factory("complex", small_forest),
                          DisjunctionEncoding)

    def test_unknown_label_rejected(self, small_forest):
        with pytest.raises(ValueError, match="unknown QFT"):
            qft_factory("bogus", small_forest)

    def test_model_factories_apply_scale(self):
        assert gb_factory(SMALL)().n_estimators == SMALL.gb_trees
        assert nn_factory(SMALL)().epochs == SMALL.nn_epochs


class TestExperimentResult:
    def test_markdown_contains_rows_and_paper(self):
        result = ExperimentResult(
            experiment="x", paper_artifact="Table 0",
            rows=[{"a": 1.0}], paper_rows=[{"a": 2.0}], notes="note text",
        )
        text = result.markdown()
        assert "Table 0" in text
        assert "Measured" in text
        assert "Paper reports" in text
        assert "note text" in text


class TestRunner:
    def test_all_paper_artifacts_covered(self):
        expected = {"fig1", "fig2", "fig3", "fig4", "fig5",
                    "tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7",
                    "ablations", "extensions"}
        assert set(EXPERIMENTS) == expected

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "tab7" in out

    def test_requires_choice(self, capsys):
        with pytest.raises(SystemExit):
            main([])
