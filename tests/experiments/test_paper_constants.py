"""Sanity checks on the transcribed paper tables.

The PAPER_* constants are hand-transcribed from the paper; these tests
pin the internal consistency properties the paper's text states, so a
transcription typo cannot silently skew EXPERIMENTS.md comparisons.
"""

from repro.experiments.tab1_joblight import PAPER_TABLE_1
from repro.experiments.tab2_local_global import PAPER_TABLE_2
from repro.experiments.tab3_attr_selectivity import PAPER_TABLE_3
from repro.experiments.tab5_feature_length import ENTRY_SWEEP, PAPER_TABLE_5
from repro.experiments.tab6_convergence import (
    PAPER_TABLE_6_GB,
    PAPER_TABLE_6_NN,
)
from repro.experiments.tab7_time_memory import PAPER_TABLE_7


def _ordered(rows, key):
    return [row[key] for row in rows]


class TestTable1:
    def test_six_rows(self):
        assert len(PAPER_TABLE_1) == 6

    def test_gb_range_best_mean(self):
        means = {r["model + QFT"]: r["mean"] for r in PAPER_TABLE_1}
        assert min(means, key=means.get) == "GB + range"

    def test_gb_conj_best_median(self):
        medians = {r["model + QFT"]: r["median"] for r in PAPER_TABLE_1}
        assert min(medians, key=medians.get) == "GB + conj"

    def test_quantiles_ordered_within_rows(self):
        for row in PAPER_TABLE_1:
            assert row["median"] <= row["99%"] <= row["max"]


class TestTable2:
    def test_qft_upgrade_improves_mscn(self):
        rows = {r["model + QFT"]: r for r in PAPER_TABLE_2}
        base = rows["MSCN w/o mods (global)"]
        upgraded = rows["MSCN + conj (global)"]
        for column in ("mean", "median", "99%", "max"):
            assert upgraded[column] < base[column]

    def test_local_beats_global_on_tails(self):
        rows = {r["model + QFT"]: r for r in PAPER_TABLE_2}
        assert rows["NN + conj (local)"]["99%"] < \
            rows["MSCN + conj (global)"]["99%"]


class TestTable3:
    def test_attr_sel_reduces_max_in_all_but_one_case(self):
        """'in all except one case, the worst case error (max) is reduced'."""
        improved = 0
        for short in ("GB+conj", "GB+comp", "NN+conj", "NN+comp"):
            rows = {r["model"]: r for r in PAPER_TABLE_3}
            with_sel = rows[f"{short} w/ attrSel"]["max"]
            without = rows[f"{short} w/o attrSel"]["max"]
            improved += with_sel < without
        assert improved == 3  # 3 of 4 cases


class TestTable5:
    def test_sweep_matches_constant(self):
        assert _ordered(PAPER_TABLE_5, "entries") == list(ENTRY_SWEEP)

    def test_32_entries_is_the_paper_optimum(self):
        best = min(PAPER_TABLE_5, key=lambda r: r["mean"])
        assert best["entries"] == 32

    def test_bytes_monotone(self):
        sizes = _ordered(PAPER_TABLE_5, "bytes")
        assert sizes == sorted(sizes)


class TestTable6:
    def test_conj_beats_simple_at_every_budget(self):
        for rows in (PAPER_TABLE_6_GB, PAPER_TABLE_6_NN):
            for row in rows:
                assert row["conj"] < row["simple"]

    def test_gb_beats_nn_at_every_budget(self):
        for gb_row, nn_row in zip(PAPER_TABLE_6_GB, PAPER_TABLE_6_NN):
            for qft in ("conj", "comp", "range", "simple"):
                assert gb_row[qft] < nn_row[qft]

    def test_full_budget_best_for_gb_conj(self):
        series = [row["conj"] for row in PAPER_TABLE_6_GB]
        assert series[-1] == min(series)


class TestTable7:
    def test_featurization_time_ordering(self):
        times = {r["subject"]: r["value"] for r in PAPER_TABLE_7}
        assert (times["simple"] < times["range"]
                < times["conjunctive"] < times["complex"])

    def test_all_under_100us(self):
        assert all(r["value"] < 100 for r in PAPER_TABLE_7)
