"""Micro-scale smoke tests of every experiment module.

The benchmarks run the experiments at realistic scale; these tests run
each of them at a deliberately tiny scale so that wiring errors (wrong
column names, broken grouping, missing estimator paths) surface in the
fast test suite.  Accuracy is NOT asserted here — only structure.
"""

import pytest

from repro.experiments import (
    ablations,
    ext_extensions,
    fig1_qft_model,
    fig2_by_attributes,
    fig3_by_predicates,
    fig4_vs_established,
    fig5_query_drift,
    tab1_joblight,
    tab2_local_global,
    tab3_attr_selectivity,
    tab4_end_to_end,
    tab5_feature_length,
    tab6_convergence,
    tab7_time_memory,
)
from repro.experiments.common import Scale, get_context

#: Tiny enough that the whole module runs in well under two minutes.
MICRO = Scale(
    name="micro",
    forest_rows=1_500,
    train_queries=250,
    test_queries=120,
    imdb_title_rows=500,
    queries_per_subschema=12,
    gb_trees=10,
    nn_epochs=2,
    mscn_epochs=1,
    partitions=8,
)


@pytest.fixture(scope="module", autouse=True)
def warm_context():
    """Build the shared artifacts once for the whole module."""
    context = get_context(MICRO)
    context.forest
    context.imdb
    return context


def _check(result, min_rows):
    assert result.rows, result.experiment
    assert len(result.rows) >= min_rows
    assert result.paper_artifact
    assert result.markdown()


def test_fig1_smoke():
    _check(fig1_qft_model.run(MICRO), min_rows=12)


def test_fig2_smoke():
    _check(fig2_by_attributes.run(MICRO), min_rows=8)


def test_fig3_smoke():
    _check(fig3_by_predicates.run(MICRO), min_rows=8)


def test_fig4_smoke():
    _check(fig4_vs_established.run(MICRO), min_rows=10)


def test_fig5_smoke():
    _check(fig5_query_drift.run(MICRO), min_rows=8)


def test_tab1_smoke():
    _check(tab1_joblight.run(MICRO), min_rows=6)


def test_tab2_smoke():
    _check(tab2_local_global.run(MICRO), min_rows=3)


def test_tab3_smoke():
    _check(tab3_attr_selectivity.run(MICRO), min_rows=8)


def test_tab4_smoke():
    result = tab4_end_to_end.run(MICRO)
    _check(result, min_rows=3)
    work = {r["estimator"]: r["total work (tuples)"] for r in result.rows}
    assert work["True cardinalities"] <= work["Postgres"]


def test_tab5_smoke():
    _check(tab5_feature_length.run(MICRO), min_rows=5)


def test_tab6_smoke():
    _check(tab6_convergence.run(MICRO), min_rows=12)


def test_tab7_smoke():
    _check(tab7_time_memory.run(MICRO), min_rows=8)


def test_ablations_smoke():
    results = ablations.run(MICRO)
    assert len(results) == 5
    for result in results:
        _check(result, min_rows=2)


def test_extensions_smoke():
    results = ext_extensions.run(MICRO)
    assert len(results) == 2
    for result in results:
        _check(result, min_rows=2)
