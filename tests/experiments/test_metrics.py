"""Tests for the q-error metric and summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import format_table, qerror, summarize


class TestQError:
    def test_perfect_estimate(self):
        assert float(qerror(42, 42)) == 1.0

    def test_symmetry_example(self):
        assert float(qerror(100, 10)) == float(qerror(10, 100)) == 10.0

    def test_clamps_below_one(self):
        # Paper protocol: all estimates and cardinalities >= 1, so
        # positive fractional inputs clamp up to 1.
        assert float(qerror(0.5, 0.25)) == 1.0
        assert float(qerror(5, 0.5)) == 5.0

    def test_rejects_nonpositive_inputs(self):
        # Regression: a zero cardinality or estimate used to clamp
        # silently to 1 instead of flagging the protocol violation.
        with pytest.raises(ValueError, match="true cardinalities"):
            qerror(0, 0.5)
        with pytest.raises(ValueError, match="estimates"):
            qerror(5, 0)
        with pytest.raises(ValueError, match="true cardinalities"):
            qerror([10, -3], [5, 5])

    def test_rejects_nonfinite_inputs(self):
        with pytest.raises(ValueError, match="true cardinalities"):
            qerror(np.nan, 5)
        with pytest.raises(ValueError, match="estimates"):
            qerror(5, np.inf)

    def test_vectorised(self):
        errors = qerror([10, 20], [20, 10])
        np.testing.assert_allclose(errors, [2.0, 2.0])

    @given(st.floats(min_value=1, max_value=1e9),
           st.floats(min_value=1, max_value=1e9))
    @settings(max_examples=200, deadline=None)
    def test_properties(self, x, e):
        err = float(qerror(x, e))
        assert err >= 1.0
        assert err == pytest.approx(float(qerror(e, x)))  # symmetric
        # Identity iff equal.
        if abs(x - e) > 1e-6 * max(x, e):
            assert err > 1.0

    @given(st.floats(min_value=1, max_value=1e6),
           st.floats(min_value=1, max_value=1e6),
           st.floats(min_value=1, max_value=1e6))
    @settings(max_examples=200, deadline=None)
    def test_multiplicative_triangle_inequality(self, x, y, z):
        assert float(qerror(x, z)) <= (float(qerror(x, y))
                                       * float(qerror(y, z))) * (1 + 1e-9)


class TestSummarize:
    def test_quantile_ordering(self):
        rng = np.random.default_rng(0)
        summary = summarize(1.0 + rng.gamma(2.0, 3.0, 500))
        assert (summary.q01 <= summary.q25 <= summary.median
                <= summary.q75 <= summary.q99 <= summary.max)
        assert summary.count == 500

    def test_single_value(self):
        summary = summarize([3.0])
        assert summary.mean == summary.median == summary.max == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    def test_row_columns(self):
        row = summarize([1.0, 2.0]).row()
        assert set(row) == {"mean", "median", "99%", "max"}


class TestFormatTable:
    def test_renders_markdown(self):
        text = format_table([{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "y"}])
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert "2.50" in text
        assert "y" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_explicit_column_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].index("b") < text.splitlines()[0].index("a")
