"""End-to-end integration tests across modules.

Each test walks a full pipeline at miniature scale: data generation ->
workload -> featurization -> training -> estimation -> metric, plus the
estimator-vs-estimator shapes the paper's conclusions rest on.  These run
in seconds; the benchmarks validate the full-size versions.
"""

import numpy as np
import pytest

from repro.estimators import (
    LearnedEstimator,
    LocalModelEnsemble,
    PostgresEstimator,
    TrueCardinalityEstimator,
)
from repro.featurize import ConjunctiveEncoding, DisjunctionEncoding
from repro.metrics import qerror, summarize
from repro.models import GradientBoostingRegressor, NeuralNetRegressor
from repro.optimizer import workload_work
from repro.sql.parser import parse_query
from repro.workloads.joblight import generate_join_queries


class TestSingleTablePipeline:
    def test_gb_conj_pipeline(self, small_forest, conjunctive_workload):
        train = list(conjunctive_workload)[:320]
        test = list(conjunctive_workload)[320:]
        estimator = LearnedEstimator(
            ConjunctiveEncoding(small_forest, max_partitions=16),
            GradientBoostingRegressor(n_estimators=80),
        ).fit([it.query for it in train],
              np.asarray([it.cardinality for it in train], dtype=float))
        truth = np.asarray([it.cardinality for it in test], dtype=float)
        summary = summarize(qerror(
            truth, estimator.estimate_batch([it.query for it in test])))
        assert summary.median < 4.0

    def test_nn_pipeline_runs(self, small_forest, conjunctive_workload):
        train = list(conjunctive_workload)[:320]
        estimator = LearnedEstimator(
            ConjunctiveEncoding(small_forest, max_partitions=8),
            NeuralNetRegressor(hidden_sizes=(32,), epochs=6),
        ).fit([it.query for it in train],
              np.asarray([it.cardinality for it in train], dtype=float))
        estimates = estimator.estimate_batch(
            [it.query for it in conjunctive_workload][:20])
        assert (estimates >= 1.0).all()

    def test_mixed_pipeline_with_disjunctions(self, small_forest,
                                              mixed_workload):
        train = list(mixed_workload)[:320]
        test = list(mixed_workload)[320:]
        estimator = LearnedEstimator(
            DisjunctionEncoding(small_forest, max_partitions=16),
            GradientBoostingRegressor(n_estimators=80),
        ).fit([it.query for it in train],
              np.asarray([it.cardinality for it in train], dtype=float))
        truth = np.asarray([it.cardinality for it in test], dtype=float)
        summary = summarize(qerror(
            truth, estimator.estimate_batch([it.query for it in test])))
        assert summary.median < 4.0

    def test_learned_beats_postgres_on_correlated_data(
            self, small_forest, conjunctive_workload):
        """The headline single-table comparison (Figure 4's shape)."""
        train = list(conjunctive_workload)[:320]
        test = list(conjunctive_workload)[320:]
        learned = LearnedEstimator(
            ConjunctiveEncoding(small_forest, max_partitions=16),
            GradientBoostingRegressor(n_estimators=80),
        ).fit([it.query for it in train],
              np.asarray([it.cardinality for it in train], dtype=float))
        postgres = PostgresEstimator(small_forest)
        truth = np.asarray([it.cardinality for it in test], dtype=float)
        queries = [it.query for it in test]
        learned_median = np.median(qerror(truth, learned.estimate_batch(queries)))
        postgres_median = np.median(qerror(truth, postgres.estimate_batch(queries)))
        assert learned_median < postgres_median


class TestJoinPipeline:
    @pytest.fixture(scope="class")
    def join_setup(self, imdb_schema):
        train = generate_join_queries(imdb_schema, 250, min_joins=1,
                                      max_joins=2, seed=77)
        test = generate_join_queries(imdb_schema, 40, min_joins=1,
                                     max_joins=2, seed=78)
        ensemble = LocalModelEnsemble(
            imdb_schema,
            lambda t, a: ConjunctiveEncoding(t, a, max_partitions=8),
            lambda: GradientBoostingRegressor(n_estimators=40),
        ).fit(train.queries, train.cardinalities)
        return ensemble, test

    def test_local_models_estimate_join_queries(self, join_setup):
        ensemble, test = join_setup
        estimates = ensemble.estimate_batch(test.queries)
        assert (estimates >= 1.0).all()
        summary = summarize(qerror(test.cardinalities, estimates))
        assert summary.median < 25.0

    def test_plan_choice_with_learned_estimates(self, imdb_schema,
                                                join_setup):
        ensemble, test = join_setup
        queries = [q for q in test.queries if len(q.tables) >= 3][:5]
        truth_work = workload_work(queries, imdb_schema,
                                   TrueCardinalityEstimator(imdb_schema))
        learned_work = workload_work(queries, imdb_schema, ensemble)
        assert learned_work >= truth_work  # truth is optimal under C_out
        assert learned_work <= 10 * truth_work  # and learned is sane


class TestSqlInterface:
    def test_parse_train_estimate_round_trip(self, small_forest,
                                             conjunctive_workload):
        """A user can train on generated queries and ask about SQL text."""
        train = list(conjunctive_workload)[:200]
        estimator = LearnedEstimator(
            ConjunctiveEncoding(small_forest, max_partitions=8),
            GradientBoostingRegressor(n_estimators=30),
        ).fit([it.query for it in train],
              np.asarray([it.cardinality for it in train], dtype=float))
        query = parse_query(
            "SELECT count(*) FROM forest WHERE A1 >= 2500 AND A1 <= 3000")
        assert estimator.estimate(query) >= 1.0
