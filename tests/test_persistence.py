"""Tests for estimator persistence (save/load round trips)."""

import numpy as np
import pytest

from repro.data.stats import TableStats
from repro.estimators import LearnedEstimator
from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    EquiDepthConjunctiveEncoding,
    RangeEncoding,
    SingularEncoding,
)
from repro.models import GradientBoostingRegressor, NeuralNetRegressor
from repro.models.linear import RidgeRegressor
from repro.persistence import (
    PersistenceError,
    load_estimator,
    save_estimator,
)


def _fit(featurizer, model, workload, n=200):
    items = list(workload)[:n]
    return LearnedEstimator(featurizer, model).fit(
        [it.query for it in items],
        np.asarray([it.cardinality for it in items], dtype=float),
    )


class TestRoundTrips:
    @pytest.mark.parametrize("featurizer_cls,kwargs", [
        (SingularEncoding, {}),
        (RangeEncoding, {}),
        (ConjunctiveEncoding, {"max_partitions": 8}),
        (ConjunctiveEncoding, {"max_partitions": 8, "attr_selectivity": False}),
        (DisjunctionEncoding, {"max_partitions": 8, "merge": "sum"}),
    ])
    def test_gb_round_trip(self, tmp_path, small_forest,
                           conjunctive_workload, featurizer_cls, kwargs):
        estimator = _fit(featurizer_cls(small_forest, **kwargs),
                         GradientBoostingRegressor(n_estimators=15),
                         conjunctive_workload)
        path = tmp_path / "model.npz"
        save_estimator(estimator, path)
        loaded = load_estimator(path)
        queries = conjunctive_workload.queries[:40]
        np.testing.assert_allclose(loaded.estimate_batch(queries),
                                   estimator.estimate_batch(queries))

    def test_nn_round_trip(self, tmp_path, small_forest,
                           conjunctive_workload):
        estimator = _fit(
            ConjunctiveEncoding(small_forest, max_partitions=8),
            NeuralNetRegressor(hidden_sizes=(16,), epochs=3),
            conjunctive_workload,
        )
        path = tmp_path / "nn.npz"
        save_estimator(estimator, path)
        loaded = load_estimator(path)
        queries = conjunctive_workload.queries[:40]
        np.testing.assert_allclose(loaded.estimate_batch(queries),
                                   estimator.estimate_batch(queries))

    def test_name_preserved(self, tmp_path, small_forest,
                            conjunctive_workload):
        estimator = _fit(ConjunctiveEncoding(small_forest, max_partitions=8),
                         GradientBoostingRegressor(n_estimators=5),
                         conjunctive_workload)
        estimator.name = "my-estimator"
        save_estimator(estimator, tmp_path / "m.npz")
        assert load_estimator(tmp_path / "m.npz").name == "my-estimator"

    def test_featurizer_config_preserved(self, tmp_path, small_forest,
                                         mixed_workload):
        estimator = _fit(
            DisjunctionEncoding(small_forest, max_partitions=16,
                                attr_selectivity=False),
            GradientBoostingRegressor(n_estimators=5),
            mixed_workload,
        )
        save_estimator(estimator, tmp_path / "m.npz")
        loaded = load_estimator(tmp_path / "m.npz")
        featurizer = loaded.featurizer
        assert isinstance(featurizer, DisjunctionEncoding)
        assert featurizer.max_partitions == 16
        assert not featurizer.attr_selectivity
        assert featurizer.feature_length == estimator.featurizer.feature_length


class TestEquiDepthRoundTrip:
    """Equi-depth geometry is data-derived: it must ride the artifact."""

    def test_estimates_survive_round_trip(self, tmp_path, small_forest,
                                          conjunctive_workload):
        estimator = _fit(
            EquiDepthConjunctiveEncoding(small_forest, max_partitions=8),
            GradientBoostingRegressor(n_estimators=15),
            conjunctive_workload,
        )
        path = tmp_path / "equidepth.npz"
        save_estimator(estimator, path)
        loaded = load_estimator(path)
        assert isinstance(loaded.featurizer, EquiDepthConjunctiveEncoding)
        queries = conjunctive_workload.queries[:40]
        np.testing.assert_array_equal(loaded.estimate_batch(queries),
                                      estimator.estimate_batch(queries))

    def test_partition_geometry_restored_exactly(self, tmp_path,
                                                 small_forest,
                                                 conjunctive_workload):
        estimator = _fit(
            EquiDepthConjunctiveEncoding(small_forest, max_partitions=8),
            GradientBoostingRegressor(n_estimators=5),
            conjunctive_workload,
        )
        path = tmp_path / "equidepth.npz"
        save_estimator(estimator, path)
        original = estimator.featurizer
        restored = load_estimator(path).featurizer
        assert restored.attributes == original.attributes
        assert restored.feature_length == original.feature_length
        for attr in original.attributes:
            assert (restored._partition_counts[attr]
                    == original._partition_counts[attr])
            assert restored._exact[attr] == original._exact[attr]
            np.testing.assert_array_equal(restored._boundaries[attr],
                                          original._boundaries[attr])
        from repro.sql.parser import parse_where
        expr = parse_where("A1 >= 2500 AND A1 <= 3000 AND A3 <> 10")
        np.testing.assert_array_equal(restored.featurize(expr),
                                      original.featurize(expr))


class TestErrors:
    def test_unfitted_model_rejected(self, tmp_path, small_forest):
        estimator = LearnedEstimator(
            ConjunctiveEncoding(small_forest, max_partitions=8),
            GradientBoostingRegressor(n_estimators=5),
        )
        with pytest.raises(RuntimeError, match="unfitted"):
            save_estimator(estimator, tmp_path / "m.npz")

    def test_unsupported_model_rejected(self, tmp_path, small_forest,
                                        conjunctive_workload):
        estimator = _fit(ConjunctiveEncoding(small_forest, max_partitions=8),
                         RidgeRegressor(), conjunctive_workload)
        with pytest.raises(TypeError, match="state_dict"):
            save_estimator(estimator, tmp_path / "m.npz")

    def test_loading_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.ones(3))
        with pytest.raises(ValueError, match="not a persisted estimator"):
            load_estimator(path)


class TestCorruptArtifacts:
    """Damaged .npz files surface as PersistenceError naming the path."""

    @staticmethod
    def _valid_artifact(tmp_path, small_forest, conjunctive_workload):
        estimator = _fit(
            ConjunctiveEncoding(small_forest, max_partitions=8),
            GradientBoostingRegressor(n_estimators=5),
            conjunctive_workload,
        )
        path = tmp_path / "model.npz"
        save_estimator(estimator, path)
        return path

    def test_persistence_error_is_a_value_error(self):
        assert issubclass(PersistenceError, ValueError)

    def test_truncated_artifact(self, tmp_path, small_forest,
                                conjunctive_workload):
        path = self._valid_artifact(tmp_path, small_forest,
                                    conjunctive_workload)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(PersistenceError) as excinfo:
            load_estimator(path)
        assert str(path) in str(excinfo.value)
        assert "truncated or corrupt" in str(excinfo.value)

    def test_non_zip_garbage(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is definitely not a zip archive")
        with pytest.raises(PersistenceError) as excinfo:
            load_estimator(path)
        assert str(path) in str(excinfo.value)

    def test_missing_model_array(self, tmp_path, small_forest,
                                 conjunctive_workload):
        path = self._valid_artifact(tmp_path, small_forest,
                                    conjunctive_workload)
        with np.load(path, allow_pickle=False) as archive:
            members = {key: archive[key] for key in archive.files}
        dropped = next(key for key in members if key.startswith("model/"))
        del members[dropped]
        np.savez(path, **members)
        with pytest.raises(PersistenceError,
                           match="missing persisted model array"):
            load_estimator(path)

    def test_unsupported_format_version(self, tmp_path, small_forest,
                                        conjunctive_workload):
        import json

        path = self._valid_artifact(tmp_path, small_forest,
                                    conjunctive_workload)
        with np.load(path, allow_pickle=False) as archive:
            members = {key: archive[key] for key in archive.files}
        meta = json.loads(str(members["__meta__"]))
        meta["format_version"] = 99
        members["__meta__"] = np.asarray(json.dumps(meta))
        np.savez(path, **members)
        with pytest.raises(PersistenceError,
                           match="unsupported format version 99"):
            load_estimator(path)


class TestSnapshotFeaturizers:
    def test_featurizer_from_snapshot_matches_table(self, small_forest):
        """A featurizer built from TableStats equals one built from the
        table — the property persistence relies on."""
        from_table = ConjunctiveEncoding(small_forest, max_partitions=8)
        snapshot = TableStats.from_table(small_forest)
        from_stats = ConjunctiveEncoding(snapshot, max_partitions=8)
        from repro.sql.parser import parse_where
        expr = parse_where("A1 >= 2500 AND A1 <= 3000 AND A3 <> 10")
        np.testing.assert_array_equal(from_table.featurize(expr),
                                      from_stats.featurize(expr))

    def test_snapshot_validation(self):
        with pytest.raises(ValueError, match="at least one column"):
            TableStats(name="t", columns={})
        with pytest.raises(ValueError, match="non-empty"):
            TableStats(name="", columns={"a": None})
