"""Tests for estimator persistence (save/load round trips)."""

import numpy as np
import pytest

from repro.data.stats import TableStats
from repro.estimators import LearnedEstimator
from repro.featurize import (
    ConjunctiveEncoding,
    DisjunctionEncoding,
    RangeEncoding,
    SingularEncoding,
)
from repro.models import GradientBoostingRegressor, NeuralNetRegressor
from repro.models.linear import RidgeRegressor
from repro.persistence import load_estimator, save_estimator


def _fit(featurizer, model, workload, n=200):
    items = list(workload)[:n]
    return LearnedEstimator(featurizer, model).fit(
        [it.query for it in items],
        np.asarray([it.cardinality for it in items], dtype=float),
    )


class TestRoundTrips:
    @pytest.mark.parametrize("featurizer_cls,kwargs", [
        (SingularEncoding, {}),
        (RangeEncoding, {}),
        (ConjunctiveEncoding, {"max_partitions": 8}),
        (ConjunctiveEncoding, {"max_partitions": 8, "attr_selectivity": False}),
        (DisjunctionEncoding, {"max_partitions": 8, "merge": "sum"}),
    ])
    def test_gb_round_trip(self, tmp_path, small_forest,
                           conjunctive_workload, featurizer_cls, kwargs):
        estimator = _fit(featurizer_cls(small_forest, **kwargs),
                         GradientBoostingRegressor(n_estimators=15),
                         conjunctive_workload)
        path = tmp_path / "model.npz"
        save_estimator(estimator, path)
        loaded = load_estimator(path)
        queries = conjunctive_workload.queries[:40]
        np.testing.assert_allclose(loaded.estimate_batch(queries),
                                   estimator.estimate_batch(queries))

    def test_nn_round_trip(self, tmp_path, small_forest,
                           conjunctive_workload):
        estimator = _fit(
            ConjunctiveEncoding(small_forest, max_partitions=8),
            NeuralNetRegressor(hidden_sizes=(16,), epochs=3),
            conjunctive_workload,
        )
        path = tmp_path / "nn.npz"
        save_estimator(estimator, path)
        loaded = load_estimator(path)
        queries = conjunctive_workload.queries[:40]
        np.testing.assert_allclose(loaded.estimate_batch(queries),
                                   estimator.estimate_batch(queries))

    def test_name_preserved(self, tmp_path, small_forest,
                            conjunctive_workload):
        estimator = _fit(ConjunctiveEncoding(small_forest, max_partitions=8),
                         GradientBoostingRegressor(n_estimators=5),
                         conjunctive_workload)
        estimator.name = "my-estimator"
        save_estimator(estimator, tmp_path / "m.npz")
        assert load_estimator(tmp_path / "m.npz").name == "my-estimator"

    def test_featurizer_config_preserved(self, tmp_path, small_forest,
                                         mixed_workload):
        estimator = _fit(
            DisjunctionEncoding(small_forest, max_partitions=16,
                                attr_selectivity=False),
            GradientBoostingRegressor(n_estimators=5),
            mixed_workload,
        )
        save_estimator(estimator, tmp_path / "m.npz")
        loaded = load_estimator(tmp_path / "m.npz")
        featurizer = loaded.featurizer
        assert isinstance(featurizer, DisjunctionEncoding)
        assert featurizer.max_partitions == 16
        assert not featurizer.attr_selectivity
        assert featurizer.feature_length == estimator.featurizer.feature_length


class TestErrors:
    def test_unfitted_model_rejected(self, tmp_path, small_forest):
        estimator = LearnedEstimator(
            ConjunctiveEncoding(small_forest, max_partitions=8),
            GradientBoostingRegressor(n_estimators=5),
        )
        with pytest.raises(RuntimeError, match="unfitted"):
            save_estimator(estimator, tmp_path / "m.npz")

    def test_unsupported_model_rejected(self, tmp_path, small_forest,
                                        conjunctive_workload):
        estimator = _fit(ConjunctiveEncoding(small_forest, max_partitions=8),
                         RidgeRegressor(), conjunctive_workload)
        with pytest.raises(TypeError, match="state_dict"):
            save_estimator(estimator, tmp_path / "m.npz")

    def test_loading_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.ones(3))
        with pytest.raises(ValueError, match="not a persisted estimator"):
            load_estimator(path)


class TestSnapshotFeaturizers:
    def test_featurizer_from_snapshot_matches_table(self, small_forest):
        """A featurizer built from TableStats equals one built from the
        table — the property persistence relies on."""
        from_table = ConjunctiveEncoding(small_forest, max_partitions=8)
        snapshot = TableStats.from_table(small_forest)
        from_stats = ConjunctiveEncoding(snapshot, max_partitions=8)
        from repro.sql.parser import parse_where
        expr = parse_where("A1 >= 2500 AND A1 <= 3000 AND A3 <> 10")
        np.testing.assert_array_equal(from_table.featurize(expr),
                                      from_stats.featurize(expr))

    def test_snapshot_validation(self):
        with pytest.raises(ValueError, match="at least one column"):
            TableStats(name="t", columns={})
        with pytest.raises(ValueError, match="non-empty"):
            TableStats(name="", columns={"a": None})
