"""Tests for the System-R optimizer substrate (subqueries, DP, execution)."""

import numpy as np
import pytest

from repro.data.schema import ForeignKey, Schema
from repro.data.table import Table
from repro.estimators import PostgresEstimator, TrueCardinalityEstimator
from repro.estimators.base import CardinalityEstimator
from repro.optimizer import optimize, plan_work, workload_work
from repro.optimizer.subqueries import subquery
from repro.sql.executor import cardinality
from repro.sql.parser import parse_query


@pytest.fixture(scope="module")
def chain_schema():
    """A 3-table chain a -> b -> c with very different sizes."""
    a = Table("a", {"id": np.arange(1.0, 101.0),
                    "v": np.arange(1.0, 101.0) % 10})
    b = Table("b", {"id": np.arange(1.0, 1001.0),
                    "a_id": (np.arange(1000.0) % 100) + 1,
                    "w": np.arange(1000.0) % 7})
    c = Table("c", {"b_id": (np.arange(5000.0) % 1000) + 1,
                    "u": np.arange(5000.0) % 3})
    return Schema([a, b, c], [ForeignKey("b", "a_id", "a", "id"),
                              ForeignKey("c", "b_id", "b", "id")])


@pytest.fixture(scope="module")
def chain_query():
    return parse_query(
        "SELECT count(*) FROM a, b, c WHERE b.a_id = a.id AND c.b_id = b.id "
        "AND a.v = 3 AND c.u = 1")


class TestSubquery:
    def test_restricts_tables_joins_and_selections(self, chain_schema,
                                                   chain_query):
        sub = subquery(chain_query, ["a", "b"], chain_schema)
        assert sub.tables == ("a", "b")
        assert len(sub.joins) == 1
        assert sub.where.to_sql() == "a.v = 3"

    def test_single_table_subquery(self, chain_schema, chain_query):
        sub = subquery(chain_query, ["c"], chain_schema)
        assert sub.tables == ("c",)
        assert sub.joins == ()
        assert sub.where.to_sql() == "c.u = 1"

    def test_unknown_table_rejected(self, chain_schema, chain_query):
        with pytest.raises(ValueError, match="not part"):
            subquery(chain_query, ["ghost"], chain_schema)

    def test_full_subset_is_whole_query(self, chain_schema, chain_query):
        sub = subquery(chain_query, ["a", "b", "c"], chain_schema)
        assert cardinality(sub, chain_schema) == cardinality(chain_query,
                                                             chain_schema)


class TestOptimize:
    def test_single_table_trivial(self, chain_schema):
        query = parse_query("SELECT count(*) FROM a WHERE a.v = 3")
        plan = optimize(query, chain_schema,
                        TrueCardinalityEstimator(chain_schema))
        assert plan.order == ("a",)
        assert plan.estimated_cost == 0.0

    def test_order_is_connected_permutation(self, chain_schema, chain_query):
        plan = optimize(chain_query, chain_schema,
                        TrueCardinalityEstimator(chain_schema))
        assert set(plan.order) == {"a", "b", "c"}
        # A chain a-b-c can never start joining a with c.
        assert plan.order[:2] != ("a", "c") and plan.order[:2] != ("c", "a")

    def test_true_cost_is_minimal_over_valid_orders(self, chain_schema,
                                                    chain_query):
        plan = optimize(chain_query, chain_schema,
                        TrueCardinalityEstimator(chain_schema))
        valid_orders = [("a", "b", "c"), ("b", "a", "c"), ("b", "c", "a"),
                        ("c", "b", "a")]
        def cost(order):
            total = 0
            for size in range(2, len(order) + 1):
                total += cardinality(
                    subquery(chain_query, order[:size], chain_schema),
                    chain_schema)
            return total
        best = min(cost(o) for o in valid_orders)
        assert plan.estimated_cost == pytest.approx(max(best, 1.0), rel=0.01) \
            or plan.estimated_cost <= best + 3  # clamping to >= 1 per subset

    def test_bad_estimator_changes_plans(self, chain_schema, chain_query):
        """An estimator that inverts sizes must be able to pick another
        (worse) join order — this is the Table 4 mechanism."""

        class Inverting(CardinalityEstimator):
            name = "inverting"

            def __init__(self, schema):
                self._truth = TrueCardinalityEstimator(schema)

            def estimate(self, query):
                return 1e9 / max(self._truth.estimate(query), 1.0)

        good = optimize(chain_query, chain_schema,
                        TrueCardinalityEstimator(chain_schema))
        bad = optimize(chain_query, chain_schema, Inverting(chain_schema))
        good_work = plan_work(chain_query, good, chain_schema).total_tuples
        bad_work = plan_work(chain_query, bad, chain_schema).total_tuples
        assert bad_work >= good_work

    def test_cross_product_rejected(self, chain_schema):
        query = parse_query("SELECT count(*) FROM a, c WHERE a.v = 1 AND c.u = 1")
        with pytest.raises(ValueError, match="not connected"):
            optimize(query, chain_schema,
                     TrueCardinalityEstimator(chain_schema))


class TestPlanWork:
    def test_work_components(self, chain_schema, chain_query):
        plan = optimize(chain_query, chain_schema,
                        TrueCardinalityEstimator(chain_schema))
        work = plan_work(chain_query, plan, chain_schema)
        scan = sum(chain_schema.table(t).row_count for t in plan.order)
        assert work.scan_tuples == scan
        assert len(work.intermediate_tuples) == len(plan.order) - 1
        assert work.total_tuples == scan + sum(work.intermediate_tuples)

    def test_final_intermediate_is_result_size(self, chain_schema,
                                               chain_query):
        plan = optimize(chain_query, chain_schema,
                        TrueCardinalityEstimator(chain_schema))
        work = plan_work(chain_query, plan, chain_schema)
        assert work.intermediate_tuples[-1] == cardinality(chain_query,
                                                           chain_schema)

    def test_workload_work_sums(self, chain_schema, chain_query):
        estimator = PostgresEstimator(chain_schema)
        single = plan_work(
            chain_query, optimize(chain_query, chain_schema, estimator),
            chain_schema).total_tuples
        total = workload_work([chain_query, chain_query], chain_schema,
                              estimator)
        assert total == 2 * single

    def test_true_estimator_never_worse(self, imdb_schema, joblight_bench):
        """Plans chosen with true cardinalities are optimal under C_out;
        on total work they must not lose to the Postgres baseline."""
        queries = joblight_bench.queries[:10]
        truth = workload_work(queries, imdb_schema,
                              TrueCardinalityEstimator(imdb_schema))
        postgres = workload_work(queries, imdb_schema,
                                 PostgresEstimator(imdb_schema))
        assert truth <= postgres
