"""Tests for bushy-plan optimization."""

import numpy as np
import pytest

from repro.data.schema import ForeignKey, Schema
from repro.data.table import Table
from repro.estimators import TrueCardinalityEstimator
from repro.optimizer import optimize, plan_work
from repro.sql.parser import parse_query


@pytest.fixture(scope="module")
def chain_schema():
    """A 4-table chain a - b - c - d with selective filters at both ends
    and a fat b - c middle (fan-out 100).

    Any left-deep order must materialise a 3-table intermediate that
    includes the fat middle edge; the cheapest strategy joins (a ⋈ b)
    and (c ⋈ d) first and combines the two small intermediates — a bushy
    plan no left-deep order can express.
    """
    a = Table("a", {"id": np.arange(1.0, 101.0),
                    "v": (np.arange(100.0) % 50)})
    b = Table("b", {"id": np.arange(1.0, 1001.0),
                    "a_id": (np.arange(1000.0) % 100) + 1})
    c = Table("c", {"id": np.arange(1.0, 100_001.0),
                    "b_id": (np.arange(100_000.0) % 1000) + 1})
    d = Table("d", {"c_id": (np.arange(100_000.0) % 100_000) + 1,
                    "w": (np.arange(100_000.0) % 100)})
    return Schema([a, b, c, d], [
        ForeignKey("b", "a_id", "a", "id"),
        ForeignKey("c", "b_id", "b", "id"),
        ForeignKey("d", "c_id", "c", "id"),
    ])


@pytest.fixture(scope="module")
def chain_query():
    return parse_query(
        "SELECT count(*) FROM a, b, c, d WHERE b.a_id = a.id AND "
        "c.b_id = b.id AND d.c_id = c.id AND a.v = 3 AND d.w = 7")


class TestBushyOptimize:
    def test_single_table_trivial(self, chain_schema):
        plan = optimize(parse_query("SELECT count(*) FROM a"), chain_schema,
                        TrueCardinalityEstimator(chain_schema), bushy=True)
        assert plan.order == ("a",)
        assert plan.intermediates == ()

    def test_intermediates_cover_all_internal_nodes(self, chain_schema,
                                                    chain_query):
        truth = TrueCardinalityEstimator(chain_schema)
        plan = optimize(chain_query, chain_schema, truth, bushy=True)
        assert len(plan.intermediates) == len(chain_query.tables) - 1
        assert set(plan.intermediates[-1]) == set(chain_query.tables)
        # Every intermediate is a genuine subset of its successors.
        for subset in plan.intermediates:
            assert 2 <= len(subset) <= 4

    def test_bushy_never_costlier_than_left_deep(self, chain_schema,
                                                 chain_query):
        """Left-deep plans are a subset of bushy plans, so the bushy
        optimum is at most the left-deep optimum."""
        truth = TrueCardinalityEstimator(chain_schema)
        left_deep = optimize(chain_query, chain_schema, truth)
        bushy = optimize(chain_query, chain_schema, truth, bushy=True)
        assert bushy.estimated_cost <= left_deep.estimated_cost + 1e-9

    def test_bushy_beats_left_deep_on_the_chain(self, chain_schema,
                                                chain_query):
        """On this chain the bushy optimum is strictly cheaper: it joins
        the two filtered ends before combining."""
        truth = TrueCardinalityEstimator(chain_schema)
        left_deep = optimize(chain_query, chain_schema, truth)
        bushy = optimize(chain_query, chain_schema, truth, bushy=True)
        assert bushy.estimated_cost < left_deep.estimated_cost
        # And the work metric agrees.
        ld_work = plan_work(chain_query, left_deep, chain_schema).total_tuples
        bushy_work = plan_work(chain_query, bushy, chain_schema).total_tuples
        assert bushy_work < ld_work

    def test_no_cross_products(self, chain_schema, chain_query):
        """Every intermediate of the bushy plan is connected."""
        truth = TrueCardinalityEstimator(chain_schema)
        plan = optimize(chain_query, chain_schema, truth, bushy=True)
        for subset in plan.intermediates:
            assert chain_schema.is_connected_subschema(subset)

    def test_star_queries_agree_between_spaces(self, imdb_schema,
                                               joblight_bench):
        """On FK-star queries both spaces find equally cheap plans."""
        truth = TrueCardinalityEstimator(imdb_schema)
        for item in list(joblight_bench)[:5]:
            left_deep = optimize(item.query, imdb_schema, truth)
            bushy = optimize(item.query, imdb_schema, truth, bushy=True)
            assert bushy.estimated_cost == pytest.approx(
                left_deep.estimated_cost, rel=1e-9)
