"""Meta-tests: every public item in the library carries documentation."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name for _, name, __ in pkgutil.walk_packages(repro.__path__, "repro.")
    # Importing __main__ executes the CLI; it is covered by tests/test_cli.py.
    if not name.endswith("__main__")
)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports documented at their definition site
        yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = [name for name, member in _public_members(module)
                    if not inspect.getdoc(member)]
    assert not undocumented, (
        f"{module_name} has undocumented public items: {undocumented}"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for cls_name, cls in _public_members(module):
        if not inspect.isclass(cls):
            continue
        for name, method in vars(cls).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(method)
                    or isinstance(method, (property, classmethod,
                                           staticmethod))):
                continue
            target = method.fget if isinstance(method, property) else method
            if isinstance(method, (classmethod, staticmethod)):
                target = method.__func__
            if not inspect.getdoc(target):
                undocumented.append(f"{cls_name}.{name}")
    assert not undocumented, (
        f"{module_name} has undocumented public methods: {undocumented}"
    )


def test_package_exports_resolve():
    """Everything in repro.__all__ is importable from the top level."""
    for name in repro.__all__:
        assert hasattr(repro, name), name
