"""Tests for the histogram tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.tree import BinMapper, grow_tree


class TestBinMapper:
    def test_few_uniques_get_exact_bins(self):
        X = np.asarray([[1.0], [2.0], [5.0], [2.0]])
        mapper = BinMapper(max_bins=8).fit(X)
        codes = mapper.transform(X)
        assert codes[:, 0].tolist() == [0, 1, 2, 1]

    def test_thresholds_are_midpoints(self):
        X = np.asarray([[1.0], [3.0], [7.0]])
        mapper = BinMapper(max_bins=8).fit(X)
        np.testing.assert_allclose(mapper.thresholds(0), [2.0, 5.0])

    def test_constant_column_single_bin(self):
        X = np.full((5, 1), 3.0)
        mapper = BinMapper(max_bins=8).fit(X)
        assert mapper.thresholds(0).size == 0
        assert (mapper.transform(X) == 0).all()

    def test_many_uniques_capped(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 1))
        mapper = BinMapper(max_bins=16).fit(X)
        codes = mapper.transform(X)
        assert codes.max() <= 15

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError):
            BinMapper(max_bins=1)
        with pytest.raises(ValueError):
            BinMapper(max_bins=300)

    def test_fit_revalidates_mutated_max_bins(self):
        # transform() packs codes into uint8; a max_bins smuggled past
        # __init__ (deserialisation, attribute mutation) must fail
        # loudly at fit instead of wrapping codes silently.
        mapper = BinMapper(max_bins=8)
        mapper._max_bins = 256
        with pytest.raises(ValueError, match="uint8"):
            mapper.fit(np.ones((4, 1)))

    def test_transform_checks_feature_count(self):
        mapper = BinMapper().fit(np.ones((3, 2)))
        with pytest.raises(ValueError, match="features"):
            mapper.transform(np.ones((3, 3)))

    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_code_threshold_equivalence(self, values):
        """code(x) <= b  <=>  x < threshold[b], the invariant prediction
        relies on (binned and raw traversal must agree)."""
        X = np.asarray(values)[:, None]
        mapper = BinMapper(max_bins=8).fit(X)
        codes = mapper.transform(X)[:, 0]
        thresholds = mapper.thresholds(0)
        for b in range(thresholds.size):
            np.testing.assert_array_equal(codes <= b, X[:, 0] < thresholds[b])


class TestGrowTree:
    def make_data(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, size=(n, 3))
        y = np.where(X[:, 0] < 0.5, 1.0, 5.0) + rng.normal(0, 0.01, n)
        return X, y

    def test_learns_a_step_function(self):
        X, y = self.make_data()
        mapper = BinMapper(max_bins=32).fit(X)
        tree = grow_tree(mapper.transform(X), y, mapper, max_depth=3,
                         min_samples_leaf=5)
        pred = tree.predict(X)
        assert np.abs(pred - y).mean() < 0.2

    def test_binned_and_raw_prediction_agree(self):
        X, y = self.make_data()
        mapper = BinMapper(max_bins=32).fit(X)
        codes = mapper.transform(X)
        tree = grow_tree(codes, y, mapper, max_depth=4, min_samples_leaf=5)
        np.testing.assert_allclose(tree.predict(X), tree.predict_binned(codes))

    def test_respects_max_depth_zero(self):
        X, y = self.make_data()
        mapper = BinMapper().fit(X)
        tree = grow_tree(mapper.transform(X), y, mapper, max_depth=0)
        assert tree.node_count == 1
        np.testing.assert_allclose(tree.predict(X), y.mean(), rtol=1e-6)

    def test_min_samples_leaf_respected(self):
        X, y = self.make_data(n=50)
        mapper = BinMapper().fit(X)
        tree = grow_tree(mapper.transform(X), y, mapper, max_depth=10,
                         min_samples_leaf=25)
        # At most one split is possible with 50 rows and leaves >= 25.
        assert tree.node_count <= 3

    def test_pure_target_stays_single_leaf(self):
        X = np.random.default_rng(1).uniform(size=(100, 2))
        y = np.full(100, 7.0)
        mapper = BinMapper().fit(X)
        tree = grow_tree(mapper.transform(X), y, mapper)
        assert tree.node_count == 1

    def test_row_subset(self):
        X, y = self.make_data()
        mapper = BinMapper().fit(X)
        rows = np.arange(0, 100)
        tree = grow_tree(mapper.transform(X), y, mapper, rows=rows,
                         max_depth=3, min_samples_leaf=5)
        assert np.isfinite(tree.predict(X)).all()

    def test_empty_rows_rejected(self):
        X, y = self.make_data()
        mapper = BinMapper().fit(X)
        with pytest.raises(ValueError, match="zero rows"):
            grow_tree(mapper.transform(X), y, mapper,
                      rows=np.empty(0, dtype=np.int64))

    def test_colsample_validation(self):
        X, y = self.make_data()
        mapper = BinMapper().fit(X)
        with pytest.raises(ValueError, match="colsample"):
            grow_tree(mapper.transform(X), y, mapper, colsample=0.0)

    def test_memory_bytes_positive(self):
        X, y = self.make_data()
        mapper = BinMapper().fit(X)
        tree = grow_tree(mapper.transform(X), y, mapper, max_depth=3)
        assert tree.memory_bytes() > 0
