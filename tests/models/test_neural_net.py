"""Tests for the feed-forward neural network."""

import numpy as np
import pytest

from repro.models import NeuralNetRegressor


def make_regression(n=500, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 4))
    y = 2.0 * X[:, 0] - X[:, 1] + 0.5 * np.abs(X[:, 2])
    return X, y


def test_fits_linearish_function():
    X, y = make_regression()
    model = NeuralNetRegressor(hidden_sizes=(32, 16), epochs=40,
                               early_stopping_rounds=None)
    model.fit(X, y)
    residual = y - model.predict(X)
    assert residual.std() < 0.35 * y.std()


def test_deterministic_in_seed():
    X, y = make_regression(n=200)
    a = NeuralNetRegressor(hidden_sizes=(16,), epochs=5,
                           random_state=3).fit(X, y)
    b = NeuralNetRegressor(hidden_sizes=(16,), epochs=5,
                           random_state=3).fit(X, y)
    np.testing.assert_array_equal(a.predict(X), b.predict(X))


def test_early_stopping_restores_best_weights():
    X, y = make_regression(n=300)
    model = NeuralNetRegressor(hidden_sizes=(16,), epochs=60,
                               early_stopping_rounds=3)
    model.fit(X, y)
    assert np.isfinite(model.predict(X)).all()


def test_standardisation_handles_constant_features():
    X = np.hstack([np.ones((100, 1)), np.random.default_rng(0).normal(size=(100, 1))])
    y = X[:, 1]
    model = NeuralNetRegressor(hidden_sizes=(8,), epochs=10)
    model.fit(X, y)
    assert np.isfinite(model.predict(X)).all()


def test_predict_before_fit_rejected():
    with pytest.raises(RuntimeError, match="fitted"):
        NeuralNetRegressor().predict(np.ones((1, 3)))


def test_parameter_validation():
    with pytest.raises(ValueError):
        NeuralNetRegressor(hidden_sizes=())
    with pytest.raises(ValueError):
        NeuralNetRegressor(hidden_sizes=(0,))
    with pytest.raises(ValueError):
        NeuralNetRegressor(epochs=0)


def test_memory_bytes_counts_parameters():
    X, y = make_regression(n=100)
    model = NeuralNetRegressor(hidden_sizes=(16, 8), epochs=2).fit(X, y)
    # 4*16 + 16*8 + 8*1 weights + biases + scaler, all float64.
    expected_weights = (4 * 16 + 16 * 8 + 8 * 1 + 16 + 8 + 1 + 2 * 4) * 8
    assert model.memory_bytes() == expected_weights


def test_tiny_training_set():
    X = np.asarray([[0.0], [1.0], [2.0]])
    y = np.asarray([0.0, 1.0, 2.0])
    model = NeuralNetRegressor(hidden_sizes=(4,), epochs=3)
    model.fit(X, y)
    assert np.isfinite(model.predict(X)).all()
