"""Tests for the MSCN model and its set-input builder."""

import numpy as np
import pytest

from repro.models.mscn import MSCNInputBuilder, MSCNModel, SetBatch
from repro.sql.parser import parse_query


class TestSetBatch:
    def test_padding_and_mask(self):
        rows = [[np.asarray([1.0, 2.0])],
                [np.asarray([3.0, 4.0]), np.asarray([5.0, 6.0])]]
        batch = SetBatch(rows, dim=2)
        assert batch.data.shape == (2, 2, 2)
        np.testing.assert_array_equal(batch.mask[:, :, 0],
                                      [[1, 0], [1, 1]])

    def test_empty_set_keeps_one_masked_zero(self):
        batch = SetBatch([[]], dim=3)
        assert batch.mask[0, 0, 0] == 1.0
        np.testing.assert_array_equal(batch.data[0, 0], np.zeros(3))

    def test_take_subsets_rows(self):
        rows = [[np.ones(2)], [np.full(2, 2.0)], [np.full(2, 3.0)]]
        batch = SetBatch(rows, dim=2)
        sub = batch.take(np.asarray([2, 0]))
        assert sub.data[0, 0, 0] == 3.0
        assert sub.data[1, 0, 0] == 1.0


class TestInputBuilder:
    def test_invalid_mode_rejected(self, imdb_schema):
        with pytest.raises(ValueError, match="mode"):
            MSCNInputBuilder(imdb_schema, mode="bogus")

    def test_single_table_wrapped_in_schema(self, small_forest):
        builder = MSCNInputBuilder(small_forest, mode="basic")
        assert builder.table_dim == 1

    def test_basic_mode_one_row_per_predicate(self, imdb_schema):
        builder = MSCNInputBuilder(imdb_schema, mode="basic")
        query = parse_query(
            "SELECT count(*) FROM title, cast_info "
            "WHERE cast_info.movie_id = title.id "
            "AND title.kind_id = 1 AND title.production_year > 2000 "
            "AND cast_info.role_id <= 5")
        tables, joins, preds = builder.build([query])
        assert tables.mask[0].sum() == 2  # two table one-hots
        assert joins.mask[0].sum() == 1  # one join edge
        assert preds.mask[0].sum() == 3  # three predicates

    def test_qft_mode_one_row_per_attribute(self, imdb_schema):
        builder = MSCNInputBuilder(imdb_schema, mode="qft", max_partitions=8)
        query = parse_query(
            "SELECT count(*) FROM title, cast_info "
            "WHERE cast_info.movie_id = title.id "
            "AND title.production_year > 2000 AND title.production_year < 2010 "
            "AND cast_info.role_id <= 5")
        _, _, preds = builder.build([query])
        # Two predicates on production_year collapse into one set element.
        assert preds.mask[0].sum() == 2

    def test_join_one_hot_matches_schema_edge(self, imdb_schema):
        builder = MSCNInputBuilder(imdb_schema, mode="basic")
        query = parse_query(
            "SELECT count(*) FROM title, movie_keyword "
            "WHERE movie_keyword.movie_id = title.id")
        _, joins, _ = builder.build([query])
        edge_index = [i for i, fk in enumerate(imdb_schema.foreign_keys)
                      if fk.child_table == "movie_keyword"][0]
        assert joins.data[0, 0, edge_index] == 1.0

    def test_no_predicate_query(self, imdb_schema):
        builder = MSCNInputBuilder(imdb_schema, mode="basic")
        query = parse_query(
            "SELECT count(*) FROM title, cast_info "
            "WHERE cast_info.movie_id = title.id")
        _, _, preds = builder.build([query])
        # Empty predicate set -> a single masked zero element.
        assert preds.mask[0].sum() == 1
        np.testing.assert_array_equal(preds.data[0, 0],
                                      np.zeros(builder.predicate_dim))

    def test_qft_batch_rows_match_scalar(self, imdb_schema, joblight_bench):
        builder = MSCNInputBuilder(imdb_schema, mode="qft", max_partitions=8)
        queries = joblight_bench.queries
        batched = builder._predicate_rows_batch(queries)
        for query, rows in zip(queries, batched):
            expected = builder._predicate_rows(query)
            assert len(rows) == len(expected)
            for got, want in zip(rows, expected):
                np.testing.assert_array_equal(got, want)


class TestMSCNModel:
    def _train(self, schema, workload, mode="basic", epochs=6):
        builder = MSCNInputBuilder(schema, mode=mode, max_partitions=8)
        model = MSCNModel(builder, hidden=16, epochs=epochs)
        model.fit(workload.queries, workload.cardinalities)
        return model

    def test_learns_better_than_constant(self, imdb_schema, joblight_bench):
        model = self._train(imdb_schema, joblight_bench, epochs=40)
        pred = model.predict(joblight_bench.queries)
        truth = joblight_bench.cardinalities
        log_err = np.abs(np.log(pred) - np.log(truth)).mean()
        const = np.exp(np.log(truth).mean())
        const_err = np.abs(np.log(const) - np.log(truth)).mean()
        assert log_err < const_err

    def test_predictions_clamped_to_one(self, imdb_schema, joblight_bench):
        model = self._train(imdb_schema, joblight_bench, epochs=2)
        assert (model.predict(joblight_bench.queries) >= 1.0).all()

    def test_predict_before_fit_rejected(self, imdb_schema):
        builder = MSCNInputBuilder(imdb_schema, mode="basic")
        model = MSCNModel(builder, hidden=8)
        with pytest.raises(RuntimeError, match="fitted"):
            model.predict([])

    def test_fit_validates_alignment(self, imdb_schema, joblight_bench):
        builder = MSCNInputBuilder(imdb_schema, mode="basic")
        model = MSCNModel(builder, hidden=8, epochs=1)
        with pytest.raises(ValueError, match="align"):
            model.fit(joblight_bench.queries, np.ones(3))
        with pytest.raises(ValueError, match="non-empty"):
            model.fit([], np.empty(0))

    def test_deterministic_in_seed(self, imdb_schema, joblight_bench):
        a = self._train(imdb_schema, joblight_bench, epochs=2)
        b = self._train(imdb_schema, joblight_bench, epochs=2)
        np.testing.assert_array_equal(a.predict(joblight_bench.queries),
                                      b.predict(joblight_bench.queries))

    def test_memory_bytes_counts_params(self, imdb_schema):
        builder = MSCNInputBuilder(imdb_schema, mode="basic")
        model = MSCNModel(builder, hidden=16)
        assert model.memory_bytes() > 0
