"""Numerical gradient checks for the hand-written backpropagation.

The NN and MSCN implement backprop manually; these tests compare every
analytic parameter gradient against central finite differences on tiny
networks.  A sign or transpose error anywhere in the backward pass makes
these fail loudly.
"""

import numpy as np
import pytest

from repro.data.table import Table
from repro.models.mscn import MSCNInputBuilder, MSCNModel
from repro.models.neural_net import NeuralNetRegressor, _Standardizer
from repro.sql.parser import parse_query

EPS = 1e-6
TOL = 1e-5


class TestNeuralNetGradients:
    def make_net(self):
        rng = np.random.default_rng(0)
        net = NeuralNetRegressor(hidden_sizes=(5, 4), epochs=1)
        net._init_params(input_dim=3, rng=rng)
        # Move biases off the ReLU kink (see the MSCN check below).
        for bias in net._biases:
            bias += rng.normal(0.0, 0.05, size=bias.shape)
        X = rng.normal(size=(7, 3))
        y = rng.normal(size=7)
        return net, X, y

    def loss(self, net, X, y) -> float:
        pred, _ = net._forward(X)
        return float(0.5 * np.mean((pred - y) ** 2))

    def test_weight_and_bias_gradients(self):
        net, X, y = self.make_net()
        pred, activations = net._forward(X)
        grad_w, grad_b = net._backward(activations, pred - y)
        for layer in range(len(net._weights)):
            for params, grads in ((net._weights, grad_w),
                                  (net._biases, grad_b)):
                tensor = params[layer]
                it = np.nditer(tensor, flags=["multi_index"])
                checked = 0
                while not it.finished and checked < 12:
                    idx = it.multi_index
                    original = tensor[idx]
                    tensor[idx] = original + EPS
                    up = self.loss(net, X, y)
                    tensor[idx] = original - EPS
                    down = self.loss(net, X, y)
                    tensor[idx] = original
                    numeric = (up - down) / (2 * EPS)
                    # The analytic gradient includes the l2 term; remove it.
                    analytic = grads[layer][idx]
                    if params is net._weights:
                        analytic = analytic - net.l2 * original
                    assert numeric == pytest.approx(analytic, abs=TOL), (
                        f"layer {layer} index {idx}"
                    )
                    checked += 1
                    it.iternext()


class TestMSCNGradients:
    def make_model(self):
        rng = np.random.default_rng(1)
        table = Table("t", {"a": rng.integers(0, 10, 50).astype(float),
                            "b": rng.integers(0, 10, 50).astype(float)})
        builder = MSCNInputBuilder(table, mode="basic")
        model = MSCNModel(builder, hidden=4, epochs=1)
        # Perturb every parameter away from zero: ReLU is kinked at 0 and
        # finite differences disagree with the (one-sided) subgradient
        # exactly there.
        for tensor in model._all_params():
            tensor += rng.normal(0.0, 0.05, size=tensor.shape)
        queries = [
            parse_query("SELECT count(*) FROM t WHERE a > 3"),
            parse_query("SELECT count(*) FROM t WHERE a > 1 AND b < 7"),
            parse_query("SELECT count(*) FROM t"),
        ]
        sets = builder.build(queries)
        y = np.asarray([0.3, 0.6, 0.9])
        return model, sets, y

    def loss(self, model, sets, y) -> float:
        pred, _ = model._forward(sets)
        return float(0.5 * np.mean((pred - y) ** 2))

    def test_all_parameter_gradients(self):
        model, sets, y = self.make_model()
        pred, cache = model._forward(sets)
        grads = model._backward(cache, pred - y)
        params = model._all_params()
        assert len(grads) == len(params)
        for p_idx, (tensor, grad) in enumerate(zip(params, grads)):
            it = np.nditer(tensor, flags=["multi_index"])
            checked = 0
            while not it.finished and checked < 8:
                idx = it.multi_index
                original = tensor[idx]
                tensor[idx] = original + EPS
                up = self.loss(model, sets, y)
                tensor[idx] = original - EPS
                down = self.loss(model, sets, y)
                tensor[idx] = original
                numeric = (up - down) / (2 * EPS)
                assert numeric == pytest.approx(grad[idx], abs=TOL), (
                    f"parameter {p_idx} index {idx}"
                )
                checked += 1
                it.iternext()


class TestStandardizer:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(2)
        X = rng.normal(3.0, 5.0, size=(200, 4))
        scaler = _Standardizer().fit(X)
        Z = scaler.transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-12)
