"""CompiledForest: the packed forest must be an exact stand-in.

``CompiledForest.predict`` re-implements the legacy per-tree loop
(``base + lr·t₀(x) + lr·t₁(x) + …``) with a level-synchronous batch
traversal over contiguous node tensors.  Its contract is bitwise
equality with the loop — same accumulation order, same floats — plus
the structural invariants the packing relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.compiled_forest import CompiledForest
from repro.models.gradient_boosting import GradientBoostingRegressor


def fitted_model(n_rows=400, n_features=6, n_estimators=12, seed=7,
                 **kwargs):
    rng = np.random.default_rng(seed)
    X = rng.random((n_rows, n_features))
    y = X @ rng.random(n_features) + 0.1 * rng.standard_normal(n_rows)
    model = GradientBoostingRegressor(n_estimators=n_estimators,
                                      random_state=seed, **kwargs)
    return model.fit(X, y), X


def legacy_predict(model, X):
    prediction = np.full(X.shape[0], model._base)
    for tree in model.trees:  # repro: ignore[RPR109] — the reference loop
        prediction += model.learning_rate * tree.predict(X)
    return prediction


class TestBitwiseEquivalence:
    def test_compiled_matches_legacy_loop_exactly(self):
        model, X = fitted_model()
        forest = model.compile()
        assert isinstance(forest, CompiledForest)
        np.testing.assert_array_equal(forest.predict(X),
                                      legacy_predict(model, X))

    def test_model_predict_delegates_when_compiled(self):
        model, X = fitted_model(seed=11)
        before = model.predict(X)
        model.compile()
        np.testing.assert_array_equal(model.predict(X), before)

    def test_single_row_and_empty_batch(self):
        model, X = fitted_model(seed=5)
        forest = model.compile()
        np.testing.assert_array_equal(forest.predict(X[:1]),
                                      legacy_predict(model, X[:1]))
        assert forest.predict(X[:0]).shape == (0,)

    def test_depth_one_stumps(self):
        model, X = fitted_model(seed=3, max_depth=1, n_estimators=5)
        forest = model.compile()
        assert forest.max_depth <= 1
        np.testing.assert_array_equal(forest.predict(X),
                                      legacy_predict(model, X))

    def test_out_of_range_features_follow_legacy_branches(self):
        model, X = fitted_model(seed=13)
        forest = model.compile()
        extremes = np.vstack([X.min(axis=0) - 10.0, X.max(axis=0) + 10.0])
        np.testing.assert_array_equal(forest.predict(extremes),
                                      legacy_predict(model, extremes))


class TestStructure:
    def test_shapes_and_counters(self):
        model, _ = fitted_model()
        forest = model.compile()
        assert forest.n_trees == len(model.trees)
        assert forest.max_nodes == max(t.node_count for t in model.trees)
        assert forest.base == model._base
        assert forest.learning_rate == model.learning_rate
        assert forest.memory_bytes() > 0

    def test_compile_is_idempotent(self):
        model, _ = fitted_model(seed=2)
        assert model.compile() is model.compile()

    def test_refit_invalidates_compiled_forest(self):
        model, X = fitted_model(seed=4)
        first = model.compile()
        rng = np.random.default_rng(8)
        model.fit(X, rng.random(X.shape[0]))
        assert model.compiled is None
        assert model.compile() is not first

    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError, match="empty forest"):
            CompiledForest([], base=0.0, learning_rate=0.1)

    def test_rejects_non_matrix_input(self):
        model, X = fitted_model(seed=6)
        forest = model.compile()
        with pytest.raises(ValueError, match="2-d"):
            forest.predict(X[0])
