"""Tests for the gradient-boosting regressor."""

import numpy as np
import pytest

from repro.models import GradientBoostingRegressor


def make_regression(n=600, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 5))
    y = 3.0 * X[:, 0] + np.sin(3 * X[:, 1]) + 0.5 * X[:, 2] * X[:, 3]
    y += rng.normal(0, 0.05, n)
    return X, y


def test_fits_nonlinear_function():
    X, y = make_regression()
    model = GradientBoostingRegressor(n_estimators=80, max_depth=4,
                                      early_stopping_rounds=None)
    model.fit(X, y)
    residual = y - model.predict(X)
    assert residual.std() < 0.5 * y.std()


def test_generalises_to_held_out_data():
    X, y = make_regression(n=1200)
    model = GradientBoostingRegressor(n_estimators=100, max_depth=4)
    model.fit(X[:900], y[:900])
    test_residual = y[900:] - model.predict(X[900:])
    assert test_residual.std() < 0.6 * y[900:].std()


def test_more_trees_reduce_training_error():
    X, y = make_regression()
    small = GradientBoostingRegressor(n_estimators=5,
                                      early_stopping_rounds=None).fit(X, y)
    large = GradientBoostingRegressor(n_estimators=60,
                                      early_stopping_rounds=None).fit(X, y)
    err_small = np.mean((y - small.predict(X))**2)
    err_large = np.mean((y - large.predict(X))**2)
    assert err_large < err_small


def test_early_stopping_truncates_trees():
    X, y = make_regression(n=300)
    model = GradientBoostingRegressor(n_estimators=400,
                                      early_stopping_rounds=5)
    model.fit(X, y)
    assert len(model.trees) < 400


def test_deterministic_in_seed():
    X, y = make_regression()
    a = GradientBoostingRegressor(n_estimators=20, subsample=0.8,
                                  random_state=1).fit(X, y)
    b = GradientBoostingRegressor(n_estimators=20, subsample=0.8,
                                  random_state=1).fit(X, y)
    np.testing.assert_array_equal(a.predict(X), b.predict(X))


def test_subsample_and_colsample():
    X, y = make_regression()
    model = GradientBoostingRegressor(n_estimators=30, subsample=0.7,
                                      colsample=0.5)
    model.fit(X, y)
    assert np.isfinite(model.predict(X)).all()


def test_predict_before_fit_rejected():
    model = GradientBoostingRegressor()
    with pytest.raises(RuntimeError, match="fitted"):
        model.predict(np.ones((1, 3)))


def test_parameter_validation():
    with pytest.raises(ValueError):
        GradientBoostingRegressor(n_estimators=0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(learning_rate=0.0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(subsample=1.5)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(validation_fraction=1.0)


def test_input_validation():
    model = GradientBoostingRegressor()
    with pytest.raises(ValueError, match="2-d"):
        model.fit(np.ones(5), np.ones(5))
    with pytest.raises(ValueError, match="length"):
        model.fit(np.ones((5, 2)), np.ones(4))
    with pytest.raises(ValueError, match="NaN"):
        model.fit(np.full((5, 2), np.nan), np.ones(5))


def test_memory_bytes_grows_with_trees():
    X, y = make_regression(n=300)
    small = GradientBoostingRegressor(n_estimators=5,
                                      early_stopping_rounds=None).fit(X, y)
    large = GradientBoostingRegressor(n_estimators=50,
                                      early_stopping_rounds=None).fit(X, y)
    assert large.memory_bytes() > small.memory_bytes() > 0


def test_tiny_training_set():
    """Early stopping is skipped below 50 samples; fitting still works."""
    X = np.asarray([[0.0], [1.0], [2.0], [3.0]])
    y = np.asarray([0.0, 1.0, 2.0, 3.0])
    model = GradientBoostingRegressor(n_estimators=5, min_samples_leaf=1)
    model.fit(X, y)
    assert np.isfinite(model.predict(X)).all()
