"""Tests for the model base layer (log-space wrapper, validation)."""

import numpy as np
import pytest

from repro.models import GradientBoostingRegressor
from repro.models.base import LogSpaceRegressor, Regressor, check_matrix


class TestCheckMatrix:
    def test_valid_inputs_pass_through(self):
        X, y = check_matrix(np.ones((3, 2)), [1, 2, 3])
        assert X.dtype == np.float64
        assert y.shape == (3,)

    def test_targets_optional(self):
        X, y = check_matrix(np.ones((3, 2)))
        assert y is None

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError, match="2-d"):
            check_matrix(np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            check_matrix(np.empty((0, 2)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="NaN"):
            check_matrix(np.asarray([[np.inf]]))
        with pytest.raises(ValueError, match="NaN"):
            check_matrix(np.ones((2, 1)), [np.nan, 1.0])

    def test_rejects_misaligned_targets(self):
        with pytest.raises(ValueError, match="length"):
            check_matrix(np.ones((3, 1)), [1.0, 2.0])


class _ConstantModel(Regressor):
    """Predicts the mean of its training targets."""

    def fit(self, features, targets):
        self.value = float(np.mean(targets))
        return self

    def predict(self, features):
        return np.full(features.shape[0], self.value)

    def memory_bytes(self):
        return 8


class TestLogSpaceRegressor:
    def test_round_trips_through_log(self):
        model = LogSpaceRegressor(_ConstantModel())
        X = np.ones((4, 1))
        cards = np.asarray([10.0, 10.0, 10.0, 10.0])
        model.fit(X, cards)
        np.testing.assert_allclose(model.predict(X), 10.0, rtol=1e-9)

    def test_geometric_mean_behaviour(self):
        """Mean in log space = geometric mean of cardinalities."""
        model = LogSpaceRegressor(_ConstantModel())
        X = np.ones((2, 1))
        model.fit(X, np.asarray([1.0, 10000.0]))
        np.testing.assert_allclose(model.predict(X), 100.0, rtol=1e-9)

    def test_predictions_clamped_to_one(self):
        model = LogSpaceRegressor(_ConstantModel())
        X = np.ones((2, 1))
        model.fit(X, np.asarray([1.0, 1.0]))
        assert (model.predict(X) >= 1.0).all()

    def test_zero_cardinalities_tolerated(self):
        model = LogSpaceRegressor(_ConstantModel())
        model.fit(np.ones((2, 1)), np.asarray([0.0, 1.0]))

    def test_negative_cardinalities_rejected(self):
        model = LogSpaceRegressor(_ConstantModel())
        with pytest.raises(ValueError, match="non-negative"):
            model.fit(np.ones((2, 1)), np.asarray([-1.0, 1.0]))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError, match="fitted"):
            LogSpaceRegressor(_ConstantModel()).predict(np.ones((1, 1)))

    def test_wraps_real_model(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(300, 3))
        cards = np.exp(5 * X[:, 0] + 2)  # spans e^2 .. e^7
        model = LogSpaceRegressor(
            GradientBoostingRegressor(n_estimators=40))
        model.fit(X, cards)
        ratio = model.predict(X) / cards
        assert np.median(np.maximum(ratio, 1 / ratio)) < 1.5

    def test_memory_bytes_delegates(self):
        model = LogSpaceRegressor(_ConstantModel())
        assert model.memory_bytes() == 8
