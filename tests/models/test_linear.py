"""Tests for the linear baselines (ridge, linear SVR)."""

import numpy as np
import pytest

from repro.models.linear import LinearSVR, RidgeRegressor


def make_linear(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 + rng.normal(0, 0.01, n)
    return X, y


class TestRidge:
    def test_recovers_linear_coefficients(self):
        X, y = make_linear()
        model = RidgeRegressor(alpha=1e-6).fit(X, y)
        pred = model.predict(X)
        assert np.abs(pred - y).mean() < 0.05

    def test_alpha_shrinks_coefficients(self):
        X, y = make_linear()
        loose = RidgeRegressor(alpha=1e-6).fit(X, y)
        tight = RidgeRegressor(alpha=1e5).fit(X, y)
        assert np.linalg.norm(tight._coef) < np.linalg.norm(loose._coef)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegressor(alpha=-1.0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            RidgeRegressor().predict(np.ones((1, 2)))

    def test_memory_bytes(self):
        X, y = make_linear(n=50)
        model = RidgeRegressor().fit(X, y)
        assert model.memory_bytes() == 3 * 8 + 8


class TestLinearSVR:
    def test_fits_linear_function_roughly(self):
        X, y = make_linear()
        model = LinearSVR(epochs=80, learning_rate=5e-2).fit(X, y)
        residual = y - model.predict(X)
        assert residual.std() < 0.5 * y.std()

    def test_deterministic_in_seed(self):
        X, y = make_linear(n=100)
        a = LinearSVR(epochs=5, random_state=1).fit(X, y)
        b = LinearSVR(epochs=5, random_state=1).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LinearSVR(epsilon=-1)
        with pytest.raises(ValueError):
            LinearSVR(c=0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LinearSVR().predict(np.ones((1, 2)))
