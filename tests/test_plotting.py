"""Tests for the text box-plot renderer."""

import pytest

from repro.metrics import QErrorSummary, summarize
from repro.plotting import ascii_boxplot, boxplot_from_rows


def summary(median, q25, q75, q01, q99):
    return QErrorSummary(count=10, mean=median, median=median, q25=q25,
                         q75=q75, q01=q01, q99=q99, max=q99)


def test_empty_input():
    assert ascii_boxplot([]) == "(no data)"


def test_width_validation():
    with pytest.raises(ValueError, match="width"):
        ascii_boxplot([("a", summary(2, 1.5, 3, 1, 10))], width=5)


def test_geometry_markers_present():
    text = ascii_boxplot([("model", summary(2.0, 1.5, 3.0, 1.0, 50.0))],
                         width=40)
    line = text.splitlines()[0]
    assert line.startswith("model")
    assert "=" in line  # the 25-75% box
    assert "-" in line  # the whiskers
    assert "median=2.00" in line
    assert "q99=50.0" in line


def test_rows_aligned_and_axis_shared():
    items = [
        ("narrow", summary(1.2, 1.1, 1.4, 1.0, 2.0)),
        ("wide", summary(5.0, 2.0, 20.0, 1.0, 400.0)),
    ]
    text = ascii_boxplot(items, width=50)
    lines = text.splitlines()
    assert len(lines) == 3  # two rows + axis
    # Both canvases share the axis: the whiskers start at q01=1.0 -> the
    # leftmost '|' sits in the same column.
    assert lines[0].index("|") == lines[1].index("|")
    assert "log axis" in lines[2]


def test_ordering_on_log_axis():
    """A strictly larger distribution renders strictly further right."""
    small = summary(1.5, 1.2, 1.8, 1.0, 3.0)
    large = summary(15.0, 12.0, 18.0, 10.0, 30.0)
    text = ascii_boxplot([("s", small), ("l", large)], width=60)
    s_line, l_line = text.splitlines()[:2]
    assert s_line.index("=") < l_line.index("=")


def test_boxplot_from_rows():
    rows = [
        {"model": "GB", "qft": "conj", "median": 1.4, "q25": 1.2,
         "q75": 2.1, "q01": 1.0, "q99": 38.0, "mean": 3.5, "queries": 100},
        {"model": "GB", "qft": "simple", "median": 1.8, "q25": 1.2,
         "q75": 4.5, "q01": 1.0, "q99": 75.0, "mean": 6.2, "queries": 100},
    ]
    text = boxplot_from_rows(rows, label_keys=["model", "qft"])
    assert "GB conj" in text
    assert "GB simple" in text


def test_works_with_real_summaries():
    import numpy as np
    rng = np.random.default_rng(0)
    real = summarize(1.0 + rng.gamma(1.5, 2.0, 500))
    text = ascii_boxplot([("real", real)])
    assert "median=" in text
