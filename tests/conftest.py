"""Shared fixtures.

Expensive artifacts (tables, schemas, workloads) are session-scoped and
small: tests check behaviour and invariants, not paper-scale accuracy
(the benchmarks do that).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.forest import generate_forest
from repro.data.imdb import generate_imdb
from repro.data.table import Table
from repro.workloads import (
    generate_conjunctive_workload,
    generate_joblight_benchmark,
    generate_mixed_workload,
)


@pytest.fixture(scope="session")
def paper_table() -> Table:
    """The table of the paper's Section 3.2 worked example.

    Attributes: A with min -9 / max 50, B with min 0 / max 115, C with
    values in {1, 2} — all integral.
    """
    rng = np.random.default_rng(0)
    a = rng.integers(-9, 51, 400).astype(np.float64)
    a[0], a[1] = -9.0, 50.0
    b = rng.integers(0, 116, 400).astype(np.float64)
    b[0], b[1] = 0.0, 115.0
    c = rng.integers(1, 3, 400).astype(np.float64)
    c[0], c[1] = 1.0, 2.0
    return Table("t", {"A": a, "B": b, "C": c})


@pytest.fixture(scope="session")
def small_forest() -> Table:
    """A small forest covertype table for behavioural tests."""
    return generate_forest(rows=4_000, seed=11)


@pytest.fixture(scope="session")
def tiny_table() -> Table:
    """A tiny three-column integer table with hand-checkable contents."""
    return Table("tiny", {
        "x": np.asarray([1, 2, 3, 4, 5, 6, 7, 8, 9, 10], dtype=np.float64),
        "y": np.asarray([1, 1, 1, 2, 2, 2, 3, 3, 3, 3], dtype=np.float64),
        "z": np.asarray([5, 5, 5, 5, 5, 7, 7, 7, 7, 7], dtype=np.float64),
    })


@pytest.fixture(scope="session")
def imdb_schema():
    """A small synthetic IMDb schema."""
    return generate_imdb(title_rows=1_200, seed=5)


@pytest.fixture(scope="session")
def conjunctive_workload(small_forest):
    """A labeled conjunctive workload over the small forest table."""
    return generate_conjunctive_workload(small_forest, 400, seed=3)


@pytest.fixture(scope="session")
def mixed_workload(small_forest):
    """A labeled mixed workload over the small forest table."""
    return generate_mixed_workload(small_forest, 400, seed=4)


@pytest.fixture(scope="session")
def joblight_bench(imdb_schema):
    """A small JOB-light-style benchmark workload."""
    return generate_joblight_benchmark(imdb_schema, num_queries=25)
