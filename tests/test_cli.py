"""Tests for the command-line interface."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.data.loaders import load_table_csv, save_table_csv
from repro.data.table import Table


@pytest.fixture(scope="module")
def csv_table(tmp_path_factory):
    """A small CSV table on disk."""
    rng = np.random.default_rng(1)
    table = Table("orders", {
        "price": rng.integers(0, 500, 2_000).astype(float),
        "year": rng.integers(1990, 2000, 2_000).astype(float),
        "status": rng.integers(0, 3, 2_000).astype(float),
    })
    path = tmp_path_factory.mktemp("cli") / "orders.csv"
    save_table_csv(table, path)
    return path


def test_generate_forest(tmp_path, capsys):
    out = tmp_path / "forest.csv"
    assert main(["generate-forest", str(out), "--rows", "300"]) == 0
    assert "300 rows" in capsys.readouterr().out
    table = load_table_csv(out)
    assert table.row_count == 300
    assert len(table.column_names) == 55


def test_train_then_estimate(tmp_path, csv_table, capsys):
    model_path = tmp_path / "model.npz"
    assert main([
        "train", str(csv_table), str(model_path),
        "--queries", "200", "--trees", "20", "--max-attributes", "2",
    ]) == 0
    assert model_path.exists()
    out = capsys.readouterr().out
    assert "saved estimator" in out

    assert main([
        "estimate", str(model_path),
        "SELECT count(*) FROM orders WHERE price < 250 AND year >= 1995",
        "--data", str(csv_table),
    ]) == 0
    out = capsys.readouterr().out
    assert "estimate:" in out
    assert "true:" in out
    assert "q-error:" in out


def test_train_mixed_workload_with_complex_qft(tmp_path, csv_table):
    model_path = tmp_path / "complex.npz"
    assert main([
        "train", str(csv_table), str(model_path),
        "--qft", "complex", "--workload", "mixed",
        "--queries", "150", "--trees", "15", "--max-attributes", "2",
    ]) == 0
    assert model_path.exists()


def test_estimate_without_data_prints_only_estimate(tmp_path, csv_table,
                                                    capsys):
    model_path = tmp_path / "model.npz"
    main(["train", str(csv_table), str(model_path),
          "--queries", "150", "--trees", "10", "--max-attributes", "2"])
    capsys.readouterr()
    assert main([
        "estimate", str(model_path),
        "SELECT count(*) FROM orders WHERE price < 100",
    ]) == 0
    out = capsys.readouterr().out
    assert "estimate:" in out
    assert "true:" not in out


def test_experiments_forwarding(capsys):
    assert main(["experiments", "--list"]) == 0
    assert "fig1" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


def test_lint_subcommand_on_shipped_tree(capsys):
    assert main(["lint", REPO_SRC]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_subcommand_json_format(capsys):
    assert main(["lint", REPO_SRC, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["exit_code"] == 0
    assert payload["findings"] == []


def test_lint_subcommand_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "RPR101" in out and "RPR303" in out


def test_lint_subcommand_flags_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text('__all__ = []\n\n\ndef f(x=[]):\n    """Doc."""\n'
                   "    return x\n")
    assert main(["lint", str(bad),
                 "--baseline", str(tmp_path / "none.json")]) == 1
    out = capsys.readouterr().out
    assert "RPR101" in out and "RPR303" in out


def test_lint_subcommand_write_baseline(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text('def f(x=[]):\n    """Doc."""\n    return x\n')
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(bad), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert "wrote 1 finding(s)" in capsys.readouterr().out
    assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
