"""Tests for repro.data.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.stats import ColumnStats, build_stats


def test_basic_stats():
    stats = build_stats(np.asarray([1.0, 2.0, 2.0, 5.0]))
    assert stats.row_count == 4
    assert stats.min_value == 1.0
    assert stats.max_value == 5.0
    assert stats.distinct_count == 3
    assert stats.is_integral


def test_non_integral_detection():
    stats = build_stats(np.asarray([1.5, 2.0]))
    assert not stats.is_integral


def test_domain_size_inclusive():
    stats = build_stats(np.asarray([0.0, 9.0]))
    assert stats.domain_size == 10.0


def test_normalize_endpoints_and_clamping():
    stats = build_stats(np.asarray([10.0, 20.0]))
    assert stats.normalize(10.0) == 0.0
    assert stats.normalize(20.0) == 1.0
    assert stats.normalize(15.0) == pytest.approx(0.5)
    assert stats.normalize(-100.0) == 0.0
    assert stats.normalize(100.0) == 1.0


def test_normalize_constant_column():
    stats = build_stats(np.full(5, 3.0))
    assert stats.normalize(3.0) == 0.0


def test_empty_input_rejected():
    with pytest.raises(ValueError, match="empty"):
        build_stats(np.asarray([], dtype=np.float64))


def test_mcv_ordering():
    data = np.asarray([1.0] * 50 + [2.0] * 30 + [3.0] * 20)
    stats = build_stats(data)
    assert stats.mcv_values[0] == 1.0
    assert stats.mcv_fractions[0] == pytest.approx(0.5)
    # Fractions are non-increasing.
    assert list(stats.mcv_fractions) == sorted(stats.mcv_fractions,
                                               reverse=True)


def test_histogram_bounds_are_monotone():
    rng = np.random.default_rng(1)
    stats = build_stats(rng.normal(size=1000))
    bounds = np.asarray(stats.histogram_bounds)
    assert bounds[0] == stats.min_value
    assert bounds[-1] == stats.max_value
    assert np.all(np.diff(bounds) >= 0)


@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_stats_invariants_hold_for_any_integer_column(values):
    stats = build_stats(np.asarray(values, dtype=np.float64))
    assert stats.min_value <= stats.max_value
    assert 1 <= stats.distinct_count <= stats.row_count
    assert stats.is_integral
    assert sum(stats.mcv_fractions) <= 1.0 + 1e-9
    assert stats.domain_size >= 1.0
