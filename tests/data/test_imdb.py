"""Tests for the synthetic IMDb star-schema generator."""

import numpy as np
import pytest

from repro.data.imdb import JOBLIGHT_TABLES, PREDICATE_ATTRIBUTES, generate_imdb


def test_all_joblight_tables_present(imdb_schema):
    assert tuple(imdb_schema.table_names) == JOBLIGHT_TABLES


def test_star_shape(imdb_schema):
    for fk in imdb_schema.foreign_keys:
        assert fk.parent_table == "title"
        assert fk.parent_column == "id"
        assert fk.child_column == "movie_id"
    assert len(imdb_schema.foreign_keys) == len(JOBLIGHT_TABLES) - 1


def test_referential_integrity(imdb_schema):
    imdb_schema.check_referential_integrity()


def test_deterministic_in_seed():
    a = generate_imdb(title_rows=300, seed=9)
    b = generate_imdb(title_rows=300, seed=9)
    for name in a.table_names:
        for column in a.table(name).column_names:
            np.testing.assert_array_equal(
                a.table(name).column(column).values,
                b.table(name).column(column).values,
            )


def test_rejects_tiny_schemas():
    with pytest.raises(ValueError, match="at least 100"):
        generate_imdb(title_rows=10)


def test_title_ids_are_dense(imdb_schema):
    ids = imdb_schema.table("title").column("id").values
    np.testing.assert_array_equal(ids, np.arange(1, ids.size + 1))


def test_fanout_skew(imdb_schema):
    """Some titles have many cast entries, many have none (Zipf tails)."""
    cast = imdb_schema.table("cast_info").column("movie_id").values
    titles = imdb_schema.table("title").row_count
    counts = np.bincount(cast.astype(np.int64), minlength=titles + 1)[1:]
    assert (counts == 0).sum() > 0
    assert counts.max() >= 10 * max(np.median(counts), 1)


def test_fanout_correlates_with_year(imdb_schema):
    """Recent titles must have larger fan-outs (the anti-independence knob)."""
    title = imdb_schema.table("title")
    years = title.column("production_year").values
    cast = imdb_schema.table("cast_info").column("movie_id").values
    counts = np.bincount(cast.astype(np.int64),
                         minlength=title.row_count + 1)[1:]
    recent = counts[years >= np.quantile(years, 0.8)].mean()
    old = counts[years <= np.quantile(years, 0.2)].mean()
    assert recent > 2 * old


def test_predicate_attributes_exist(imdb_schema):
    for table_name, attributes in PREDICATE_ATTRIBUTES.items():
        table = imdb_schema.table(table_name)
        for attribute in attributes:
            assert attribute in table, f"{table_name}.{attribute}"
