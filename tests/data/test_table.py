"""Tests for repro.data.table."""

import numpy as np
import pytest

from repro.data.column import Column
from repro.data.table import Table


def make_table() -> Table:
    return Table("t", {"a": np.asarray([1.0, 2.0, 3.0]),
                       "b": np.asarray([4.0, 5.0, 6.0])})


def test_row_count_and_names():
    table = make_table()
    assert table.row_count == 3
    assert table.column_names == ["a", "b"]


def test_column_lookup_and_contains():
    table = make_table()
    assert table.column("a").values[0] == 1.0
    assert "a" in table
    assert "missing" not in table


def test_missing_column_error_lists_available():
    with pytest.raises(KeyError, match="available"):
        make_table().column("missing")


def test_columns_from_iterable_of_columns():
    table = Table("t", [Column("x", np.asarray([1.0]))])
    assert table.column_names == ["x"]


def test_rejects_length_mismatch():
    with pytest.raises(ValueError, match="differing lengths"):
        Table("t", [Column("a", np.asarray([1.0])),
                    Column("b", np.asarray([1.0, 2.0]))])


def test_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        Table("t", [Column("a", np.asarray([1.0])),
                    Column("a", np.asarray([2.0]))])


def test_rejects_empty_table():
    with pytest.raises(ValueError, match="at least one column"):
        Table("t", {})


def test_subset_selects_rows():
    table = make_table()
    sub = table.subset(np.asarray([True, False, True]))
    assert sub.row_count == 2
    assert list(sub.column("a").values) == [1.0, 3.0]


def test_subset_rejects_wrong_mask_shape():
    with pytest.raises(ValueError, match="mask shape"):
        make_table().subset(np.asarray([True, False]))


def test_subset_rejects_empty_result():
    with pytest.raises(ValueError, match="empty"):
        make_table().subset(np.zeros(3, dtype=bool))
