"""Tests for repro.data.schema."""

import numpy as np
import pytest

from repro.data.schema import ForeignKey, Schema
from repro.data.table import Table


def make_star_schema() -> Schema:
    hub = Table("hub", {"id": np.asarray([1.0, 2.0, 3.0])})
    left = Table("left", {"hub_id": np.asarray([1.0, 1.0, 2.0]),
                          "v": np.asarray([7.0, 8.0, 9.0])})
    right = Table("right", {"hub_id": np.asarray([3.0, 3.0]),
                            "w": np.asarray([1.0, 2.0])})
    return Schema(
        [hub, left, right],
        [ForeignKey("left", "hub_id", "hub", "id"),
         ForeignKey("right", "hub_id", "hub", "id")],
    )


def test_table_lookup():
    schema = make_star_schema()
    assert schema.table("hub").row_count == 3
    assert "left" in schema
    with pytest.raises(KeyError, match="available"):
        schema.table("nope")


def test_rejects_duplicate_tables():
    table = Table("t", {"a": np.asarray([1.0])})
    with pytest.raises(ValueError, match="duplicate"):
        Schema([table, Table("t", {"b": np.asarray([1.0])})])


def test_rejects_fk_to_unknown_table():
    table = Table("t", {"a": np.asarray([1.0])})
    with pytest.raises(KeyError, match="unknown table"):
        Schema([table], [ForeignKey("t", "a", "ghost", "id")])


def test_rejects_fk_to_unknown_column():
    table = Table("t", {"a": np.asarray([1.0])})
    with pytest.raises(KeyError, match="unknown column"):
        Schema([table], [ForeignKey("t", "ghost", "t", "a")])


def test_join_graph_edges():
    graph = make_star_schema().join_graph()
    assert set(graph.nodes) == {"hub", "left", "right"}
    assert graph.has_edge("hub", "left")
    assert graph.has_edge("hub", "right")
    assert not graph.has_edge("left", "right")


def test_connected_subschema_detection():
    schema = make_star_schema()
    assert schema.is_connected_subschema(["hub"])
    assert schema.is_connected_subschema(["hub", "left"])
    assert schema.is_connected_subschema(["hub", "left", "right"])
    assert not schema.is_connected_subschema(["left", "right"])
    assert not schema.is_connected_subschema([])


def test_connected_subschemata_enumeration():
    subschemata = make_star_schema().connected_subschemata()
    # hub, left, right, hub+left, hub+right, hub+left+right.
    assert len(subschemata) == 6
    assert ("hub", "left", "right") in subschemata


def test_connected_subschemata_respects_max_tables():
    subschemata = make_star_schema().connected_subschemata(max_tables=1)
    assert subschemata == [("hub",), ("left",), ("right",)]


def test_referential_integrity_passes():
    make_star_schema().check_referential_integrity()


def test_referential_integrity_detects_orphans():
    hub = Table("hub", {"id": np.asarray([1.0])})
    child = Table("child", {"hub_id": np.asarray([1.0, 99.0])})
    schema = Schema([hub, child], [ForeignKey("child", "hub_id", "hub", "id")])
    with pytest.raises(ValueError, match="violated for 1 rows"):
        schema.check_referential_integrity()


def test_foreign_keys_between():
    schema = make_star_schema()
    fks = schema.foreign_keys_between(["hub", "left"])
    assert len(fks) == 1
    assert fks[0].child_table == "left"
