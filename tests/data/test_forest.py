"""Tests for the synthetic forest covertype generator."""

import numpy as np
import pytest

from repro import config
from repro.data.forest import generate_forest


def test_shape_matches_covertype():
    table = generate_forest(rows=2_000, seed=1)
    assert table.row_count == 2_000
    assert len(table.column_names) == config.FOREST_ATTRIBUTES
    assert table.column_names[0] == "A1"
    assert table.column_names[-1] == f"A{config.FOREST_ATTRIBUTES}"


def test_deterministic_in_seed():
    a = generate_forest(rows=500, seed=7)
    b = generate_forest(rows=500, seed=7)
    for name in a.column_names:
        np.testing.assert_array_equal(a.column(name).values,
                                      b.column(name).values)


def test_different_seeds_differ():
    a = generate_forest(rows=500, seed=7)
    b = generate_forest(rows=500, seed=8)
    assert not np.array_equal(a.column("A1").values, b.column("A1").values)


def test_rejects_tiny_tables():
    with pytest.raises(ValueError, match="at least 100"):
        generate_forest(rows=10)


def test_wilderness_indicators_are_one_hot():
    table = generate_forest(rows=1_000, seed=2)
    total = sum(table.column(f"A{i}").values for i in range(11, 15))
    np.testing.assert_array_equal(total, np.ones(1_000))


def test_soil_indicators_are_one_hot():
    table = generate_forest(rows=1_000, seed=2)
    total = sum(table.column(f"A{i}").values for i in range(15, 55))
    np.testing.assert_array_equal(total, np.ones(1_000))


def test_cover_type_domain():
    table = generate_forest(rows=1_000, seed=2)
    cover = table.column("A55").values
    assert cover.min() >= 1
    assert cover.max() <= 7


def test_elevation_correlates_with_cover_type():
    """The independence baseline must be genuinely wrong on this data."""
    table = generate_forest(rows=5_000, seed=3)
    elevation = table.column("A1").values
    cover = table.column("A55").values
    # Mean elevation differs strongly across cover types.
    means = [elevation[cover == k].mean() for k in (3, 7)
             if (cover == k).any()]
    assert len(means) == 2
    assert abs(means[0] - means[1]) > 300


def test_all_columns_integral():
    table = generate_forest(rows=500, seed=4)
    for column in table.columns:
        assert column.stats.is_integral, column.name


def test_soil_type_skew():
    """Soil types follow a Zipf-ish distribution (top type is common)."""
    table = generate_forest(rows=5_000, seed=5)
    fractions = sorted(
        (table.column(f"A{i}").values.mean() for i in range(15, 55)),
        reverse=True,
    )
    assert fractions[0] > 5 * max(fractions[-1], 1e-9)
