"""Tests for repro.data.column."""

import numpy as np
import pytest

from repro.data.column import Column


def test_values_are_float64_and_readonly():
    col = Column("a", np.asarray([1, 2, 3]))
    assert col.values.dtype == np.float64
    with pytest.raises(ValueError):
        col.values[0] = 99.0


def test_source_array_is_copied():
    source = np.asarray([1.0, 2.0, 3.0])
    col = Column("a", source)
    source[0] = 42.0
    assert col.values[0] == 1.0


def test_len_and_repr():
    col = Column("a", np.arange(5))
    assert len(col) == 5
    assert "a" in repr(col)


def test_stats_cached():
    col = Column("a", np.asarray([1.0, 2.0, 2.0]))
    assert col.stats is col.stats


def test_rejects_empty_name():
    with pytest.raises(ValueError, match="name"):
        Column("", np.asarray([1.0]))


def test_rejects_empty_values():
    with pytest.raises(ValueError, match="at least one value"):
        Column("a", np.asarray([], dtype=np.float64))


def test_rejects_2d_values():
    with pytest.raises(ValueError, match="1-d"):
        Column("a", np.ones((2, 2)))


def test_rejects_non_numeric():
    with pytest.raises(TypeError, match="numeric"):
        Column("a", np.asarray(["x", "y"]))


def test_integer_input_accepted():
    col = Column("a", np.asarray([1, 2, 3], dtype=np.int32))
    assert col.stats.is_integral
