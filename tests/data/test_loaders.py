"""Tests for CSV import/export."""

import numpy as np
import pytest

from repro import config
from repro.data.imdb import generate_imdb
from repro.data.loaders import (
    load_covertype,
    load_schema,
    load_table_csv,
    save_schema,
    save_table_csv,
)


def test_table_round_trip(tmp_path, tiny_table):
    path = tmp_path / "tiny.csv"
    save_table_csv(tiny_table, path)
    loaded = load_table_csv(path)
    assert loaded.name == "tiny"
    assert loaded.column_names == tiny_table.column_names
    for name in tiny_table.column_names:
        np.testing.assert_allclose(loaded.column(name).values,
                                   tiny_table.column(name).values)


def test_table_name_override(tmp_path, tiny_table):
    path = tmp_path / "data.csv"
    save_table_csv(tiny_table, path)
    assert load_table_csv(path, name="renamed").name == "renamed"


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_table_csv(path)


def test_header_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b,c\n1,2\n")
    with pytest.raises(ValueError):
        load_table_csv(path)


def test_covertype_format(tmp_path):
    """A UCI-format file (55 headerless integer columns) loads as forest."""
    rng = np.random.default_rng(0)
    rows = rng.integers(0, 100, size=(20, config.FOREST_ATTRIBUTES))
    path = tmp_path / "covtype.data"
    np.savetxt(path, rows, delimiter=",", fmt="%d")
    table = load_covertype(path)
    assert table.name == "forest"
    assert table.column_names[0] == "A1"
    assert table.column_names[-1] == f"A{config.FOREST_ATTRIBUTES}"
    assert table.row_count == 20


def test_covertype_max_rows(tmp_path):
    rows = np.ones((30, config.FOREST_ATTRIBUTES))
    rows[:, 0] = np.arange(30)
    path = tmp_path / "covtype.data"
    np.savetxt(path, rows, delimiter=",", fmt="%d")
    assert load_covertype(path, max_rows=10).row_count == 10


def test_covertype_wrong_width_rejected(tmp_path):
    path = tmp_path / "covtype.data"
    np.savetxt(path, np.ones((5, 10)), delimiter=",", fmt="%d")
    with pytest.raises(ValueError, match="columns"):
        load_covertype(path)


def test_schema_round_trip(tmp_path):
    schema = generate_imdb(title_rows=150, seed=99)
    save_schema(schema, tmp_path / "imdb")
    loaded = load_schema(tmp_path / "imdb")
    assert loaded.table_names == schema.table_names
    assert loaded.foreign_keys == schema.foreign_keys
    loaded.check_referential_integrity()
    for name in schema.table_names:
        assert loaded.table(name).row_count == schema.table(name).row_count


def test_load_schema_requires_manifest(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_schema(tmp_path)
