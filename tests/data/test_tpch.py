"""Tests for the TPC-H-style orders generator."""

import numpy as np
import pytest

from repro.data.tpch import ORDERSTATUS_CODES, generate_orders
from repro.sql.executor import cardinality
from repro.sql.parser import parse_query


@pytest.fixture(scope="module")
def orders():
    return generate_orders(rows=5_000, seed=3)


def test_schema(orders):
    assert orders.name == "orders"
    assert orders.column_names == [
        "o_orderdate", "o_orderstatus", "o_totalprice",
        "o_orderpriority", "o_shippriority",
    ]


def test_dates_are_valid_yyyymmdd(orders):
    dates = orders.column("o_orderdate").values.astype(np.int64)
    years = dates // 10_000
    months = dates // 100 % 100
    days = dates % 100
    assert years.min() >= 1992
    assert years.max() <= 1998
    assert months.min() >= 1 and months.max() <= 12
    assert days.min() >= 1 and days.max() <= 31


def test_status_domain_and_correlation(orders):
    status = orders.column("o_orderstatus").values
    assert set(np.unique(status)) <= set(float(v)
                                         for v in ORDERSTATUS_CODES.values())
    # Open orders are recent; finished ones are old (TPC-H semantics).
    dates = orders.column("o_orderdate").values
    open_dates = dates[status == ORDERSTATUS_CODES["O"]]
    finished_dates = dates[status == ORDERSTATUS_CODES["F"]]
    assert open_dates.mean() > finished_dates.mean()


def test_ship_priority_degenerate_domain(orders):
    """A constant column — the featurizers must tolerate span 0."""
    from repro.featurize import ConjunctiveEncoding
    values = orders.column("o_shippriority").values
    assert (values == 0).all()
    enc = ConjunctiveEncoding(orders, max_partitions=16)
    vector = enc.featurize(None)
    assert np.isfinite(vector).all()


def test_deterministic(orders):
    again = generate_orders(rows=5_000, seed=3)
    np.testing.assert_array_equal(orders.column("o_orderdate").values,
                                  again.column("o_orderdate").values)


def test_rejects_tiny_tables():
    with pytest.raises(ValueError, match="at least 100"):
        generate_orders(rows=5)


def test_paper_example_query_is_nonempty(orders):
    """The Definition 3.3 example query has qualifying rows here."""
    query = parse_query(
        "SELECT count(*) FROM orders WHERE "
        "(o_orderdate >= 19940101 AND o_orderdate <= 19941231 "
        " AND o_orderdate <> 19940704 "
        " OR o_orderdate >= 19960101 AND o_orderdate <= 19961231 "
        " AND o_orderdate <> 19960704) "
        "AND (o_orderstatus = 2 OR o_orderstatus = 0) "
        "AND (o_totalprice > 1000 AND o_totalprice < 2000)"
    )
    assert cardinality(query, orders) > 0
    assert len(query.compound_form()) == 3
