"""Canary rollout: telemetry-gated auto-promote, auto-rollback, and the
zero-downtime hot-swap under live traffic."""

from __future__ import annotations

import threading
import time

import pytest

from repro.fleet import LocalWorker, RolloutError, RolloutGate, RolloutManager
from repro.serve import ServeClient, ServeClientError

from .conftest import make_service


@pytest.fixture()
def rollout_fleet(local_fleet, fleet_registry, fleet_estimator):
    """Factory: ``(supervisor, router, manager, candidates)`` with the
    registry's ``latest`` pinned to v1 (the baseline) and candidate
    workers built at ``candidate_factor`` accuracy."""
    spawned: list[LocalWorker] = []

    def build(workers: int = 2, candidate_factor: float = 1.0,
              min_feedback: int = 8):
        supervisor, router = local_fleet(workers=workers, version="v1")
        fleet_registry.set_latest("m", 1)

        def candidate_factory(worker_id: str, version: int) -> LocalWorker:
            worker = LocalWorker(
                worker_id,
                make_service(fleet_estimator, factor=candidate_factor,
                             version=f"v{version}")).start()
            spawned.append(worker)
            return worker

        manager = RolloutManager(
            fleet_registry, "m", supervisor, candidate_factory,
            gate=RolloutGate(min_feedback=min_feedback,
                             max_qerror_ratio=1.25,
                             max_latency_burn=10.0))
        manager.bind(router)
        return supervisor, router, manager, spawned

    yield build
    for worker in spawned:
        worker.terminate()


def _drive_traffic(router, workload, manager,
                   until: str | None = None) -> None:
    """Estimate + feedback over the workload until the rollout settles."""
    for _ in range(4):  # cap: 4 x 48 feedbacks is ample for any gate here
        for sql, true_cardinality in workload:
            router.estimate(sql)
            router.feedback(sql, true_cardinality)
            if until is not None and manager.state == until:
                return
        if manager.state not in ("warming", "canary"):
            return


class TestGateDecisions:
    def test_healthy_candidate_auto_promotes(self, rollout_fleet,
                                             fleet_registry,
                                             fleet_workload):
        supervisor, router, manager, _ = rollout_fleet(candidate_factor=1.0)
        manager.begin(2)
        assert manager.state == "canary"
        assert supervisor.pool.ids() == ("w0", "w1")  # canary is off-path

        _drive_traffic(router, fleet_workload, manager, until="promoted")

        assert manager.state == "promoted"
        status = manager.status()
        assert status["decision"]["outcome"] == "promote"
        assert [h["state"] for h in status["history"]] \
            == ["warming", "canary", "promoted"]
        # The hot-swap actually happened, everywhere it must:
        assert supervisor.pool.ids() == ("c0", "c1")
        assert fleet_registry.resolve("m").version == 2
        response = router.estimate(fleet_workload[0][0])
        assert response["worker_id"] in ("c0", "c1")
        assert response["model_version"] == "v2"

    def test_degraded_candidate_auto_rolls_back(self, rollout_fleet,
                                                fleet_registry,
                                                fleet_workload):
        supervisor, router, manager, spawned = rollout_fleet(
            candidate_factor=200.0)
        manager.begin(2)

        _drive_traffic(router, fleet_workload, manager, until="rolled_back")

        assert manager.state == "rolled_back"
        decision = manager.status()["decision"]
        assert decision["outcome"] == "rollback"
        assert "q-error" in decision["reason"]
        # Baseline untouched, candidate torn down, latest re-pinned:
        assert supervisor.pool.ids() == ("w0", "w1")
        assert fleet_registry.resolve("m").version == 1
        assert all(not worker.alive() for worker in spawned)
        assert router.estimate(fleet_workload[0][0])["worker_id"] \
            in ("w0", "w1")

    def test_unreachable_candidate_rolls_back_immediately(
            self, rollout_fleet, fleet_registry, fleet_sqls):
        _, router, manager, spawned = rollout_fleet(workers=1)
        manager.begin(2)
        (candidate,) = spawned
        candidate.fail()
        for sql in fleet_sqls:
            router.estimate(sql)
            if manager.state != "canary":
                break
        assert manager.state == "rolled_back"
        assert "unreachable" in manager.status()["decision"]["reason"]
        assert fleet_registry.resolve("m").version == 1

    def test_begin_while_canary_is_rejected(self, rollout_fleet):
        _, _, manager, _ = rollout_fleet()
        manager.begin(2)
        with pytest.raises(RolloutError, match="already canary"):
            manager.begin(2)
        manager.rollback(reason="test cleanup")
        assert manager.state == "rolled_back"

    def test_promote_from_idle_is_rejected(self, rollout_fleet):
        _, _, manager, _ = rollout_fleet()
        with pytest.raises(RolloutError, match="cannot promote"):
            manager.promote()
        with pytest.raises(RolloutError, match="cannot roll back"):
            manager.rollback()

    def test_failed_candidate_spawn_settles_to_rolled_back(
            self, local_fleet, fleet_registry, fleet_sqls):
        supervisor, router = local_fleet(workers=1, version="v1")
        fleet_registry.set_latest("m", 1)

        def broken_factory(worker_id: str, version: int) -> LocalWorker:
            raise RuntimeError("no memory left")

        manager = RolloutManager(fleet_registry, "m", supervisor,
                                 broken_factory)
        manager.bind(router)
        with pytest.raises(RolloutError, match="failed to start"):
            manager.begin(2)
        assert manager.state == "rolled_back"
        assert router.estimate(fleet_sqls[0])["worker_id"] == "w0"


class TestHotSwapUnderLoad:
    """The headline guarantee: a full canary → promote cycle while
    concurrent clients hammer the router, with zero failed requests."""

    def test_zero_dropped_requests_across_promote(self, rollout_fleet,
                                                  fleet_workload,
                                                  fleet_sqls):
        from repro.fleet import RouterServer

        _, router, manager, _ = rollout_fleet(min_feedback=16)
        server = RouterServer(router)
        server.start()
        errors: list[BaseException] = []
        versions_seen: set[str] = set()
        stop = threading.Event()

        def hammer() -> None:
            with ServeClient(server.url) as client:
                while not stop.is_set():
                    for sql in fleet_sqls[:12]:
                        try:
                            response = client.estimate(sql)
                            versions_seen.add(response["model_version"])
                        except BaseException as exc:  # noqa: BLE001 — the test's whole point is that NOTHING lands here
                            errors.append(exc)
                            return

        threads = [threading.Thread(target=hammer, name=f"load-{i}")
                   for i in range(4)]
        try:
            for thread in threads:
                thread.start()
            with ServeClient(server.url) as control:
                document = control.post_json("/fleet/rollout",
                                             {"version": 2})
                assert document["state"] == "canary"
                deadline = time.monotonic() + 60.0
                while manager.state == "canary":
                    for sql, true_cardinality in fleet_workload:
                        control.feedback(sql, true_cardinality)
                        if manager.state != "canary":
                            break
                    assert time.monotonic() < deadline, manager.status()
                # Traffic keeps flowing across and after the swap:
                time.sleep(0.25)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            server.stop()

        assert not errors, f"requests failed during hot-swap: {errors[:3]}"
        assert manager.state == "promoted", manager.status()
        assert versions_seen == {"v1", "v2"}  # both generations served
