"""Shared fixtures for the fleet tests.

Fleets under test are built from :class:`LocalWorker` handles — the
same HTTP surface as subprocess workers, no interpreter boundary — so
routing, failover, and rollout behaviour runs fast and deterministic.
One integration test in ``test_workers.py`` exercises the real
:class:`ProcessWorker` control channel end-to-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators import LearnedEstimator
from repro.featurize import ConjunctiveEncoding
from repro.fleet import FleetRouter, LocalWorker, WorkerSupervisor
from repro.models import GradientBoostingRegressor
from repro.serve import EstimationService, ModelRegistry


class ScaledEstimator:
    """Wraps an estimator, scaling every estimate by a constant factor.

    ``factor=1.0`` is accuracy-neutral (a healthy canary candidate);
    a large factor inflates every q-error by that factor (a degraded
    candidate the rollout gate must reject).
    """

    def __init__(self, base, factor: float = 1.0,
                 name: str = "scaled") -> None:
        self._base = base
        self._factor = factor
        self.name = name

    def estimate(self, query) -> float:
        return float(self._base.estimate(query)) * self._factor

    def estimate_batch(self, queries):
        return np.asarray(self._base.estimate_batch(queries),
                          dtype=float) * self._factor


@pytest.fixture(scope="session")
def fleet_estimator(small_forest, conjunctive_workload):
    """A small fitted GB estimator the fleet tests share."""
    items = list(conjunctive_workload)[:200]
    return LearnedEstimator(
        ConjunctiveEncoding(small_forest, max_partitions=8),
        GradientBoostingRegressor(n_estimators=10),
    ).fit([item.query for item in items],
          np.asarray([item.cardinality for item in items], dtype=float))


@pytest.fixture(scope="session")
def fleet_workload(conjunctive_workload):
    """(sql, true_cardinality) pairs for traffic and feedback."""
    items = list(conjunctive_workload)[:48]
    return [(item.query.to_sql(), max(float(item.cardinality), 1.0))
            for item in items]


@pytest.fixture(scope="session")
def fleet_sqls(fleet_workload):
    """Just the SQL strings of the shared fleet workload."""
    return [sql for sql, _ in fleet_workload]


@pytest.fixture()
def fleet_registry(tmp_path, fleet_estimator):
    """A registry with two published versions of model ``m``."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(fleet_estimator, "m")
    registry.publish(fleet_estimator, "m")
    return registry


def make_service(estimator, factor: float = 1.0,
                 version: str = "base") -> EstimationService:
    """A small estimation service over a (possibly scaled) estimator."""
    wrapped = (estimator if factor == 1.0
               else ScaledEstimator(estimator, factor=factor,
                                    name=f"scaled-{factor:g}"))
    return EstimationService(wrapped, max_batch_size=8, max_wait_ms=1.0,
                             cache_size=0, max_inflight=64,
                             model_version=version, tick_every=0)


@pytest.fixture()
def local_fleet(fleet_estimator):
    """Factory building LocalWorker fleets; everything stops at teardown.

    Returns ``build(workers=2, factor=1.0, version="base", retries=1)``
    → ``(supervisor, router)``.  The supervisor's monitor thread is NOT
    started (tests that need restarts call ``supervisor.start()``).
    """
    created: list[tuple[WorkerSupervisor, FleetRouter]] = []

    def build(workers: int = 2, factor: float = 1.0,
              version: str = "base", retries: int = 1,
              poll_interval: float = 0.05, backoff_base: float = 0.01):
        def factory(worker_id: str) -> LocalWorker:
            return LocalWorker(
                worker_id,
                make_service(fleet_estimator, factor=factor,
                             version=version)).start()

        supervisor = WorkerSupervisor(factory,
                                      poll_interval=poll_interval,
                                      backoff_base=backoff_base,
                                      backoff_max=0.1)
        supervisor.spawn(workers)
        router = FleetRouter(supervisor.pool, supervisor=supervisor,
                             retries=retries)
        created.append((supervisor, router))
        return supervisor, router

    yield build
    for supervisor, router in created:
        router.close()
        supervisor.stop(drain=False)
