"""Router behaviour: affinity, failover, batch fan-out, merged telemetry."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.fleet import FleetRouter, RouterServer, WorkerPool
from repro.fleet.router import merge_prometheus_pages
from repro.obs.prometheus import parse_exposition
from repro.serve import ServeClient, ServeClientError


class TestRouting:
    def test_statement_affinity(self, local_fleet, fleet_sqls):
        _, router = local_fleet(workers=4)
        owners = [router.estimate(fleet_sqls[0])["worker_id"]
                  for _ in range(5)]
        assert len(set(owners)) == 1  # same template → same worker

    def test_templates_spread_across_workers(self, local_fleet, fleet_sqls):
        _, router = local_fleet(workers=2)
        owners = {router.estimate(sql)["worker_id"] for sql in fleet_sqls}
        assert owners == {"w0", "w1"}

    def test_response_carries_worker_and_model_version(
            self, local_fleet, fleet_sqls):
        _, router = local_fleet(workers=2, version="vtest")
        response = router.estimate(fleet_sqls[0])
        assert response["worker_id"] in ("w0", "w1")
        assert response["model_version"] == "vtest"
        assert response["estimate"] > 0

    def test_matches_single_worker_estimates(self, local_fleet, fleet_sqls):
        _, single = local_fleet(workers=1)
        _, sharded = local_fleet(workers=4)
        want = [single.estimate(sql)["estimate"] for sql in fleet_sqls[:8]]
        got = [sharded.estimate(sql)["estimate"] for sql in fleet_sqls[:8]]
        assert got == want


class TestFailover:
    def test_sibling_serves_when_owner_dies(self, local_fleet, fleet_sqls):
        supervisor, router = local_fleet(workers=2, retries=1)
        before = obs.get_registry().counter("fleet.failovers_total").value
        dead = supervisor.pool.get("w0")
        dead.fail()
        responses = [router.estimate(sql) for sql in fleet_sqls]
        assert all(r["worker_id"] == "w1" for r in responses
                   if r["worker_id"] != "w0")
        assert all(r["estimate"] > 0 for r in responses)
        after = obs.get_registry().counter("fleet.failovers_total").value
        assert after > before

    def test_no_workers_is_transport_error(self):
        router = FleetRouter(WorkerPool())
        try:
            with pytest.raises(ServeClientError) as excinfo:
                router.estimate("SELECT count(*) FROM forest WHERE "
                                "Elevation > 1000")
            assert excinfo.value.status == 0
        finally:
            router.close()

    def test_worker_http_errors_propagate_unretried(self, local_fleet):
        _, router = local_fleet(workers=2)
        with pytest.raises(ServeClientError) as excinfo:
            router.estimate("SELECT broken !!!")
        assert excinfo.value.status == 400


class TestBatch:
    def test_batch_splits_merge_in_request_order(self, local_fleet,
                                                 fleet_sqls):
        _, router = local_fleet(workers=4)
        singles = [router.estimate(sql)["estimate"] for sql in fleet_sqls]
        batch = router.estimate_batch(fleet_sqls)
        assert batch["estimates"] == singles
        assert set(batch["workers"]) <= {"w0", "w1", "w2", "w3"}
        assert len(batch["workers"]) >= 2  # genuinely fanned out

    def test_empty_batch(self, local_fleet):
        _, router = local_fleet(workers=2)
        assert router.estimate_batch([]) == {"estimates": [],
                                             "workers": []}


class TestFeedback:
    def test_feedback_routes_to_owner(self, local_fleet, fleet_workload):
        _, router = local_fleet(workers=2)
        sql, true_cardinality = fleet_workload[0]
        owner = router.estimate(sql)["worker_id"]
        response = router.feedback(sql, true_cardinality)
        assert response["worker_id"] == owner
        assert response["qerror"] >= 1.0


class TestTelemetry:
    def test_merged_json_metrics(self, local_fleet, fleet_sqls):
        _, router = local_fleet(workers=2)
        for sql in fleet_sqls[:8]:
            router.estimate(sql)
        snapshot = router.metrics()
        assert snapshot["router"]["fleet.requests_total"]["value"] >= 8
        assert set(snapshot["workers"]) == {"w0", "w1"}
        for worker in snapshot["workers"].values():
            assert "serve.requests_total" in worker

    def test_merged_prometheus_scrape_is_valid(self, local_fleet,
                                               fleet_sqls):
        _, router = local_fleet(workers=2)
        for sql in fleet_sqls[:8]:
            router.estimate(sql)
        page = router.metrics_prometheus()
        parsed = parse_exposition(page)  # strict: raises on a bad page
        sources = set()
        for family in parsed.values():
            for _, labels, _ in family["samples"]:
                assert "worker" in labels
                sources.add(labels["worker"])
        assert {"router", "w0", "w1"} <= sources

    def test_merge_rejects_conflicting_types(self):
        counter = '# TYPE x_total counter\nx_total 1\n'
        gauge = '# TYPE x_total gauge\nx_total 2\n'
        with pytest.raises(ValueError, match="family 'x_total'"):
            merge_prometheus_pages({"a": counter, "b": gauge})

    def test_health_probes_every_worker(self, local_fleet):
        supervisor, router = local_fleet(workers=2)
        supervisor.pool.get("w1").fail()
        rows = {row["worker_id"]: row for row in router.health()}
        assert rows["w0"]["healthy"] is True
        assert rows["w1"]["healthy"] is False


class TestRouterServer:
    @pytest.fixture()
    def served(self, local_fleet):
        _, router = local_fleet(workers=2)
        server = RouterServer(router)
        server.start()
        yield server
        server.stop()

    def test_http_surface(self, served, fleet_sqls, fleet_workload):
        with ServeClient(served.url) as client:
            assert client.healthz() == {"status": "ok", "workers": 2}
            response = client.estimate(fleet_sqls[0])
            assert response["estimate"] > 0
            assert response["worker_id"] in ("w0", "w1")
            detail = client.estimate_batch_detail(fleet_sqls[:6])
            assert len(detail["estimates"]) == 6
            assert detail["workers"]
            sql, true_cardinality = fleet_workload[0]
            assert client.feedback(sql, true_cardinality)["qerror"] >= 1.0
            status = client.get_json("/fleet/status")
            assert status["rollout"] == {"state": "idle"}
            assert {row["worker_id"] for row in status["workers"]} \
                == {"w0", "w1"}
            snapshot = json.loads(client.metrics())
            assert set(snapshot["workers"]) == {"w0", "w1"}
            parse_exposition(client.metrics_prometheus())

    def test_rollout_endpoints_without_manager_are_400(self, served):
        with ServeClient(served.url) as client:
            for path in ("/fleet/rollout", "/fleet/promote",
                         "/fleet/rollback"):
                with pytest.raises(ServeClientError) as excinfo:
                    client.post_json(path, {})
                assert excinfo.value.status == 400

    def test_bad_payload_is_400(self, served):
        with ServeClient(served.url) as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.post_json("/v1/estimate", {"nope": 1})
            assert excinfo.value.status == 400

    def test_unknown_endpoint_is_404(self, served):
        with ServeClient(served.url) as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.get_json("/fleet/bogus")
            assert excinfo.value.status == 404
