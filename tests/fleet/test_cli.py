"""Fleet CLI: parser wiring and the remote-control subcommands."""

from __future__ import annotations

import json
import threading

from repro.cli import main
from repro.fleet import RouterServer
from repro.fleet.cli import build_parser


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["fleet", "serve", "--registry", "/tmp/reg", "--model", "m"])
        assert args.workers == 2
        assert args.version == "latest"
        assert args.port == 8640
        assert args.retries == 1
        assert args.mirror_fraction == 1.0
        assert callable(args.func)

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["fleet", "serve", "--registry", "/tmp/reg", "--model", "m",
             "--workers", "4", "--version", "3", "--min-feedback", "8",
             "--max-qerror-ratio", "2.0"])
        assert args.workers == 4
        assert args.version == "3"
        assert args.min_feedback == 8
        assert args.max_qerror_ratio == 2.0

    def test_control_commands_parse(self):
        parser = build_parser()
        for argv in (["fleet", "status"],
                     ["fleet", "rollout", "--version", "2"],
                     ["fleet", "promote"],
                     ["fleet", "rollback"]):
            args = parser.parse_args(argv)
            assert args.url == "http://127.0.0.1:8640"
            assert callable(args.func)


class TestControlCommands:
    def test_status_against_live_router(self, local_fleet, capsys):
        _, router = local_fleet(workers=2)
        server = RouterServer(router)
        server.start()
        try:
            assert main(["fleet", "status", "--url", server.url]) == 0
        finally:
            server.stop()
        document = json.loads(capsys.readouterr().out)
        assert document["rollout"] == {"state": "idle"}
        assert {row["worker_id"] for row in document["workers"]} \
            == {"w0", "w1"}

    def test_rollout_without_manager_fails_cleanly(self, local_fleet,
                                                   capsys):
        _, router = local_fleet(workers=2)
        server = RouterServer(router)
        server.start()
        try:
            assert main(["fleet", "promote", "--url", server.url]) == 1
        finally:
            server.stop()
        assert "error" in capsys.readouterr().err.lower()

    def test_unreachable_router_fails_cleanly(self, capsys):
        code = main(["fleet", "status",
                     "--url", "http://127.0.0.1:9", "--timeout", "0.5"])
        assert code == 1
        assert "error" in capsys.readouterr().err.lower()


class TestServeCommand:
    def test_serve_boots_serves_and_drains(self, fleet_registry,
                                           fleet_sqls):
        import time

        shutdown = threading.Event()
        args = build_parser().parse_args(
            ["fleet", "serve",
             "--registry", str(fleet_registry.root), "--model", "m",
             "--workers", "2", "--port", "0"])
        args.shutdown_event = shutdown
        url_box: dict[str, str] = {}
        args.on_ready = lambda url: url_box.setdefault("url", url)

        ran = threading.Thread(target=lambda: args.func(args))
        ran.start()
        try:
            deadline = time.monotonic() + 180.0
            while "url" not in url_box and ran.is_alive():
                assert time.monotonic() < deadline, \
                    "fleet serve never became ready"
                ran.join(timeout=0.1)
            assert "url" in url_box, "fleet serve thread died during boot"
            from repro.serve import ServeClient
            with ServeClient(url_box["url"]) as client:
                assert client.healthz() == {"status": "ok", "workers": 2}
                response = client.estimate(fleet_sqls[0])
                assert response["estimate"] > 0
                status = client.get_json("/fleet/status")
                assert {row["worker_id"] for row in status["workers"]} \
                    == {"w0", "w1"}
        finally:
            shutdown.set()
            ran.join(timeout=120.0)
        assert not ran.is_alive()
