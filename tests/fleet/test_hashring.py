"""Consistent-hash ring properties: uniformity, remap drift, preference."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.fleet import HashRing

KEYS = [f"template:{index}" for index in range(10_000)]


def _placement(ring: HashRing) -> dict[str, str]:
    return {key: ring.lookup(key) for key in KEYS}


class TestDistribution:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_near_uniform_distribution(self, workers):
        ring = HashRing(f"w{i}" for i in range(workers))
        counts = Counter(ring.lookup(key) for key in KEYS)
        assert len(counts) == workers  # every worker owns something
        expected = len(KEYS) / workers
        for node, count in counts.items():
            assert 0.5 * expected <= count <= 1.6 * expected, (
                f"{node} owns {count} of {len(KEYS)} keys "
                f"(expected ~{expected:.0f})")

    def test_lookup_is_deterministic(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # insertion order is irrelevant
        assert _placement(a) == _placement(b)


class TestRemapDrift:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_join_moves_less_than_one_over_n(self, workers):
        ring = HashRing(f"w{i}" for i in range(workers))
        before = _placement(ring)
        ring.add("w-new")
        after = _placement(ring)
        moved = sum(before[key] != after[key] for key in KEYS)
        assert moved / len(KEYS) < 1.0 / workers
        # Every moved key moved TO the new node — consistent hashing
        # never shuffles keys between surviving nodes on a join.
        for key in KEYS:
            if before[key] != after[key]:
                assert after[key] == "w-new"

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_leave_moves_only_the_dead_nodes_keys(self, workers):
        ring = HashRing([f"w{i}" for i in range(workers + 1)])
        before = _placement(ring)
        ring.remove("w0")
        after = _placement(ring)
        moved = sum(before[key] != after[key] for key in KEYS)
        assert moved / len(KEYS) < 1.0 / workers
        for key in KEYS:
            if before[key] == "w0":
                assert after[key] != "w0"
            else:
                assert after[key] == before[key]


class TestPreference:
    def test_preference_is_distinct_and_starts_with_owner(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for key in KEYS[:200]:
            order = ring.preference(key, 3)
            assert order[0] == ring.lookup(key)
            assert len(order) == len(set(order)) == 3

    def test_preference_caps_at_membership(self):
        ring = HashRing(["w0", "w1"])
        assert len(ring.preference("k", 5)) == 2

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(KeyError):
            HashRing().lookup("k")
