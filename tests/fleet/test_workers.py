"""Worker pool semantics, supervisor crash-restarts, and the real
subprocess worker's JSON control channel."""

from __future__ import annotations

import time

import pytest

from repro.fleet import (
    LocalWorker,
    ProcessWorker,
    WorkerError,
    WorkerPool,
    WorkerSupervisor,
)
from repro.serve import ServeClient

from .conftest import make_service


def _wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestWorkerPool:
    def test_add_get_remove(self, fleet_estimator):
        pool = WorkerPool()
        worker = LocalWorker("w0", make_service(fleet_estimator)).start()
        try:
            pool.add(worker)
            assert pool.ids() == ("w0",)
            assert pool.get("w0") is worker
            assert len(pool) == 1
            assert pool.remove("w0") is worker
            assert pool.get("w0") is None
        finally:
            worker.terminate()

    def test_rebind_same_id_keeps_ring_shape(self, fleet_estimator):
        pool = WorkerPool()
        first = LocalWorker("w0", make_service(fleet_estimator)).start()
        second = LocalWorker("w0", make_service(fleet_estimator)).start()
        try:
            pool.add(first)
            placement = [pool.preference(f"k{i}", 1)[0].worker_id
                         for i in range(16)]
            pool.add(second)  # re-bind: same id, fresh handle
            assert pool.get("w0") is second
            assert [pool.preference(f"k{i}", 1)[0].worker_id
                    for i in range(16)] == placement
        finally:
            first.terminate()
            second.terminate()

    def test_swap_replaces_membership_and_returns_displaced(
            self, fleet_estimator):
        pool = WorkerPool()
        old = [LocalWorker(f"w{i}", make_service(fleet_estimator)).start()
               for i in range(2)]
        new = [LocalWorker(f"c{i}", make_service(fleet_estimator)).start()
               for i in range(2)]
        try:
            for handle in old:
                pool.add(handle)
            displaced = pool.swap(new)
            assert [h.worker_id for h in displaced] == ["w0", "w1"]
            assert pool.ids() == ("c0", "c1")
            owner = pool.preference("some-key", 1)[0]
            assert owner.worker_id in ("c0", "c1")
        finally:
            for handle in old + new:
                handle.terminate()


class TestLocalWorker:
    def test_lifecycle_and_http_surface(self, fleet_estimator, fleet_sqls):
        worker = LocalWorker("w0", make_service(fleet_estimator)).start()
        assert worker.alive()
        assert worker.describe()["kind"] == "LocalWorker"
        response = worker.client.estimate(fleet_sqls[0])
        assert response["estimate"] > 0
        worker.warm(fleet_sqls[:4])
        worker.drain()
        assert not worker.alive()

    def test_client_before_start_raises(self, fleet_estimator):
        worker = LocalWorker("w0", make_service(fleet_estimator))
        with pytest.raises(WorkerError, match="no URL"):
            worker.client


class TestSupervisor:
    def test_restarts_failed_worker_under_same_id(self, fleet_estimator):
        def factory(worker_id: str) -> LocalWorker:
            return LocalWorker(worker_id,
                               make_service(fleet_estimator)).start()

        supervisor = WorkerSupervisor(factory, poll_interval=0.02,
                                      backoff_base=0.01, backoff_max=0.05)
        try:
            (original,) = supervisor.spawn(1)
            supervisor.start()
            original.fail()
            assert _wait_until(
                lambda: (supervisor.pool.get("w0") is not None
                         and supervisor.pool.get("w0") is not original
                         and supervisor.pool.get("w0").alive()))
            assert supervisor.restarts().get("w0", 0) >= 1
            replacement = supervisor.pool.get("w0")
            assert replacement.client.healthz() == {"status": "ok"}
        finally:
            supervisor.stop(drain=False)

    def test_forget_stops_supervision_without_touching_pool(
            self, fleet_estimator):
        def factory(worker_id: str) -> LocalWorker:
            return LocalWorker(worker_id,
                               make_service(fleet_estimator)).start()

        supervisor = WorkerSupervisor(factory, poll_interval=0.02,
                                      backoff_base=0.01, backoff_max=0.05)
        try:
            (worker,) = supervisor.spawn(1)
            supervisor.forget("w0")
            supervisor.start()
            worker.fail()
            time.sleep(0.2)  # several poll sweeps
            assert supervisor.pool.get("w0") is worker  # not replaced
            assert supervisor.restarts() == {}
        finally:
            supervisor.stop(drain=False)

    def test_context_manager_drains_fleet(self, fleet_estimator):
        def factory(worker_id: str) -> LocalWorker:
            return LocalWorker(worker_id,
                               make_service(fleet_estimator)).start()

        with WorkerSupervisor(factory, poll_interval=0.02) as supervisor:
            handles = supervisor.spawn(2)
            assert all(handle.alive() for handle in handles)
        assert all(not handle.alive() for handle in handles)
        assert len(supervisor.pool) == 0


class TestProcessWorker:
    """End-to-end: a real subprocess worker over the control channel."""

    def test_spawn_serve_warm_drain(self, tmp_path, fleet_estimator,
                                    fleet_sqls):
        from repro.serve import ModelRegistry

        registry = ModelRegistry(tmp_path / "registry")
        published = registry.publish(fleet_estimator, "proc")
        worker = ProcessWorker("p0", registry.root, "proc",
                               start_timeout=120.0).start()
        try:
            assert worker.alive()
            assert worker.pid is not None
            assert worker.model_version == published.label()
            with ServeClient(worker.url) as client:
                response = client.estimate(fleet_sqls[0])
                assert response["estimate"] > 0
            worker.warm(fleet_sqls[:2])
        finally:
            worker.drain()
        assert not worker.alive()
