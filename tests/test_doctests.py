"""Run the executable examples embedded in docstrings."""

import doctest

import pytest

import repro.metrics

MODULES_WITH_DOCTESTS = [repro.metrics]


@pytest.mark.parametrize("module", MODULES_WITH_DOCTESTS,
                         ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
