"""The pipeline actually emits the spans/metrics the docs promise.

These tests drive real featurizers, models, and estimators under an
enabled tracer and check the span tree and metric names — the wiring
that ``repro obs report`` and the CI trace artifact depend on.
"""

import numpy as np
import pytest

from repro import obs
from repro.estimators import LearnedEstimator
from repro.experiments.common import evaluate_estimator
from repro.featurize import ConjunctiveEncoding
from repro.models import GradientBoostingRegressor, NeuralNetRegressor


@pytest.fixture
def traced():
    tracer = obs.set_tracer(obs.Tracer(enabled=True))
    return tracer


def span_index(tracer):
    return {s.span_id: s for s in tracer.finished()}


class TestFeaturizeInstrumentation:
    def test_batch_emits_compile_and_encode_children(self, traced,
                                                     small_forest,
                                                     conjunctive_workload):
        featurizer = ConjunctiveEncoding(small_forest, max_partitions=8)
        featurizer.featurize_batch(conjunctive_workload.queries[:100])
        spans = {s.name: s for s in traced.finished()}
        assert set(spans) == {"featurize.batch", "featurize.compile",
                              "featurize.encode"}
        batch = spans["featurize.batch"]
        assert spans["featurize.compile"].parent_id == batch.span_id
        assert spans["featurize.encode"].parent_id == batch.span_id
        assert batch.attributes["n_queries"] == 100
        assert batch.attributes["featurizer"] == "ConjunctiveEncoding"

    def test_stage_spans_cover_the_batch_span(self, traced, small_forest,
                                              conjunctive_workload):
        # The acceptance criterion behind `repro obs report`: the stage
        # breakdown accounts for (nearly) all of the parent's time.
        featurizer = ConjunctiveEncoding(small_forest, max_partitions=8)
        featurizer.featurize_batch(conjunctive_workload.queries)
        spans = {s.name: s for s in traced.finished()}
        children = (spans["featurize.compile"].duration_ns
                    + spans["featurize.encode"].duration_ns)
        parent = spans["featurize.batch"].duration_ns
        assert children <= parent
        assert children >= 0.8 * parent

    def test_batch_records_metrics(self, traced, small_forest,
                                   conjunctive_workload):
        featurizer = ConjunctiveEncoding(small_forest, max_partitions=8)
        featurizer.featurize_batch(conjunctive_workload.queries[:50])
        registry = obs.get_registry()
        assert registry.counter("featurize.queries_total").value == 50
        assert registry.histogram("featurize.batch_size").count == 1

    def test_scalar_counts_but_does_not_span(self, traced, small_forest,
                                             conjunctive_workload):
        featurizer = ConjunctiveEncoding(small_forest, max_partitions=8)
        for query in conjunctive_workload.queries[:10]:
            featurizer.featurize(query)
        assert traced.finished() == ()
        assert obs.get_registry().counter(
            "featurize.queries_total").value == 10

    def test_disabled_tracer_records_nothing_but_counts(self, small_forest,
                                                        conjunctive_workload):
        featurizer = ConjunctiveEncoding(small_forest, max_partitions=8)
        featurizer.featurize_batch(conjunctive_workload.queries[:20])
        assert obs.get_tracer().finished() == ()
        assert obs.get_registry().counter(
            "featurize.queries_total").value == 20


class TestModelInstrumentation:
    def test_gb_fit_predict_spans(self, traced):
        rng = np.random.default_rng(0)
        X, y = rng.random((120, 5)), rng.random(120)
        model = GradientBoostingRegressor(n_estimators=5,
                                          early_stopping_rounds=None)
        model.fit(X, y)
        model.predict(X[:10])
        spans = span_index(traced)
        names = [s.name for s in spans.values()]
        assert names.count("model.fit") == 1
        assert names.count("model.predict") == 1
        by_name = {s.name: s for s in spans.values()}
        fit = by_name["model.fit"]
        assert fit.attributes["model"] == "GradientBoostingRegressor"
        assert by_name["model.gb.bin"].parent_id == fit.span_id
        boost = by_name["model.gb.boost"]
        assert boost.parent_id == fit.span_id
        assert boost.attributes["trees_grown"] == 5

    def test_nn_epoch_spans_and_metric(self, traced):
        rng = np.random.default_rng(1)
        X, y = rng.random((40, 3)), rng.random(40)
        NeuralNetRegressor(epochs=3, early_stopping_rounds=None,
                           hidden_sizes=(8,)).fit(X, y)
        epochs = [s for s in traced.finished()
                  if s.name == "model.train.epoch"]
        assert len(epochs) == 3
        assert [s.attributes["epoch"] for s in epochs] == [0, 1, 2]
        fit = next(s for s in traced.finished() if s.name == "model.fit")
        assert all(s.parent_id == fit.span_id for s in epochs)
        assert obs.get_registry().histogram(
            "model.train.epoch_seconds").count == 3


class TestEstimatorInstrumentation:
    @pytest.fixture
    def estimator(self, small_forest, conjunctive_workload):
        est = LearnedEstimator(
            ConjunctiveEncoding(small_forest, max_partitions=8),
            GradientBoostingRegressor(n_estimators=5),
        )
        return est.fit(conjunctive_workload.queries[:150],
                       conjunctive_workload.cardinalities[:150])

    def test_fit_and_estimate_span_tree(self, traced, estimator,
                                        conjunctive_workload):
        estimator.estimate_batch(conjunctive_workload.queries[:30])
        spans = span_index(traced)
        by_name: dict = {}
        for span in spans.values():
            by_name.setdefault(span.name, []).append(span)
        assert len(by_name["estimator.fit"]) == 1
        assert len(by_name["estimator.estimate"]) == 1
        estimate = by_name["estimator.estimate"][0]
        assert estimate.attributes["n_queries"] == 30
        # featurize.batch nests under both fit and estimate.
        batch_parents = {s.parent_id for s in by_name["featurize.batch"]}
        assert by_name["estimator.fit"][0].span_id in batch_parents
        assert estimate.span_id in batch_parents
        # model.fit nests under estimator.fit.
        assert (by_name["model.fit"][0].parent_id
                == by_name["estimator.fit"][0].span_id)

    def test_evaluate_records_qerror_histogram(self, traced, estimator,
                                               conjunctive_workload):
        summary = evaluate_estimator(estimator, conjunctive_workload)
        histogram = obs.get_registry().histogram("estimator.qerror")
        assert histogram.count == len(conjunctive_workload)
        assert histogram.sum == pytest.approx(
            summary.mean * summary.count)
        names = {s.name for s in traced.finished()}
        assert "experiment.evaluate" in names
