"""Byte-stability of windowed snapshots under concurrent writers.

The windowed monitors promise that a snapshot is a pure function of the
observation multiset per tick — not of thread scheduling.  These tests
drive N threads × M ticks against one monitor, with a barrier at every
tick boundary so each tick's multiset is fixed, and assert the JSON
snapshot is byte-identical no matter how many threads wrote or in what
interleaving.
"""

from __future__ import annotations

import json
import threading

from repro.obs.window import SloTracker, WindowedHistogram, WindowRegistry

N_TICKS = 5
PER_TICK = 240  # observations per tick, divisible by every thread count


def tick_values(tick: int) -> list[float]:
    """The fixed observation multiset of one tick (deterministic)."""
    return [((tick * PER_TICK + i) % 97) / 13.0 for i in range(PER_TICK)]


def run_histogram(n_threads: int) -> str:
    window = WindowedHistogram("w.conc", label_names=("lane",),
                               window_ticks=3)
    barrier = threading.Barrier(n_threads + 1)

    def worker(worker_index: int) -> None:
        for tick in range(N_TICKS):
            values = tick_values(tick)
            share = values[worker_index::n_threads]
            for value in share:
                window.observe(value, lane=str(int(value * 13) % 3))
            barrier.wait()  # everyone finished this tick's share
            barrier.wait()  # main thread advanced; next tick may start

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for _ in range(N_TICKS):
        barrier.wait()
        window.advance()
        barrier.wait()
    for thread in threads:
        thread.join()
    return json.dumps(window.snapshot(), sort_keys=True)


def run_slo(n_threads: int) -> str:
    slo = SloTracker("s.conc", target=3.0, objective=0.9,
                     short_ticks=2, long_ticks=4)
    barrier = threading.Barrier(n_threads + 1)

    def worker(worker_index: int) -> None:
        for tick in range(N_TICKS):
            for value in tick_values(tick)[worker_index::n_threads]:
                slo.observe(value)
            barrier.wait()
            barrier.wait()

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for _ in range(N_TICKS):
        barrier.wait()
        slo.advance()
        barrier.wait()
    for thread in threads:
        thread.join()
    return json.dumps(slo.snapshot(), sort_keys=True)


class TestConcurrentByteStability:
    def test_histogram_snapshot_independent_of_writer_count(self):
        single = run_histogram(1)
        assert run_histogram(4) == single
        assert run_histogram(8) == single

    def test_histogram_snapshot_repeatable_at_same_writer_count(self):
        assert run_histogram(6) == run_histogram(6)

    def test_slo_snapshot_independent_of_writer_count(self):
        single = run_slo(1)
        assert run_slo(4) == single
        assert run_slo(8) == single

    def test_registry_advance_all_under_writers(self):
        """advance_all from the main thread while workers observe a
        fixed per-tick multiset: final to_json is writer-count
        independent."""

        def run(n_threads: int) -> str:
            windows = WindowRegistry()
            histogram = windows.histogram("w.reg", window_ticks=3)
            slo = windows.slo("s.reg", target=3.0, objective=0.9)
            barrier = threading.Barrier(n_threads + 1)

            def worker(worker_index: int) -> None:
                for tick in range(N_TICKS):
                    for value in tick_values(tick)[worker_index::n_threads]:
                        histogram.observe(value)
                        slo.observe(value)
                    barrier.wait()
                    barrier.wait()

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n_threads)]
            for thread in threads:
                thread.start()
            for _ in range(N_TICKS):
                barrier.wait()
                windows.advance_all()
                barrier.wait()
            for thread in threads:
                thread.join()
            return windows.to_json()

        assert run(1) == run(5)
