"""Windowed monitors: sliding histograms, SLO burn rates, registry."""

from __future__ import annotations

import json

import pytest

from repro.obs.window import SloTracker, WindowedHistogram, WindowRegistry


class TestWindowedHistogram:
    def test_quantiles_track_the_window(self):
        window = WindowedHistogram("w.test", window_ticks=4)
        for value in (0.01, 0.02, 0.03, 10.0):
            window.observe(value)
        assert window.window_count() == 4
        # p50 is the upper edge of the bucket holding rank 2 (a quarter-
        # decade above 0.02/0.03); p99 clamps to the observed max.
        assert 0.02 <= window.quantile(0.5) <= 0.1
        assert window.quantile(0.99) == 10.0

    def test_quantile_is_none_when_empty(self):
        window = WindowedHistogram("w.test")
        assert window.quantile(0.95) is None
        assert window.window_count() == 0

    def test_old_ticks_fall_out_of_the_window(self):
        window = WindowedHistogram("w.test", window_ticks=2)
        window.observe(100.0)
        assert window.quantile(0.99) == 100.0
        window.advance()          # 100.0 now in the older surviving slot
        window.observe(0.01)
        assert window.quantile(0.99) == 100.0
        window.advance()          # 100.0's slot rolls off
        assert window.quantile(0.99) <= 0.01 or window.quantile(0.99) is None
        window.advance()
        assert window.quantile(0.99) is None

    def test_current_tick_counts_toward_the_window(self):
        window = WindowedHistogram("w.test", window_ticks=8)
        window.observe(1.0)
        assert window.window_count() == 1  # no advance needed

    def test_labels_partition_series(self):
        window = WindowedHistogram("w.test", label_names=("model", "cache"))
        window.observe(0.1, model="a", cache="hit")
        window.observe(9.0, model="b", cache="miss")
        assert window.window_count(model="a", cache="hit") == 1
        assert window.quantile(0.99, model="b", cache="miss") == 9.0
        assert window.window_count(model="a", cache="miss") == 0

    def test_wrong_labels_raise(self):
        window = WindowedHistogram("w.test", label_names=("model",))
        with pytest.raises(ValueError, match="takes labels"):
            window.observe(1.0)
        with pytest.raises(ValueError, match="takes labels"):
            window.observe(1.0, model="a", extra="b")

    def test_poisoned_observations_raise(self):
        window = WindowedHistogram("w.test")
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ValueError, match="finite and non-negative"):
                window.observe(bad)

    def test_quantile_range_validated(self):
        window = WindowedHistogram("w.test")
        with pytest.raises(ValueError, match="quantile"):
            window.quantile(0.0)
        with pytest.raises(ValueError, match="quantile"):
            window.quantile(1.5)

    def test_snapshot_is_deterministic_and_sorted(self):
        def build():
            window = WindowedHistogram("w.test", label_names=("m",),
                                       window_ticks=4)
            window.observe(0.5, m="b")
            window.observe(0.25, m="a")
            window.advance()
            window.observe(1.5, m="a")
            return window.snapshot()

        first, second = build(), build()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True)
        assert list(first["series"]) == ["m=a", "m=b"]
        assert first["tick"] == 1
        assert first["series"]["m=a"]["count"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window_ticks"):
            WindowedHistogram("w", window_ticks=0)
        with pytest.raises(ValueError, match="increasing edges"):
            WindowedHistogram("w", edges=(2.0, 1.0))


class TestSloTracker:
    def test_observe_classifies_against_target(self):
        slo = SloTracker("s.test", target=0.5)
        assert slo.observe(0.4) is True
        assert slo.observe(0.5) is True
        assert slo.observe(0.6) is False

    def test_burn_rate_is_bad_fraction_over_budget(self):
        slo = SloTracker("s.test", target=1.0, objective=0.99)
        for _ in range(99):
            slo.observe(0.5)
        slo.observe(2.0)
        # 1% bad at a 1% budget: burning exactly at sustainable pace.
        assert slo.burn_rate("short") == pytest.approx(1.0)
        assert slo.burn_rate("long") == pytest.approx(1.0)

    def test_short_window_recovers_faster_than_long(self):
        slo = SloTracker("s.test", target=1.0, objective=0.9,
                         short_ticks=1, long_ticks=8)
        slo.observe(5.0)          # one bad observation this tick
        slo.advance()
        for _ in range(9):
            slo.observe(0.1)
        # The bad tick left the short window but still burdens the long.
        assert slo.burn_rate("short") == 0.0
        assert slo.burn_rate("long") > 0.0

    def test_empty_windows_burn_nothing(self):
        slo = SloTracker("s.test", target=1.0)
        assert slo.burn_rate("short") == 0.0
        assert slo.burn_rate("long") == 0.0
        with pytest.raises(ValueError, match="short.*long"):
            slo.burn_rate("weekly")

    def test_snapshot_shape(self):
        slo = SloTracker("s.test", target=1.0, objective=0.5)
        slo.observe(0.1)
        slo.observe(9.0)
        snap = slo.snapshot()
        assert snap["kind"] == "slo"
        assert snap["good_total"] == 1
        assert snap["bad_total"] == 1
        assert snap["windows"]["short"]["burn_rate"] == pytest.approx(1.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="positive finite target"):
            SloTracker("s", target=0.0)
        with pytest.raises(ValueError, match="objective"):
            SloTracker("s", target=1.0, objective=1.0)
        with pytest.raises(ValueError, match="short_ticks"):
            SloTracker("s", target=1.0, short_ticks=5, long_ticks=2)


class TestWindowRegistry:
    def test_get_or_create_returns_same_monitor(self):
        windows = WindowRegistry()
        assert windows.histogram("w.a") is windows.histogram("w.a")
        assert windows.slo("s.a", target=1.0) is windows.slo("s.a")

    def test_kind_and_config_conflicts_raise(self):
        windows = WindowRegistry()
        windows.histogram("w.a", label_names=("m",))
        with pytest.raises(ValueError, match="labels"):
            windows.histogram("w.a", label_names=("m", "c"))
        with pytest.raises(ValueError, match="not an SloTracker"):
            windows.slo("w.a", target=1.0)
        windows.slo("s.a", target=1.0)
        with pytest.raises(ValueError, match="already exists with target"):
            windows.slo("s.a", target=2.0)
        with pytest.raises(ValueError, match="not a WindowedHistogram"):
            windows.histogram("s.a")
        with pytest.raises(ValueError, match="pass a target"):
            windows.slo("s.new")

    def test_advance_all_moves_every_monitor_in_lockstep(self):
        windows = WindowRegistry()
        histogram = windows.histogram("w.a", window_ticks=2)
        slo = windows.slo("s.a", target=1.0, short_ticks=1, long_ticks=2)
        histogram.observe(5.0)
        slo.observe(5.0)
        assert windows.advance_all() == 1
        assert windows.advance_all() == 2
        assert histogram.tick == 2
        assert histogram.quantile(0.99) is None  # rolled off
        assert slo.burn_rate("long") == 0.0

    def test_snapshot_and_json_are_deterministic(self, tmp_path):
        def build():
            windows = WindowRegistry()
            windows.histogram("w.b").observe(0.5)
            windows.histogram("w.a").observe(1.5)
            windows.slo("s.a", target=1.0).observe(2.0)
            return windows

        first, second = build(), build()
        assert first.to_json() == second.to_json()
        assert list(first.snapshot()) == ["s.a", "w.a", "w.b"]
        out = tmp_path / "windows.json"
        first.write_json(out)
        assert out.read_text(encoding="utf-8") == first.to_json() + "\n"

    def test_reset_drops_everything(self):
        windows = WindowRegistry()
        windows.histogram("w.a").observe(1.0)
        windows.advance_all()
        windows.reset()
        assert windows.names() == ()
        assert windows.tick == 0
