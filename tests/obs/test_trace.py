"""Tests for the span tracer: nesting, errors, no-op path, decorator."""

import threading

import pytest

from repro import obs
from repro.obs.trace import _NOOP_SPAN


class FakeClock:
    """Deterministic monotonic clock advancing a fixed step per read."""

    def __init__(self, step_ns: int = 1_000) -> None:
        self.now = 0
        self.step_ns = step_ns

    def __call__(self) -> int:
        self.now += self.step_ns
        return self.now


class TestSpanNesting:
    def test_parent_linkage(self):
        tracer = obs.Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_spans_share_parent(self):
        tracer = obs.Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_finished_in_close_order(self):
        tracer = obs.Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished()] == ["outer", "inner"][::-1]

    def test_child_duration_within_parent(self):
        clock = FakeClock()
        tracer = obs.Tracer(enabled=True, clock_ns=clock)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert 0 < inner.duration_ns < outer.duration_ns

    def test_spans_are_per_thread(self):
        tracer = obs.Tracer(enabled=True)
        results = {}

        def worker():
            with tracer.span("worker") as sp:
                results["span"] = sp

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span opened on another thread: no parent there.
        assert results["span"].parent_id is None
        assert results["span"].thread_id != threading.get_ident()


class TestErrorExit:
    def test_exception_marks_error_and_reraises(self):
        tracer = obs.Tracer(enabled=True)
        with pytest.raises(KeyError):
            with tracer.span("failing") as sp:
                raise KeyError("boom")
        assert sp.status == "error"
        assert sp.error == "KeyError"
        assert sp.duration_ns > 0
        assert [s.name for s in tracer.finished()] == ["failing"]

    def test_error_in_child_keeps_parent_ok_if_handled(self):
        tracer = obs.Tracer(enabled=True)
        with tracer.span("parent") as parent:
            try:
                with tracer.span("child"):
                    raise ValueError()
            except ValueError:
                pass
        assert parent.status == "ok"
        statuses = {s.name: s.status for s in tracer.finished()}
        assert statuses == {"parent": "ok", "child": "error"}

    def test_error_span_skips_metric_recording(self):
        tracer = obs.Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("stage", metric="stage.seconds"):
                raise RuntimeError()
        assert "stage.seconds" not in obs.get_registry().names()


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        tracer = obs.Tracer(enabled=False)
        assert tracer.span("anything") is _NOOP_SPAN
        assert tracer.span("other", n=1) is _NOOP_SPAN

    def test_noop_enter_yields_none(self):
        tracer = obs.Tracer(enabled=False)
        with tracer.span("x") as sp:
            assert sp is None
        assert tracer.finished() == ()

    def test_module_span_follows_active_tracer(self):
        with obs.span("off") as sp:
            assert sp is None  # conftest installs a disabled tracer
        with obs.use_tracer(obs.Tracer(enabled=True)) as tracer:
            with obs.span("on") as sp:
                assert sp is not None
        assert [s.name for s in tracer.finished()] == ["on"]


class TestAttributesAndMetric:
    def test_attributes_captured_and_extended(self):
        tracer = obs.Tracer(enabled=True)
        with tracer.span("stage", qft="conjunctive") as sp:
            sp.set_attribute("n_queries", 42)
        record = sp.as_dict()
        assert record["attributes"] == {"qft": "conjunctive",
                                        "n_queries": 42}

    def test_metric_records_duration_histogram(self):
        tracer = obs.Tracer(enabled=True)
        with tracer.span("stage", metric="stage.seconds"):
            pass
        histogram = obs.get_registry().histogram("stage.seconds")
        assert histogram.count == 1
        assert histogram.sum >= 0.0


class TestDecorator:
    def test_bare_decorator_uses_qualname(self):
        @obs.trace
        def work():
            return 7

        with obs.use_tracer(obs.Tracer(enabled=True)) as tracer:
            assert work() == 7
        names = [s.name for s in tracer.finished()]
        assert len(names) == 1 and names[0].endswith("work")

    def test_named_decorator_with_attributes(self):
        @obs.trace("model.fit", model="TestModel")
        def fit():
            return "done"

        with obs.use_tracer(obs.Tracer(enabled=True)) as tracer:
            assert fit() == "done"
        (span,) = tracer.finished()
        assert span.name == "model.fit"
        assert span.attributes == {"model": "TestModel"}

    def test_decorator_binds_tracer_at_call_time(self):
        @obs.trace("late")
        def work():
            pass

        work()  # disabled: nothing recorded anywhere
        with obs.use_tracer(obs.Tracer(enabled=True)) as tracer:
            work()
        assert [s.name for s in tracer.finished()] == ["late"]


class TestEnsureTracing:
    def test_reuses_enabled_active_tracer(self):
        active = obs.set_tracer(obs.Tracer(enabled=True))
        with obs.ensure_tracing() as tracer:
            assert tracer is active

    def test_installs_temporary_tracer_when_disabled(self):
        disabled = obs.get_tracer()
        assert not disabled.enabled
        with obs.ensure_tracing() as tracer:
            assert tracer is not disabled
            assert tracer.enabled
            with obs.span("measured") as sp:
                pass
            assert sp is not None
        assert obs.get_tracer() is disabled
        assert disabled.finished() == ()
