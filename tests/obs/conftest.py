"""Obs-test hygiene: isolate all process-global obs state per test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Run each test against fresh tracer/registry/windows/events state.

    The trace-id counter is also restored, so tests that mint ids stay
    deterministic regardless of execution order.
    """
    previous_tracer = obs.get_tracer()
    previous_registry = obs.get_registry()
    previous_windows = obs.get_windows()
    previous_events = obs.get_event_log()
    obs.set_tracer(obs.Tracer(enabled=False))
    obs.set_registry(obs.MetricsRegistry())
    obs.set_windows(obs.WindowRegistry())
    obs.set_event_log(obs.EventLog())
    obs.reset_trace_ids()
    yield
    obs.set_tracer(previous_tracer)
    obs.set_registry(previous_registry)
    obs.set_windows(previous_windows)
    obs.set_event_log(previous_events)
    obs.reset_trace_ids()
