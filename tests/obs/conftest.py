"""Obs-test hygiene: isolate tracer and metrics state per test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Run each test against a fresh tracer and metrics registry."""
    previous_tracer = obs.get_tracer()
    previous_registry = obs.get_registry()
    obs.set_tracer(obs.Tracer(enabled=False))
    obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_tracer(previous_tracer)
    obs.set_registry(previous_registry)
