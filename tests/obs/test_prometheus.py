"""Prometheus text exposition: rendering, strict parsing, round trips."""

from __future__ import annotations

import pytest

from repro.obs.metrics_runtime import MetricsRegistry
from repro.obs.prometheus import (
    CONTENT_TYPE,
    escape_label_value,
    parse_exposition,
    prometheus_name,
    render_prometheus,
)
from repro.obs.window import WindowRegistry


class TestNames:
    def test_dotted_names_flatten(self):
        assert prometheus_name("serve.requests_total") == (
            "serve_requests_total")
        assert prometheus_name("a.b.c") == "a_b_c"

    def test_invalid_names_raise(self):
        with pytest.raises(ValueError, match="Prometheus"):
            prometheus_name("serve.9bad-name")

    def test_label_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_content_type_pins_the_format_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestRender:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests_total").inc(3)
        registry.gauge("serve.inflight").set(2)
        text = render_prometheus(registry, WindowRegistry())
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 3" in text
        assert "# TYPE serve_inflight gauge" in text
        assert "serve_inflight 2" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h.lat", edges=(0.1, 1.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            histogram.record(value)
        text = render_prometheus(registry, WindowRegistry())
        assert 'h_lat_bucket{le="0.1"} 2' in text
        assert 'h_lat_bucket{le="1.0"} 3' in text
        assert 'h_lat_bucket{le="+Inf"} 4' in text
        assert "h_lat_count 4" in text

    def test_windowed_histogram_renders_as_summary(self):
        windows = WindowRegistry()
        window = windows.histogram("w.qerr", label_names=("model",))
        for value in (1.0, 2.0, 50.0):
            window.observe(value, model="m1")
        text = render_prometheus(MetricsRegistry(), windows)
        assert "# TYPE w_qerr summary" in text
        assert 'w_qerr{model="m1",quantile="0.99"} 50' in text
        assert 'w_qerr_count{model="m1"} 3' in text

    def test_slo_renders_totals_and_burn_rates(self):
        windows = WindowRegistry()
        slo = windows.slo("s.lat", target=1.0, objective=0.5)
        slo.observe(0.1)
        slo.observe(9.0)
        text = render_prometheus(MetricsRegistry(), windows)
        assert "s_lat_good_total 1" in text
        assert "s_lat_bad_total 1" in text
        assert 's_lat_burn_rate{window="short"} 1' in text
        assert 's_lat_burn_rate{window="long"} 1' in text

    def test_empty_registries_render_empty_page(self):
        assert render_prometheus(MetricsRegistry(), WindowRegistry()) == ""

    def test_rendering_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            windows = WindowRegistry()
            registry.counter("b.total").inc()
            registry.counter("a.total").inc(2)
            registry.histogram("h.lat").record(0.5)
            windows.histogram("w.lat", label_names=("m",)).observe(
                0.1, m="x")
            windows.slo("s.lat", target=1.0).observe(0.5)
            return render_prometheus(registry, windows)

        first, second = build(), build()
        assert first == second
        # Family blocks appear in sorted flattened-name order (the SLO
        # block itself holds three TYPE lines, so compare block starts).
        order = [first.index(f"# TYPE {name}") for name in
                 ("a_total", "b_total", "h_lat", "s_lat_good_total",
                  "w_lat")]
        assert order == sorted(order)


class TestParseExposition:
    def test_round_trip(self):
        registry = MetricsRegistry()
        windows = WindowRegistry()
        registry.counter("serve.requests_total").inc(5)
        registry.histogram("serve.request.seconds").record(0.02)
        windows.histogram("serve.qerror.window",
                          label_names=("model", "table")).observe(
            3.0, model="m1", table="forest")
        windows.slo("serve.latency.slo", target=0.5).observe(0.1)
        text = render_prometheus(registry, windows)
        families = parse_exposition(text)
        assert families["serve_requests_total"]["type"] == "counter"
        assert families["serve_request_seconds"]["type"] == "histogram"
        assert families["serve_qerror_window"]["type"] == "summary"
        quantiles = [labels for name, labels, _ in
                     families["serve_qerror_window"]["samples"]
                     if "quantile" in labels]
        assert {"model": "m1", "table": "forest",
                "quantile": "0.99"} in quantiles

    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding TYPE"):
            parse_exposition("orphan_metric 1\n")

    def test_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("# TYPE a counter\na{ 1\n")
        with pytest.raises(ValueError, match="malformed value"):
            parse_exposition("# TYPE a counter\na x\n")
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_exposition("# TYPE a\n")
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_exposition("# TYPE a widget\n")
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_exposition("# TYPE a counter\n# TYPE a counter\n")

    def test_rejects_non_cumulative_histogram(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.1"} 5\n'
                'h_bucket{le="1.0"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 1\n"
                "h_count 5\n")
        with pytest.raises(ValueError, match="not cumulative"):
            parse_exposition(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 1\n"
                "h_count 4\n")
        with pytest.raises(ValueError, match="does not.*match _count"):
            parse_exposition(text)

    def test_rejects_missing_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.1"} 5\n'
                "h_sum 1\n"
                "h_count 5\n")
        with pytest.raises(ValueError, match="no \\+Inf bucket"):
            parse_exposition(text)
