"""CLI round-trip: traced bench run -> `repro obs report` -> summary."""

import json

import pytest

from repro.cli import main
from repro.obs.export import read_spans_jsonl


@pytest.fixture(scope="module")
def traced_bench(tmp_path_factory):
    """One smoke-sized traced featurize bench shared by the module."""
    directory = tmp_path_factory.mktemp("obs-cli")
    trace = directory / "trace.jsonl"
    report = directory / "bench.json"
    code = main(["bench", "featurize", "--smoke",
                 "--trace", str(trace), "--output", str(report)])
    assert code == 0
    return trace


def test_bench_trace_contains_stage_spans(traced_bench):
    records = read_spans_jsonl(traced_bench)
    names = {r["name"] for r in records}
    assert {"bench.scalar_pass", "bench.batch_pass", "featurize.batch",
            "featurize.compile", "featurize.encode"} <= names
    # Stage spans sum to (nearly) their parent: the per-stage breakdown
    # accounts for the reported wall time.
    by_id = {r["span_id"]: r for r in records}
    batch_parent_names = set()
    for record in records:
        if record["name"] != "featurize.batch":
            continue
        children = sum(r["duration_ns"] for r in records
                       if r["parent_id"] == record["span_id"])
        assert children <= record["duration_ns"]
        assert children >= 0.8 * record["duration_ns"]
        if record["parent_id"] is not None:
            batch_parent_names.add(by_id[record["parent_id"]]["name"])
    # The timed passes (not just warm-ups) featurize under their span.
    assert "bench.batch_pass" in batch_parent_names


def test_report_text(traced_bench, capsys):
    assert main(["obs", "report", str(traced_bench)]) == 0
    out = capsys.readouterr().out
    assert "featurize.batch" in out
    assert "wall clock" in out


def test_report_json(traced_bench, capsys):
    assert main(["obs", "report", str(traced_bench),
                 "--format", "json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["spans"] == len(read_spans_jsonl(traced_bench))
    assert "featurize.encode" in summary["by_name"]


def test_report_chrome_export(traced_bench, tmp_path, capsys):
    chrome = tmp_path / "chrome.json"
    assert main(["obs", "report", str(traced_bench),
                 "--chrome", str(chrome)]) == 0
    payload = json.loads(chrome.read_text(encoding="utf-8"))
    assert payload["traceEvents"]
    assert all(e["ph"] == "X" for e in payload["traceEvents"])


def test_report_rejects_malformed_trace(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("definitely not json\n", encoding="utf-8")
    with pytest.raises(ValueError):
        main(["obs", "report", str(bad)])


def test_bench_obs_smoke_gate(tmp_path, capsys):
    report_path = tmp_path / "BENCH_obs.json"
    code = main(["bench", "obs", "--smoke", "--repeats", "3",
                 "--output", str(report_path),
                 "--max-overhead", "50.0"])
    out = capsys.readouterr().out
    assert code == 0, out
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["benchmark"] == "obs"
    assert report["baseline_seconds"] > 0
    assert {"disabled_overhead_pct", "enabled_overhead_pct"} <= set(report)
    assert "tracing disabled" in out


def test_bench_obs_gate_failure(tmp_path, capsys):
    # An impossible bound must flip the exit code, proving the gate bites.
    code = main(["bench", "obs", "--smoke", "--repeats", "1",
                 "--output", str(tmp_path / "r.json"),
                 "--max-overhead", "-100.0"])
    assert code == 1
    assert "FAIL" in capsys.readouterr().out
