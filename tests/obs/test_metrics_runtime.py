"""Tests for counters, gauges, and deterministic histograms."""

import numpy as np
import pytest

from repro.obs.metrics_runtime import (
    DEFAULT_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_spaced_edges,
)


class TestEdges:
    def test_default_edges_span_nanoseconds_to_gigaseconds(self):
        assert DEFAULT_EDGES[0] == pytest.approx(1e-9)
        assert DEFAULT_EDGES[-1] == pytest.approx(1e9)
        assert list(DEFAULT_EDGES) == sorted(DEFAULT_EDGES)

    def test_edges_are_process_independent_floats(self):
        # Integer-exponent construction: recomputing yields identical
        # floats, the property the byte-stable snapshots rest on.
        assert log_spaced_edges() == DEFAULT_EDGES

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            log_spaced_edges(5, 5)
        with pytest.raises(ValueError):
            log_spaced_edges(0, 4, per_decade=0)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        assert counter.snapshot() == {"kind": "counter", "value": 6}

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25
        assert gauge.snapshot()["value"] == 1.25


class TestHistogram:
    def test_bucketing_boundaries(self):
        histogram = Histogram("h", edges=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 100.0, 1000.0):
            histogram.record(value)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == [["1.0", 2], ["10.0", 1],
                                       ["100.0", 1], ["+Inf", 1]]
        assert snapshot["count"] == 5
        assert snapshot["min"] == 0.5
        assert snapshot["max"] == 1000.0

    def test_record_many_matches_scalar_loop(self):
        values = np.random.default_rng(7).gamma(2.0, 3.0, 500)
        one = Histogram("a")
        many = Histogram("b")
        for value in values:
            one.record(value)
        many.record_many(values)
        assert one.snapshot()["buckets"] == many.snapshot()["buckets"]
        assert one.count == many.count == 500
        assert one.sum == pytest.approx(many.sum)

    def test_identical_streams_are_byte_identical(self):
        # The determinism contract: same observations, same bytes.
        def build() -> str:
            registry = MetricsRegistry()
            registry.counter("featurize.queries_total").inc(300)
            histogram = registry.histogram("estimator.qerror")
            histogram.record_many(
                1.0 + np.random.default_rng(3).gamma(2.0, 5.0, 1_000))
            registry.gauge("depth").set(4)
            return registry.to_json()

        assert build() == build()

    def test_empty_histogram_snapshot(self):
        snapshot = Histogram("h").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["buckets"] == []
        assert snapshot["min"] is None and snapshot["max"] is None

    def test_mean(self):
        histogram = Histogram("h")
        histogram.record_many([1.0, 3.0])
        assert histogram.mean == 2.0

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", edges=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", edges=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="Counter"):
            registry.histogram("x")

    def test_edge_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ValueError, match="different edges"):
            registry.histogram("h", edges=(1.0, 3.0))
        # Same edges are fine.
        registry.histogram("h", edges=(1.0, 2.0))

    def test_snapshot_sorted_and_written(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        assert list(registry.snapshot()) == ["a", "b"]
        out = tmp_path / "metrics.json"
        registry.write_json(out)
        assert out.read_text(encoding="utf-8") == registry.to_json() + "\n"

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.names() == ()


class TestHistogramValueHardening:
    """PR 9 regression: a poisoned observation must fail loudly, not
    corrupt the bucket counts every downstream quantile reads."""

    def test_record_rejects_nan(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError, match="finite and non-negative"):
            histogram.record(float("nan"))

    def test_record_rejects_infinities_and_negatives(self):
        histogram = MetricsRegistry().histogram("h")
        for bad in (float("inf"), float("-inf"), -0.001, -5):
            with pytest.raises(ValueError, match="finite and non-negative"):
                histogram.record(bad)

    def test_record_many_rejects_any_poisoned_value(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError, match="finite and non-negative"):
            histogram.record_many([0.1, float("nan"), 0.2])
        with pytest.raises(ValueError, match="finite and non-negative"):
            histogram.record_many([0.1, -0.2])
        # Nothing was recorded by the failed batches.
        assert histogram.snapshot()["count"] == 0

    def test_record_still_accepts_zero_and_positive(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.record(0.0)
        histogram.record(12.5)
        histogram.record_many([0.25, 3.0])
        assert histogram.snapshot()["count"] == 4
