"""Tests for trace exporters: JSONL, Chrome events, summaries."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    SPAN_RECORD_KEYS,
    read_spans_jsonl,
    render_summary_json,
    render_summary_text,
    span_records,
    summarize_spans,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)


class StepClock:
    """Monotonic clock advancing 1 ms per read — deterministic traces."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 1_000_000
        return self.now


def make_trace() -> tuple:
    tracer = obs.Tracer(enabled=True, clock_ns=StepClock())
    with tracer.span("featurize.batch", featurizer="ConjunctiveEncoding"):
        with tracer.span("featurize.compile"):
            pass
        with tracer.span("featurize.encode", n_queries=300):
            pass
    try:
        with tracer.span("model.fit"):
            raise RuntimeError()
    except RuntimeError:
        pass
    return tracer.finished()


class TestJsonl:
    def test_round_trip(self, tmp_path):
        spans = make_trace()
        path = tmp_path / "trace.jsonl"
        assert write_spans_jsonl(spans, path) == 4
        records = read_spans_jsonl(path)
        assert records == span_records(spans)
        for record in records:
            assert set(record) == set(SPAN_RECORD_KEYS)

    def test_missing_key_rejected(self):
        record = span_records(make_trace())[0]
        del record["duration_ns"]
        with pytest.raises(ValueError, match="duration_ns"):
            span_records([record])

    def test_bad_lines_reported_with_position(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "x"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="missing keys"):
            read_spans_jsonl(path)
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match=":1:"):
            read_spans_jsonl(path)

    def test_identical_traces_identical_bytes(self, tmp_path):
        # Deterministic clock + sorted keys: byte-identical JSONL.
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_spans_jsonl(make_trace(), a)
        write_spans_jsonl(make_trace(), b)
        assert a.read_bytes() == b.read_bytes()


class TestChromeTrace:
    def test_event_shape(self):
        events = to_chrome_trace(make_trace())
        assert len(events) == 4
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 0
            assert event["tid"] == 0  # single thread -> first tid
            assert event["ts"] >= 0 and event["dur"] > 0
        by_name = {e["name"]: e for e in events}
        assert by_name["model.fit"]["args"]["status"] == "error"
        assert by_name["model.fit"]["args"]["error"] == "RuntimeError"
        assert by_name["featurize.encode"]["args"]["n_queries"] == 300

    def test_microsecond_units(self):
        records = span_records(make_trace())
        events = to_chrome_trace(records)
        assert events[0]["ts"] == records[0]["start_ns"] / 1e3
        assert events[0]["dur"] == records[0]["duration_ns"] / 1e3

    def test_written_file_shape(self, tmp_path):
        path = tmp_path / "chrome.json"
        assert write_chrome_trace(make_trace(), path) == 4
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert len(payload["traceEvents"]) == 4


class TestSummary:
    def test_self_time_subtracts_direct_children(self):
        spans = make_trace()
        summary = summarize_spans(spans)
        batch = summary["by_name"]["featurize.batch"]
        children = (summary["by_name"]["featurize.compile"]["total_seconds"]
                    + summary["by_name"]["featurize.encode"]["total_seconds"])
        assert batch["self_seconds"] == pytest.approx(
            batch["total_seconds"] - children)
        assert summary["spans"] == 4
        assert summary["wall_seconds"] > 0

    def test_error_counting(self):
        summary = summarize_spans(make_trace())
        assert summary["by_name"]["model.fit"]["errors"] == 1
        assert summary["by_name"]["featurize.batch"]["errors"] == 0

    def test_empty_summary(self):
        summary = summarize_spans([])
        assert summary == {"spans": 0, "wall_seconds": 0.0, "by_name": {}}

    def test_text_rendering(self):
        summary = summarize_spans(make_trace())
        text = render_summary_text(summary)
        lines = text.splitlines()
        assert lines[0].startswith("span")
        assert any(line.startswith("featurize.batch") for line in lines)
        assert lines[-1].endswith("wall clock")

    def test_json_rendering_deterministic(self):
        summary = summarize_spans(make_trace())
        assert (render_summary_json(summary)
                == render_summary_json(summarize_spans(make_trace())))
        assert json.loads(render_summary_json(summary)) == summary
