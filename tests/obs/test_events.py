"""Wide request events: sampling, exemplars, stopwatch, JSONL export."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import (
    EVENT_RECORD_KEYS,
    EventLog,
    ExemplarReservoir,
    read_events_jsonl,
    render_event_text,
    render_events_summary_json,
    render_events_summary_text,
    summarize_events,
)


def fixed_clock(value: int = 1_000):
    """A clock_ns that always returns ``value`` (deterministic events)."""
    return lambda: value


class TestEventLog:
    def test_record_assigns_sequence_and_schema(self):
        log = EventLog(clock_ns=fixed_clock())
        record = log.record(trace_id=7, fingerprint="fp", sql="SELECT 1",
                            model_version="m", cache="miss",
                            latency_seconds=0.004, estimate=12.0)
        assert tuple(record) == EVENT_RECORD_KEYS
        assert record["seq"] == 1
        assert log.record(trace_id=8)["seq"] == 2

    def test_head_sampling_is_deterministic(self):
        log = EventLog(sample_every=3, clock_ns=fixed_clock())
        for _ in range(9):
            log.record(trace_id=1)
        kept = [event["seq"] for event in log.events()]
        assert kept == [3, 6, 9]
        counts = log.counts()
        assert counts["recorded"] == 9
        assert counts["sampled"] == 3

    def test_errors_bypass_sampling(self):
        log = EventLog(sample_every=100, clock_ns=fixed_clock())
        log.record(trace_id=1)
        log.record(trace_id=2, error="SqlSyntaxError")
        kept = [event["seq"] for event in log.events()]
        assert kept == [2]
        assert log.counts()["errors"] == 1

    def test_capacity_evicts_oldest(self):
        log = EventLog(capacity=2, clock_ns=fixed_clock())
        for _ in range(4):
            log.record(trace_id=1)
        assert [event["seq"] for event in log.events()] == [3, 4]

    def test_attach_qerror_updates_newest_match(self):
        log = EventLog(clock_ns=fixed_clock())
        log.record(fingerprint="fp", sql=None, estimate=10.0)
        log.record(fingerprint="fp", sql=None, estimate=11.0)
        updated = log.attach_qerror("fp", 4.5, sql="SELECT 1")
        assert updated["seq"] == 2
        assert updated["qerror"] == 4.5
        assert updated["sql"] == "SELECT 1"
        # The match landed in the stored event, not just the copy.
        assert log.events()[1]["qerror"] == 4.5

    def test_attach_qerror_unmatched_still_reaches_exemplars(self):
        log = EventLog(sample_every=100, clock_ns=fixed_clock())
        log.record(fingerprint="fp")       # not retained (sampled out)
        assert log.attach_qerror("fp", 99.0, sql="SELECT 1") is None
        worst = log.exemplars.worst()
        assert worst is not None
        assert worst["qerror"] == 99.0
        assert worst["sql"] == "SELECT 1"

    def test_stopwatch_measures_on_injected_clock(self):
        ticks = iter([100, 350])
        log = EventLog(clock_ns=lambda: next(ticks))
        with log.stopwatch() as watch:
            pass
        assert watch.seconds == pytest.approx(250e-9)

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog(clock_ns=fixed_clock())
        log.record(trace_id=1, fingerprint="fp", sql="SELECT 1",
                   model_version="m", cache="hit", latency_seconds=0.001,
                   estimate=5.0)
        log.record(trace_id=2, error="ValueError")
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(path) == 2
        records = read_events_jsonl(path)
        assert records == log.events()

    def test_read_rejects_malformed_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 1}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="missing keys"):
            read_events_jsonl(path)
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match="not a JSON event record"):
            read_events_jsonl(path)

    def test_reset_restores_sequence_and_exemplars(self):
        log = EventLog(clock_ns=fixed_clock())
        log.record(fingerprint="fp")
        log.attach_qerror("fp", 9.0)
        log.reset()
        assert log.events() == []
        assert log.counts()["recorded"] == 0
        assert len(log.exemplars) == 0
        assert log.record(trace_id=1)["seq"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)
        with pytest.raises(ValueError, match="sample_every"):
            EventLog(sample_every=0)


class TestExemplarReservoir:
    def test_keeps_the_worst_k_worst_first(self):
        reservoir = ExemplarReservoir(capacity=2)
        assert reservoir.offer(2.0, {"seq": 1}) is True
        assert reservoir.offer(5.0, {"seq": 2}) is True
        assert reservoir.offer(3.0, {"seq": 3}) is True   # evicts 2.0
        assert reservoir.offer(1.0, {"seq": 4}) is False  # too good
        snapshot = reservoir.snapshot()
        assert [item["qerror"] for item in snapshot] == [5.0, 3.0]
        assert reservoir.worst()["seq"] == 2

    def test_ties_break_toward_earlier_sequence(self):
        reservoir = ExemplarReservoir(capacity=1)
        reservoir.offer(5.0, {"seq": 2})
        assert reservoir.offer(5.0, {"seq": 9}) is False
        assert reservoir.worst()["seq"] == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            ExemplarReservoir(capacity=0)


class TestSummaries:
    def _records(self):
        log = EventLog(clock_ns=fixed_clock())
        log.record(trace_id=1, fingerprint="fp", sql="SELECT 1",
                   model_version="m1", cache="miss",
                   latency_seconds=0.004, estimate=10.0)
        log.record(trace_id=2, fingerprint="fp", model_version="m1",
                   cache="hit", latency_seconds=0.001, estimate=10.0)
        log.record(trace_id=3, model_version="m1", cache="miss",
                   latency_seconds=0.002, error="SqlSyntaxError")
        log.attach_qerror("fp", 37.5, sql="SELECT 1")
        return log.events()

    def test_summarize_counts_and_worst(self):
        summary = summarize_events(self._records())
        assert summary["events"] == 3
        assert summary["errors"] == 1
        assert summary["models"] == {"m1": 3}
        assert summary["cache"] == {"hit": 1, "miss": 2}
        assert summary["qerror"]["count"] == 1
        assert summary["qerror"]["max"] == 37.5
        assert summary["worst"]["sql"] == "SELECT 1"

    def test_summarize_empty(self):
        summary = summarize_events([])
        assert summary["events"] == 0
        assert summary["worst"] is None
        assert summary["latency_ms"]["p95"] == 0.0

    def test_render_text_and_json_are_deterministic(self):
        records = self._records()
        text = render_events_summary_text(summarize_events(records))
        assert "events: 3 (1 errors)" in text
        assert "worst:" in text and "SELECT 1" in text
        first = render_events_summary_json(summarize_events(records))
        second = render_events_summary_json(summarize_events(records))
        assert first == second
        assert json.loads(first)["events"] == 3

    def test_render_event_text_shape(self):
        records = self._records()
        line = render_event_text(records[1])
        assert line.startswith("#2")
        assert "qerr=37.500" in line
        assert "cache=hit" in line
        error_line = render_event_text(records[2])
        assert "error=SqlSyntaxError" in error_line
