"""Legacy setup shim.

The metadata lives in ``pyproject.toml``; this file exists because the
offline build environment (setuptools 65, no ``wheel``) needs the legacy
``setup.py develop`` path for editable installs.
"""

from setuptools import setup

setup()
